//! The distributed deployment (§V): run the MAAR solve on the
//! master/worker runtime and compare against the single-process solver —
//! identical cut, plus simulated network-traffic accounting.
//!
//! ```sh
//! cargo run --release --example distributed_cluster
//! ```

use rejecto::dataflow::{ClusterConfig, DistributedMaar};
use rejecto::rejecto_core::{MaarSolver, RejectoConfig};
use rejecto::simulator::{Scenario, ScenarioConfig};
use rejecto::socialgraph::surrogates::Surrogate;
use std::time::Instant;

fn main() {
    let host = Surrogate::Facebook.generate_scaled(9, 0.5);
    let sim = Scenario::new(ScenarioConfig {
        num_fakes: 5_000,
        ..ScenarioConfig::default()
    })
    .run(&host, 23);
    println!(
        "graph: {} users, {} friendships, {} rejections",
        sim.graph.num_nodes(),
        sim.graph.num_friendships(),
        sim.graph.num_rejections()
    );

    let rejecto = RejectoConfig::default();

    let t0 = Instant::now();
    let local = MaarSolver::new(rejecto.clone())
        .solve(&sim.graph, &[], &[])
        .expect("a cut exists");
    println!(
        "single-process: {} suspects, acceptance rate {:.4}, {:?}",
        local.suspects().len(),
        local.acceptance_rate,
        t0.elapsed()
    );

    for workers in [1, 2, 4, 8] {
        let cluster = ClusterConfig { num_workers: workers, ..ClusterConfig::default() };
        let out = DistributedMaar::new(cluster, rejecto.clone())
            .solve(&sim.graph)
            .expect("healthy cluster must solve");
        assert_eq!(out.suspects, local.suspects(), "distributed cut must match");
        println!(
            "{workers} worker(s): same cut in {:?} — {} fetch batches, {} nodes shipped, {} buffer hits",
            out.elapsed, out.io.fetch_batches, out.io.nodes_fetched, out.io.buffer_hits
        );
    }
    println!("\nThe prefetching LRU buffer turns per-move fetches into one round trip per batch.");
}
