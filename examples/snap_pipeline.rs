//! Run the Rejecto pipeline on a SNAP-format edge list.
//!
//! ```sh
//! # On your own SNAP dataset (e.g. ca-HepTh from snap.stanford.edu):
//! cargo run --release --example snap_pipeline -- path/to/edges.txt
//!
//! # Without an argument, a surrogate graph is written to a temp file
//! # first, demonstrating the full file round trip:
//! cargo run --release --example snap_pipeline
//! ```
//!
//! The host graph's nodes become the legitimate users; the attack and the
//! social rejections are simulated on top per the §VI-A protocol.

use rejecto::pipeline::{self, PipelineConfig};
use rejecto::simulator::{Scenario, ScenarioConfig};
use rejecto::socialgraph::{io, metrics, surrogates::Surrogate};
use std::fs::File;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => p.into(),
        None => {
            // No dataset supplied: write a surrogate edge list and use it.
            let g = Surrogate::CaHepTh.generate_scaled(1, 0.2);
            let path = std::env::temp_dir().join("rejecto_surrogate_edges.txt");
            io::write_edge_list(&g, File::create(&path)?)?;
            eprintln!("[no dataset given; wrote surrogate to {}]", path.display());
            path
        }
    };

    let (host, labels) = io::read_edge_list(File::open(&path)?)?;
    println!(
        "loaded {}: {} nodes, {} edges, clustering {:.4}",
        path.display(),
        host.num_nodes(),
        host.num_edges(),
        metrics::average_clustering(&host)
    );

    let num_fakes = (host.num_nodes() / 5).max(10);
    let sim = Scenario::new(ScenarioConfig { num_fakes, ..ScenarioConfig::default() })
        .run(&host, 42);

    let cfg = PipelineConfig::default();
    let suspects = pipeline::rejecto_suspects(&sim, &cfg, num_fakes);
    println!(
        "injected {num_fakes} fakes; Rejecto precision/recall {:.4}",
        pipeline::precision(&suspects, &sim.is_fake)
    );

    // Ids below host.num_nodes() are original dataset nodes; print any
    // false positives in the dataset's own labeling.
    let false_positives: Vec<u64> = suspects
        .iter()
        .filter(|s| !sim.is_fake[s.index()])
        .filter_map(|s| labels.get(s.index()).copied())
        .take(10)
        .collect();
    if false_positives.is_empty() {
        println!("no legitimate dataset nodes were flagged");
    } else {
        println!("flagged dataset nodes (original labels): {false_positives:?}");
    }
    Ok(())
}
