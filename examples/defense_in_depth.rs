//! Defense in depth (§II-C, §VI-D): compose Rejecto with SybilRank.
//!
//! Social-graph-based Sybil detectors bound undetected fakes by the number
//! of attack edges — which friend spam inflates. This example measures
//! SybilRank's ranking quality (AUC) on a spam-polluted graph, then prunes
//! Rejecto's suspects in increments and shows the AUC recover as attack
//! edges disappear.
//!
//! ```sh
//! cargo run --release --example defense_in_depth
//! ```

use rejecto::pipeline::{self, PipelineConfig};
use rejecto::simulator::{Scenario, ScenarioConfig};
use rejecto::socialgraph::surrogates::Surrogate;

fn main() {
    let host = Surrogate::Facebook.generate_scaled(5, 0.2);
    // The paper's §VI-D setup: half of the Sybils spam, half stay silent.
    let sim = Scenario::new(ScenarioConfig {
        num_fakes: 2_000,
        spammer_fraction: 0.5,
        ..ScenarioConfig::default()
    })
    .run(&host, 11);

    println!(
        "{} Sybils ({} spamming), {} attack edges",
        sim.fakes.len(),
        sim.spammers.len(),
        sim.attack_edges()
    );

    let cfg = PipelineConfig::default();
    println!("removed_by_rejecto  sybilrank_auc");
    for step in 0..=5 {
        let removed = step * 200;
        let auc = pipeline::defense_in_depth(&sim, &cfg, removed);
        println!("{removed:>18}  {auc:.4}");
    }
    println!(
        "\nRemoving the friend spammers removes their attack edges; the silent\n\
         Sybil community is then cleanly separated and SybilRank's AUC\n\
         approaches 1 — the Fig 16 effect."
    );
}
