//! An OSN-operator moderation pipeline (§IV-E + §VII).
//!
//! In production the operator rarely knows the exact fake population, so
//! this example terminates the iterative detection with an **acceptance
//! rate threshold** instead of a suspect budget: groups keep being cut off
//! while their aggregate acceptance rate stays below an estimate of the
//! normal-user acceptance rate. Detected groups then map to §VII response
//! tiers: the most blatant groups are suspended, borderline ones get
//! CAPTCHAs / rate limits (tolerating false positives).
//!
//! ```sh
//! cargo run --release --example osn_moderation
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto::rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use rejecto::simulator::{sample_seeds, Scenario, ScenarioConfig};
use rejecto::socialgraph::surrogates::Surrogate;

fn main() {
    let host = Surrogate::Facebook.generate_scaled(3, 0.2);
    let sim = Scenario::new(ScenarioConfig {
        num_fakes: 1_500,
        ..ScenarioConfig::default()
    })
    .run(&host, 7);

    // The operator's prior knowledge: a handful of manually inspected
    // accounts (§III-B).
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let (legit, spammer) = sample_seeds(&sim, 20, 10, &mut rng);
    let seeds = Seeds { legit, spammer };

    // Normal users accept ~80% of requests (legit rejection rate 0.2), so
    // any group whose requests are accepted at under 50% is suspicious.
    let detector = IterativeDetector::new(RejectoConfig::default());
    let report = sim_detect(&detector, &sim, &seeds, 0.5);

    println!("detected {} spammer group(s) in {} round(s):", report.groups.len(), report.rounds);
    let mut tp_total = 0usize;
    let mut declared = 0usize;
    for g in &report.groups {
        let tp = g.nodes.iter().filter(|n| sim.is_fake[n.index()]).count();
        tp_total += tp;
        declared += g.nodes.len();
        let action = if g.acceptance_rate < 0.35 {
            "suspend"
        } else if g.acceptance_rate < 0.45 {
            "rate-limit + CAPTCHA"
        } else {
            "CAPTCHA only"
        };
        println!(
            "  round {:>2}: {:>5} accounts, acceptance rate {:.3} (k={}) -> {action} ({tp} true fakes)",
            g.round,
            g.nodes.len(),
            g.acceptance_rate,
            g.k
        );
    }
    println!(
        "overall: {declared} flagged, {tp_total} true fakes of {} injected (precision {:.4}, recall {:.4})",
        sim.fakes.len(),
        tp_total as f64 / declared.max(1) as f64,
        tp_total as f64 / sim.fakes.len() as f64
    );
}

fn sim_detect(
    detector: &IterativeDetector,
    sim: &rejecto::simulator::SimOutput,
    seeds: &Seeds,
    threshold: f64,
) -> rejecto::rejecto_core::DetectionReport {
    detector.detect(&sim.graph, seeds, Termination::AcceptanceThreshold(threshold))
}
