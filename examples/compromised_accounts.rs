//! Detecting compromised accounts with time-sharded Rejecto (§VII).
//!
//! Compromised legitimate accounts that are repurposed for friend spam
//! look legitimate on the all-time graph (years of organic history), but
//! their *post-compromise intervals* carry the friend-spam signature:
//! excessive rejected requests. The §VII deployment shards requests and
//! rejections by time interval and runs Rejecto per shard.
//!
//! ```sh
//! cargo run --release --example compromised_accounts
//! ```

use rejecto::rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use rejecto::simulator::{Timeline, TimelineConfig};
use rejecto::socialgraph::surrogates::Surrogate;

fn main() {
    let host = Surrogate::Facebook.generate_scaled(13, 0.2);
    let config = TimelineConfig {
        intervals: 6,
        compromise_at: 3,
        num_compromised: 150,
        spam_per_interval: 25,
        ..TimelineConfig::default()
    };
    let tl = Timeline::simulate(&host, &config, 31);
    let truth = tl.is_compromised_mask();
    println!(
        "{} accounts over {} intervals; {} compromised at interval {}",
        tl.num_nodes(),
        tl.intervals(),
        tl.compromised().len(),
        tl.compromise_at()
    );

    let detector = IterativeDetector::new(RejectoConfig::default());
    let mut flag_count = vec![0usize; tl.num_nodes()];
    println!("\ninterval  flagged  true-hits  note");
    for t in 0..tl.intervals() {
        let shard = tl.interval_graph(t);
        let report = detector.detect(
            &shard,
            &Seeds::default(),
            // Organic acceptance is ~0.8; anything under 0.5 is anomalous.
            Termination::AcceptanceThreshold(0.5),
        );
        let flagged = report.suspects();
        let hits = flagged.iter().filter(|n| truth[n.index()]).count();
        for n in &flagged {
            flag_count[n.index()] += 1;
        }
        let note = if t < tl.compromise_at() { "pre-compromise" } else { "post-compromise" };
        println!("{t:>8}  {:>7}  {:>9}  {note}", flagged.len(), hits);
    }

    // Single-interval flags include organic users who were merely unlucky
    // that week. Persistence across shards separates them: a compromised
    // account spams every post-compromise interval.
    let persistent: Vec<usize> =
        (0..tl.num_nodes()).filter(|&i| flag_count[i] >= 2).collect();
    let hits = persistent.iter().filter(|&&i| truth[i]).count();
    println!(
        "\npersistence filter (flagged in >= 2 intervals): {} accounts, {} true \
         (precision {:.3}, recall {:.3})",
        persistent.len(),
        hits,
        hits as f64 / persistent.len().max(1) as f64,
        hits as f64 / tl.compromised().len() as f64
    );
}
