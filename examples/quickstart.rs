//! Quickstart: simulate friend spam on a Facebook-like graph, run Rejecto,
//! and compare against the VoteTrust baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rejecto::pipeline::{self, PipelineConfig};
use rejecto::simulator::{Scenario, ScenarioConfig};
use rejecto::socialgraph::surrogates::Surrogate;

fn main() {
    // A 2,000-user Facebook-like host graph (20% of the paper's sample).
    let host = Surrogate::Facebook.generate_scaled(1, 0.2);
    println!(
        "host graph: {} users, {} friendships",
        host.num_nodes(),
        host.num_edges()
    );

    // Inject 2,000 fakes following the paper's §VI-A protocol: each fake
    // befriends 6 earlier fakes and sends 20 friend requests to random
    // legitimate users, 70% of which are rejected.
    let sim = Scenario::new(ScenarioConfig {
        num_fakes: 2_000,
        ..ScenarioConfig::default()
    })
    .run(&host, 42);
    println!(
        "simulated OSN: {} users, {} friendships, {} rejections, {} attack edges",
        sim.graph.num_nodes(),
        sim.graph.num_friendships(),
        sim.graph.num_rejections(),
        sim.attack_edges()
    );

    // Detect: both schemes declare exactly as many suspects as there are
    // fakes, so precision equals recall.
    let cfg = PipelineConfig::default();
    let budget = sim.fakes.len();

    let rejecto = pipeline::rejecto_suspects(&sim, &cfg, budget);
    let votetrust = pipeline::votetrust_suspects(&sim, &cfg, budget);

    println!(
        "Rejecto   precision/recall: {:.4}",
        pipeline::precision(&rejecto, &sim.is_fake)
    );
    println!(
        "VoteTrust precision/recall: {:.4}",
        pipeline::precision(&votetrust, &sim.is_fake)
    );
}
