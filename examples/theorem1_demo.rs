//! Theorem 1 made concrete: the MAAR (ratio) cut is the zero of a family
//! of linear objectives.
//!
//! The paper's §IV-D transformation: instead of minimizing the
//! friends-to-rejections ratio `|F(Ū,U)| / |R⟨Ū,U⟩|` directly, minimize
//! the linear objective `|F(Ū,U)| − k·|R⟨Ū,U⟩|` for a geometric family of
//! `k` values. At `k = k*` (the optimal ratio) the MAAR cut's objective is
//! exactly zero and every other cut is non-negative; below `k*` the empty
//! cut wins; above, the MAAR cut goes strictly negative.
//!
//! This example builds a small spam instance, enumerates every cut with
//! the exhaustive oracle, and prints the winning cut per `k` alongside the
//! extended-KL heuristic's result.
//!
//! ```sh
//! cargo run --release --example theorem1_demo
//! ```

use rejecto::kl::{ExtendedKl, ExtendedKlConfig, KParam};
use rejecto::rejecto_core::exact;
use rejecto::rejection::{AugmentedGraphBuilder, NodeId, Partition};

fn main() {
    // 5 legit users in a dense cluster, 3 fakes in a triangle, one attack
    // edge, six rejections onto the fakes: the MAAR cut is {5, 6, 7} with
    // F = 1, R = 6 ⇒ k* = 1/6.
    let mut b = AugmentedGraphBuilder::new(8);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (0, 4)] {
        b.add_friendship(NodeId(u), NodeId(v));
    }
    for (u, v) in [(5, 6), (6, 7), (5, 7)] {
        b.add_friendship(NodeId(u), NodeId(v));
    }
    b.add_friendship(NodeId(3), NodeId(5)); // the attack edge
    for (r, s) in [(0, 5), (1, 5), (2, 6), (3, 6), (4, 7), (0, 7)] {
        b.add_rejection(NodeId(r), NodeId(s));
    }
    let g = b.build();

    let (maar, ac) = exact::exact_maar_cut(&g, 4).expect("a cut exists");
    let f = maar.cross_friendships();
    let r = maar.cross_rejections();
    println!(
        "exhaustive MAAR cut: {:?}  (F = {f}, R = {r}, acceptance rate {ac:.4}, k* = {:.4})\n",
        maar.suspects(),
        f as f64 / r as f64
    );

    println!("k          exact linear minimizer      objective   extended-KL suspects");
    for (num, den) in [(1u64, 12u64), (1, 8), (1, 6), (1, 4), (1, 2), (1, 1), (2, 1)] {
        let (cut, obj) = exact::exact_linear_cut(&g, num as i64, den as i64);
        let kl = ExtendedKl::new(&g, ExtendedKlConfig::new(KParam::new(num, den)));
        let heur = kl.run(Partition::all_legit(&g));
        let cut_str = if cut.is_empty() {
            "∅ (empty cut optimal)".to_string()
        } else {
            format!("{cut:?}")
        };
        println!(
            "k={num}/{den:<6} {cut_str:<28} {obj:>6}/den    {:?}",
            heur.partition.suspects()
        );
    }
    println!(
        "\nBelow k* = 1/6 the empty cut is the strict optimum; at k* the MAAR cut\n\
         ties it at zero; above k* the MAAR cut goes negative and both the\n\
         oracle and the heuristic land on it — which is why sweeping k over a\n\
         geometric sequence and keeping the lowest-acceptance-rate cut finds\n\
         the MAAR cut (Theorem 1)."
    );
}
