//! The distributed failure model, end to end: injected worker deaths,
//! repeated-death schedules, hung workers, tripped budgets, and
//! kill-and-resume — all through [`DistributedDetector`], all required to
//! leave the detection report byte-identical to a failure-free run (or to
//! yield a well-formed `Completion::Partial`, never a crash).

use rejecto::dataflow::{ClusterConfig, DistributedDetector};
use rejecto::rejecto_core::{
    Checkpoint, FaultPlan, RejectoConfig, RuntimeError, Seeds, Termination,
};
use rejecto::simulator::{Scenario, ScenarioConfig, SimOutput};
use rejecto::socialgraph::surrogates::Surrogate;
use std::time::Duration;

const SEED: u64 = 31;
const FAKES: usize = 300;

fn scenario() -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(SEED, 0.04);
    Scenario::new(ScenarioConfig { num_fakes: FAKES, ..ScenarioConfig::default() })
        .run(&host, SEED)
}

/// A cluster that recovers fast under injection: tight watchdog, zero
/// respawn backoff. Correctness must be independent of both knobs.
fn snappy(workers: usize) -> ClusterConfig {
    ClusterConfig {
        num_workers: workers,
        request_deadline: Duration::from_millis(50),
        backoff_base: Duration::ZERO,
        ..ClusterConfig::default()
    }
}

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).expect("test fault spec parses")
}

#[test]
fn reports_are_worker_count_invariant() {
    let sim = scenario();
    let config = RejectoConfig::default();
    let baseline = DistributedDetector::new(snappy(1), config.clone())
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("healthy cluster must detect");
    assert!(!baseline.groups.is_empty(), "fixture found no spammers; grow the scenario");
    for workers in [2, 4] {
        let report = DistributedDetector::new(snappy(workers), config.clone())
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
            .expect("healthy cluster must detect");
        assert_eq!(report, baseline, "report changed with worker count {workers}");
    }
}

#[test]
fn injected_deaths_are_invisible_in_the_report() {
    let sim = scenario();
    let clean = DistributedDetector::new(snappy(3), RejectoConfig::default())
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("healthy cluster must detect");

    let faulted_config = RejectoConfig {
        faults: plan("worker_death@fetch=2,worker_death@fetch=11"),
        ..RejectoConfig::default()
    };
    let (report, io) = DistributedDetector::new(snappy(3), faulted_config)
        .detect_with_io(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("faulted cluster with survivors must detect");
    assert_eq!(report, clean, "worker deaths leaked into the report");
    assert!(report.failures.is_empty(), "recovered faults must not be recorded as failures");
    assert!(io.worker_restarts >= 2, "expected ≥2 restarts, saw {}", io.worker_restarts);
}

#[test]
fn repeated_deaths_force_rebalance_without_changing_the_report() {
    let sim = scenario();
    let clean = DistributedDetector::new(snappy(4), RejectoConfig::default())
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("healthy cluster must detect");

    // The same worker dies on every respawn; past the respawn budget its
    // shard is merged onto a survivor.
    let cluster = ClusterConfig { max_respawns: 1, ..snappy(4) };
    let faulted_config = RejectoConfig {
        faults: plan("worker_death@fetch=2:x5"),
        ..RejectoConfig::default()
    };
    let (report, io) = DistributedDetector::new(cluster, faulted_config)
        .detect_with_io(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("rebalanced cluster must detect");
    assert_eq!(report, clean, "shard rebalancing leaked into the report");
    assert!(io.shards_rebalanced >= 1, "expected a rebalance, saw {}", io.shards_rebalanced);
}

#[test]
fn hung_worker_recovery_is_invisible() {
    let sim = scenario();
    let clean = DistributedDetector::new(snappy(2), RejectoConfig::default())
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("healthy cluster must detect");

    let faulted_config = RejectoConfig {
        faults: plan("worker_hang@k=1"),
        ..RejectoConfig::default()
    };
    let (report, io) = DistributedDetector::new(snappy(2), faulted_config)
        .detect_with_io(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("watchdog must recover the hung worker");
    assert_eq!(report, clean, "hung-worker recovery leaked into the report");
    assert!(io.worker_restarts >= 1, "watchdog never fired");
}

#[test]
fn zero_deadline_budget_yields_a_partial_report() {
    let sim = scenario();
    let mut config = RejectoConfig::default();
    config.budget.deadline = Some(Duration::ZERO);
    let report = DistributedDetector::new(snappy(2), config)
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("a tripped budget is a partial report, not an error");
    assert!(report.is_partial(), "zero deadline must interrupt the run");
    assert_eq!(report.rounds, 0, "no round can complete under a zero deadline");
    assert!(report.groups.is_empty());
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run() {
    let sim = scenario();
    for workers in [1usize, 4] {
        let full = DistributedDetector::new(snappy(workers), RejectoConfig::default())
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
            .expect("healthy cluster must detect");
        assert!(full.rounds >= 2, "fixture needs ≥2 rounds to exercise resume");

        let mut halted_config = RejectoConfig::default();
        halted_config.budget.max_rounds = Some(1);
        let halted = DistributedDetector::new(snappy(workers), halted_config)
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
            .expect("budgeted run must yield a partial report");
        assert!(halted.is_partial());

        let json = Checkpoint::capture(&sim.graph, &halted).to_json();
        let restored = Checkpoint::from_json(&json).expect("checkpoint JSON round-trips");
        let resumed = DistributedDetector::new(snappy(workers), RejectoConfig::default())
            .resume(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES), &restored)
            .expect("resume accepts its own checkpoint");
        assert_eq!(resumed, full, "kill-and-resume diverged at workers={workers}");
    }
}

#[test]
fn faults_survive_a_resume_boundary() {
    // A death injected into the *resumed* half of a run must still be
    // invisible: recovery replays against the residual graph's lineage.
    let sim = scenario();
    let full = DistributedDetector::new(snappy(2), RejectoConfig::default())
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("healthy cluster must detect");

    let mut halted_config = RejectoConfig::default();
    halted_config.budget.max_rounds = Some(1);
    let halted = DistributedDetector::new(snappy(2), halted_config)
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect("budgeted run must yield a partial report");
    let ckpt = Checkpoint::capture(&sim.graph, &halted);

    let faulted_config = RejectoConfig {
        faults: plan("worker_death@fetch=2"),
        ..RejectoConfig::default()
    };
    let resumed = DistributedDetector::new(snappy(2), faulted_config)
        .resume(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES), &ckpt)
        .expect("faulted resume with a survivor must detect");
    assert_eq!(resumed, full, "post-resume fault recovery leaked into the report");
}

#[test]
fn invalid_cluster_config_is_a_structured_error() {
    let sim = scenario();
    let err = DistributedDetector::new(
        ClusterConfig { num_workers: 0, ..ClusterConfig::default() },
        RejectoConfig::default(),
    )
    .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
    .expect_err("zero workers must be rejected");
    match err {
        RuntimeError::ClusterFailed { message } => {
            assert!(message.contains("num_workers"), "unhelpful message: {message}");
        }
        other => panic!("expected ClusterFailed, got {other}"),
    }
}

#[test]
fn losing_every_worker_surfaces_as_cluster_failed() {
    let sim = scenario();
    // Two workers, no respawn budget: the first death rebalances onto the
    // lone survivor; killing that one too leaves nothing to merge onto.
    let cluster = ClusterConfig { max_respawns: 0, ..snappy(2) };
    let config = RejectoConfig {
        faults: plan("worker_death@fetch=1:x8"),
        ..RejectoConfig::default()
    };
    let err = DistributedDetector::new(cluster, config)
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .expect_err("losing the whole cluster must be an error, not a panic");
    match err {
        RuntimeError::ClusterFailed { message } => {
            assert!(message.contains("no survivor"), "unhelpful message: {message}");
        }
        other => panic!("expected ClusterFailed, got {other}"),
    }
}
