//! Cross-validation of the distributed runtime against the single-process
//! solver: identical cuts on varied scenarios, cluster shapes, and buffer
//! configurations.

use rejecto::dataflow::{ClusterConfig, DistributedMaar};
use rejecto::rejecto_core::{MaarSolver, RejectoConfig};
use rejecto::simulator::{Scenario, ScenarioConfig, SelfRejectionConfig};
use rejecto::socialgraph::surrogates::Surrogate;

fn check_parity(cfg: ScenarioConfig, cluster: ClusterConfig, seed: u64) {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.04);
    let sim = Scenario::new(cfg).run(&host, seed);
    let rejecto = RejectoConfig::default();
    let local = MaarSolver::new(rejecto.clone()).solve(&sim.graph, &[], &[]);
    let dist = DistributedMaar::new(cluster, rejecto)
        .solve(&sim.graph)
        .expect("healthy cluster must solve");
    match local {
        Some(cut) => {
            assert_eq!(dist.suspects, cut.suspects(), "cut mismatch (seed {seed})");
            let ac = dist.acceptance_rate.expect("distributed found no cut");
            assert!((ac - cut.acceptance_rate).abs() < 1e-12);
        }
        None => assert!(dist.suspects.is_empty(), "distributed found a phantom cut"),
    }
}

#[test]
fn parity_on_baseline_attack() {
    check_parity(
        ScenarioConfig { num_fakes: 400, ..ScenarioConfig::default() },
        ClusterConfig::default(),
        21,
    );
}

#[test]
fn parity_under_collusion() {
    check_parity(
        ScenarioConfig { num_fakes: 400, fake_intra_edges: 30, ..ScenarioConfig::default() },
        ClusterConfig { num_workers: 3, ..ClusterConfig::default() },
        22,
    );
}

#[test]
fn parity_under_self_rejection() {
    check_parity(
        ScenarioConfig {
            num_fakes: 400,
            self_rejection: Some(SelfRejectionConfig {
                whitewashed: 200,
                requests_per_sender: 20,
                rejection_rate: 0.85,
            }),
            ..ScenarioConfig::default()
        },
        ClusterConfig { num_workers: 7, ..ClusterConfig::default() },
        23,
    );
}

#[test]
fn parity_with_pathological_buffer() {
    // A one-entry buffer with single-node batches must still be correct.
    check_parity(
        ScenarioConfig { num_fakes: 300, ..ScenarioConfig::default() },
        ClusterConfig {
            num_workers: 2,
            prefetch_batch: 1,
            buffer_capacity: 1,
            ..ClusterConfig::default()
        },
        24,
    );
}

#[test]
fn parity_with_more_workers_than_meaningful_shards() {
    check_parity(
        ScenarioConfig { num_fakes: 100, ..ScenarioConfig::default() },
        ClusterConfig { num_workers: 64, ..ClusterConfig::default() },
        25,
    );
}
