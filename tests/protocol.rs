//! Protocol-level invariants of the detection pipeline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto::rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use rejecto::simulator::{sample_seeds, Scenario, ScenarioConfig};
use rejecto::socialgraph::surrogates::Surrogate;
use rejecto::{pipeline, pipeline::PipelineConfig};

fn small_sim() -> rejecto::simulator::SimOutput {
    let host = Surrogate::Facebook.generate_scaled(10, 0.06);
    Scenario::new(ScenarioConfig { num_fakes: 600, ..ScenarioConfig::default() })
        .run(&host, 10)
}

#[test]
fn precision_equals_recall_under_the_protocol() {
    let sim = small_sim();
    let cfg = PipelineConfig::default();
    let suspects = pipeline::rejecto_suspects(&sim, &cfg, sim.fakes.len());
    let idx: Vec<usize> = suspects.iter().map(|s| s.index()).collect();
    let pr = eval::precision_recall(&idx, &sim.is_fake);
    assert_eq!(pr.declared, pr.actual, "budget must equal the fake population");
    assert!((pr.precision() - pr.recall()).abs() < 1e-12);
}

#[test]
fn group_acceptance_rates_are_ordered() {
    // §IV-E: iterative MAAR detection yields groups in non-decreasing
    // acceptance-rate order.
    let sim = small_sim();
    let det = IterativeDetector::new(RejectoConfig::default());
    let report = det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(600));
    assert!(!report.groups.is_empty());
    for w in report.groups.windows(2) {
        assert!(
            w[0].acceptance_rate <= w[1].acceptance_rate + 1e-9,
            "rates regressed: {} then {}",
            w[0].acceptance_rate,
            w[1].acceptance_rate
        );
    }
}

#[test]
fn legit_seeds_are_never_flagged() {
    let sim = small_sim();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let (legit, spammer) = sample_seeds(&sim, 30, 10, &mut rng);
    let det = IterativeDetector::new(RejectoConfig::default());
    let report = det.detect(
        &sim.graph,
        &Seeds { legit: legit.clone(), spammer: spammer.clone() },
        Termination::SuspectBudget(600),
    );
    let suspects = report.suspects();
    for s in &legit {
        assert!(!suspects.contains(s), "legit seed {s} was flagged");
    }
    for s in &spammer {
        assert!(suspects.contains(s), "spammer seed {s} was missed");
    }
}

#[test]
fn acceptance_threshold_bounds_every_group() {
    let sim = small_sim();
    let det = IterativeDetector::new(RejectoConfig::default());
    let threshold = 0.5;
    let report = det.detect(
        &sim.graph,
        &Seeds::default(),
        Termination::AcceptanceThreshold(threshold),
    );
    for g in &report.groups {
        assert!(g.acceptance_rate <= threshold, "group above threshold: {}", g.acceptance_rate);
    }
}

#[test]
fn detection_is_deterministic() {
    let sim = small_sim();
    let cfg = PipelineConfig::default();
    let a = pipeline::rejecto_suspects(&sim, &cfg, 600);
    let b = pipeline::rejecto_suspects(&sim, &cfg, 600);
    assert_eq!(a, b);
}

#[test]
fn budget_never_overshoots() {
    let sim = small_sim();
    let cfg = PipelineConfig::default();
    for budget in [1usize, 10, 100, 600, 2_000] {
        let suspects = pipeline::rejecto_suspects(&sim, &cfg, budget);
        assert!(suspects.len() <= budget, "budget {budget} overshot: {}", suspects.len());
    }
}

#[test]
fn votetrust_ranking_covers_all_users() {
    use rejecto::votetrust::{RequestGraph, VoteTrust};
    let sim = small_sim();
    let g = RequestGraph::from_requests(
        sim.graph.num_nodes(),
        sim.log.requests().iter().map(|r| (r.from, r.to, r.accepted)),
    );
    let ranking = VoteTrust::default().rank(&g, &[]);
    assert_eq!(ranking.ratings().len(), sim.graph.num_nodes());
    let bottom = ranking.bottom(sim.graph.num_nodes());
    assert_eq!(bottom.len(), sim.graph.num_nodes());
}
