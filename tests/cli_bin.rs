//! End-to-end tests of the compiled `rejecto` binary — the full operator
//! workflow through real process boundaries and real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rejecto"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rejecto-bin-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn full_operator_workflow() {
    let dir = workdir("workflow");
    let stem = dir.join("attack");
    let stem = stem.to_str().unwrap();

    // 1. Simulate and persist (half the fakes stay silent so the
    //    defense-in-depth step below has a Sybil community left to rank).
    let out = run_ok(bin().args([
        "simulate", "--out", stem, "--scale", "0.04", "--fakes", "80", "--seed", "11",
        "--spammer-fraction", "0.5",
    ]));
    assert!(out.contains("simulated 480 users"), "{out}");

    // 2. Detect the spamming half with ground-truth scoring.
    let graph = format!("{stem}.rjg");
    let truth = format!("{stem}.truth");
    let out = run_ok(bin().args([
        "detect", "--graph", &graph, "--budget", "40", "--truth", &truth,
    ]));
    assert!(out.contains("precision"), "{out}");
    let precision: f64 = out
        .split("precision ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("precision parseable");
    assert!(precision > 0.9, "precision {precision}: {out}");

    // 3. Stats over the augmented graph.
    let out = run_ok(bin().args(["stats", "--augmented", &graph]));
    assert!(out.contains("rejections:"), "{out}");

    // 4. VoteTrust over the request log.
    let out = run_ok(bin().args([
        "votetrust", "--log", &format!("{stem}.requests"), "--bottom", "10", "--seeds", "0,1,2",
    ]));
    assert_eq!(out.lines().count(), 11, "{out}");

    // 5. Defense in depth: prune the spamming half, rank the silent half.
    let out = run_ok(bin().args([
        "defense", "--graph", &graph, "--seeds", "0,1,2,3,4", "--budget", "40", "--truth", &truth,
    ]));
    assert!(out.contains("sybilrank AUC"), "{out}");
    let after: f64 = out
        .split(", ")
        .last()
        .and_then(|s| s.trim().strip_suffix("after"))
        .and_then(|s| s.trim().parse().ok())
        .expect("after-AUC parseable");
    assert!(after > 0.9, "post-pruning AUC {after}: {out}");
}

#[test]
fn help_lists_all_commands() {
    let out = run_ok(bin().arg("--help"));
    for cmd in ["simulate", "detect", "stats", "votetrust", "sybilrank", "defense"] {
        assert!(out.contains(cmd), "usage is missing {cmd}");
    }
}

#[test]
fn bad_flag_fails_with_nonzero_exit() {
    let out = bin().args(["detect", "--bogus", "1"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag") || stderr.contains("missing"), "{stderr}");
}

#[test]
fn sybilrank_over_edge_list() {
    let dir = workdir("sr");
    // Write a small two-community edge list.
    let path = dir.join("edges.txt");
    let mut content = String::new();
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            content.push_str(&format!("{u} {v}\n"));
            content.push_str(&format!("{} {}\n", u + 4, v + 4));
        }
    }
    content.push_str("0 4\n");
    std::fs::write(&path, content).unwrap();
    let out = run_ok(bin().args([
        "sybilrank", "--graph", path.to_str().unwrap(), "--seeds", "0", "--bottom", "3",
    ]));
    // The three lowest-trust users must all be in the unseeded community
    // (dense labels 4..8 map to edge-list order; seed community is 0-3).
    let lines: Vec<&str> = out.lines().skip(1).collect();
    assert_eq!(lines.len(), 3, "{out}");
}
