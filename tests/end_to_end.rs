//! End-to-end integration tests: the full §VI evaluation protocol at
//! reduced scale, spanning every crate in the workspace.

use rejecto::pipeline::{self, PipelineConfig};
use rejecto::simulator::{Scenario, ScenarioConfig, SelfRejectionConfig, SimOutput};
use rejecto::socialgraph::surrogates::Surrogate;

const SCALE: f64 = 0.08; // 800 legit users, 800 fakes
const FAKES: usize = 800;

fn simulate(surrogate: Surrogate, cfg: ScenarioConfig, seed: u64) -> SimOutput {
    let host = surrogate.generate_scaled(seed, SCALE);
    Scenario::new(cfg).run(&host, seed)
}

fn baseline() -> ScenarioConfig {
    ScenarioConfig { num_fakes: FAKES, ..ScenarioConfig::default() }
}

#[test]
fn rejecto_is_accurate_on_the_baseline_attack() {
    let sim = simulate(Surrogate::Facebook, baseline(), 1);
    let cfg = PipelineConfig::default();
    let suspects = pipeline::rejecto_suspects(&sim, &cfg, FAKES);
    let p = pipeline::precision(&suspects, &sim.is_fake);
    assert!(p > 0.97, "baseline precision {p}");
}

#[test]
fn rejecto_beats_votetrust_when_half_the_fakes_hide() {
    let sim = simulate(
        Surrogate::Facebook,
        ScenarioConfig { spammer_fraction: 0.5, ..baseline() },
        2,
    );
    let cfg = PipelineConfig::default();
    let (rj, vt) = (
        pipeline::precision(&pipeline::rejecto_suspects(&sim, &cfg, FAKES), &sim.is_fake),
        pipeline::precision(&pipeline::votetrust_suspects(&sim, &cfg, FAKES), &sim.is_fake),
    );
    assert!(rj > 0.9, "rejecto {rj}");
    assert!(vt < 0.7, "votetrust should miss the silent fakes, got {vt}");
    assert!(rj > vt + 0.2, "rejecto {rj} vs votetrust {vt}");
}

#[test]
fn collusion_does_not_help_the_attacker_against_rejecto() {
    let sim = simulate(
        Surrogate::Facebook,
        ScenarioConfig { fake_intra_edges: 40, ..baseline() },
        3,
    );
    let cfg = PipelineConfig::default();
    let p = pipeline::precision(&pipeline::rejecto_suspects(&sim, &cfg, FAKES), &sim.is_fake);
    assert!(p > 0.95, "collusion precision {p}");
}

#[test]
fn self_rejection_whitewashing_fails_against_iterative_pruning() {
    let sim = simulate(
        Surrogate::Facebook,
        ScenarioConfig {
            self_rejection: Some(SelfRejectionConfig {
                whitewashed: FAKES / 2,
                requests_per_sender: 20,
                rejection_rate: 0.9,
            }),
            ..baseline()
        },
        4,
    );
    let cfg = PipelineConfig::default();
    let p = pipeline::precision(&pipeline::rejecto_suspects(&sim, &cfg, FAKES), &sim.is_fake);
    assert!(p > 0.9, "self-rejection precision {p}");
}

#[test]
fn massive_rejections_on_legit_users_eventually_break_detection() {
    // Fig 15's two regimes: tolerable (well below the spam rejection
    // volume) and collapsed (beyond it).
    let spam_rejections = (FAKES * 20) as f64 * 0.7; // ≈ 11.2K
    let cfg = PipelineConfig::default();

    let tolerable = simulate(
        Surrogate::Facebook,
        ScenarioConfig {
            legit_requests_rejected_by_fakes: (spam_rejections * 0.5) as u64,
            ..baseline()
        },
        5,
    );
    let p_ok = pipeline::precision(
        &pipeline::rejecto_suspects(&tolerable, &cfg, FAKES),
        &tolerable.is_fake,
    );
    assert!(p_ok > 0.9, "tolerable regime precision {p_ok}");

    let collapsed = simulate(
        Surrogate::Facebook,
        ScenarioConfig {
            legit_requests_rejected_by_fakes: (spam_rejections * 1.3) as u64,
            ..baseline()
        },
        5,
    );
    let p_bad = pipeline::precision(
        &pipeline::rejecto_suspects(&collapsed, &cfg, FAKES),
        &collapsed.is_fake,
    );
    assert!(p_bad < 0.5, "collapsed regime precision {p_bad}");
}

#[test]
fn detection_works_across_host_graph_families() {
    // The appendix claim: similar trends on every graph family.
    let cfg = PipelineConfig::default();
    for surrogate in [Surrogate::CaHepTh, Surrogate::SocSlashdot, Surrogate::Synthetic] {
        let sim = simulate(surrogate, baseline(), 6);
        let p = pipeline::precision(&pipeline::rejecto_suspects(&sim, &cfg, FAKES), &sim.is_fake);
        assert!(p > 0.95, "{}: precision {p}", surrogate.name());
    }
}

#[test]
fn defense_in_depth_improves_sybilrank() {
    let sim = simulate(
        Surrogate::Facebook,
        ScenarioConfig { spammer_fraction: 0.5, ..baseline() },
        7,
    );
    let cfg = PipelineConfig::default();
    let before = pipeline::defense_in_depth(&sim, &cfg, 0);
    let after = pipeline::defense_in_depth(&sim, &cfg, FAKES / 2);
    assert!(after >= before - 0.02, "AUC regressed: {before} -> {after}");
    assert!(after > 0.95, "sterilized AUC {after}");
}
