//! End-to-end detection pipelines implementing the paper's evaluation
//! protocol (§VI-A): both schemes declare exactly as many suspects as the
//! estimated fake population, so precision equals recall.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use simulator::{sample_seeds, SimOutput};
use socialgraph::{GraphBuilder, NodeId};
use sybilrank::{SybilRank, SybilRankConfig};
use votetrust::{RequestGraph, VoteTrust, VoteTrustConfig};

/// Shared protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Rejecto algorithm configuration.
    pub rejecto: RejectoConfig,
    /// VoteTrust baseline configuration.
    pub votetrust: VoteTrustConfig,
    /// Known-legitimate seeds sampled from ground truth (§III-B); also the
    /// trusted seeds of VoteTrust's vote assignment and SybilRank's trust
    /// propagation.
    pub num_legit_seeds: usize,
    /// Known-spammer seeds sampled from ground truth.
    pub num_spammer_seeds: usize,
    /// RNG seed for the seed sampling.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            rejecto: RejectoConfig::default(),
            votetrust: VoteTrustConfig::default(),
            num_legit_seeds: 20,
            num_spammer_seeds: 20,
            seed: 0xC0FFEE,
        }
    }
}

/// Runs the full Rejecto pipeline on a simulated OSN and returns exactly
/// (up to) `budget` suspects: iterative MAAR detection terminated at the
/// suspect budget, final group trimmed by individual rejection ratio.
pub fn rejecto_suspects(sim: &SimOutput, cfg: &PipelineConfig, budget: usize) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (legit, spammer) =
        sample_seeds(sim, cfg.num_legit_seeds, cfg.num_spammer_seeds, &mut rng);
    let seeds = Seeds { legit, spammer };
    let detector = IterativeDetector::new(cfg.rejecto.clone());
    let report = detector.detect(&sim.graph, &seeds, Termination::SuspectBudget(budget));
    report.suspects_top(budget, &sim.graph)
}

/// Runs the VoteTrust baseline on the same simulated OSN and returns the
/// `budget` lowest-rated users.
pub fn votetrust_suspects(sim: &SimOutput, cfg: &PipelineConfig, budget: usize) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (legit, _) = sample_seeds(sim, cfg.num_legit_seeds, 0, &mut rng);
    let g = RequestGraph::from_requests(
        sim.graph.num_nodes(),
        sim.log.requests().iter().map(|r| (r.from, r.to, r.accepted)),
    );
    VoteTrust::new(cfg.votetrust).rank(&g, &legit).bottom(budget)
}

/// The evaluation protocol's accuracy score: true positives over
/// `max(declared, actual)`. When the detector fills the budget exactly
/// (the paper's setup) this is both precision and recall; when it declares
/// fewer — e.g. no rejection-heavy cut exists at very low spam-rejection
/// rates — the undetected fakes count against it (a vacuous
/// "precision 1.0 on zero declarations" would misread those points).
pub fn precision(suspects: &[NodeId], is_fake: &[bool]) -> f64 {
    let idx: Vec<usize> = suspects.iter().map(|s| s.index()).collect();
    let pr = eval::precision_recall(&idx, is_fake);
    let denom = pr.declared.max(pr.actual);
    if denom == 0 {
        1.0
    } else {
        pr.true_positives as f64 / denom as f64
    }
}

/// The §VI-D defense-in-depth pipeline: remove the top `removed` Rejecto
/// suspects (with their links) from the social graph, run SybilRank from
/// legitimate seeds on the sterilized graph, and return the AUC of its
/// ranking over the remaining users.
///
/// With `removed = 0` this measures plain SybilRank under friend spam —
/// the Fig 16 baseline point.
pub fn defense_in_depth(sim: &SimOutput, cfg: &PipelineConfig, removed: usize) -> f64 {
    let pruned: Vec<NodeId> = if removed == 0 {
        Vec::new()
    } else {
        rejecto_suspects(sim, cfg, removed)
    };
    let mut keep = vec![true; sim.graph.num_nodes()];
    for s in &pruned {
        keep[s.index()] = false;
    }

    // Induce the sterilized friendship graph on the kept nodes.
    let kept: Vec<NodeId> = sim
        .graph
        .nodes()
        .filter(|u| keep[u.index()])
        .collect();
    let mut new_id = vec![u32::MAX; sim.graph.num_nodes()];
    for (i, &u) in kept.iter().enumerate() {
        new_id[u.index()] = i as u32;
    }
    let mut b = GraphBuilder::new(kept.len());
    for &u in &kept {
        for &v in sim.graph.friends(u) {
            if u < v && keep[v.index()] {
                b.add_edge(NodeId(new_id[u.index()]), NodeId(new_id[v.index()]));
            }
        }
    }
    let graph = b.build();

    // Trust seeds: the sampled legitimate seeds that survived pruning.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (legit, _) = sample_seeds(sim, cfg.num_legit_seeds.max(1), 0, &mut rng);
    let seeds: Vec<NodeId> = legit
        .iter()
        .filter(|s| keep[s.index()])
        .map(|s| NodeId(new_id[s.index()]))
        .collect();
    if seeds.is_empty() {
        return 0.5;
    }

    let result = SybilRank::new(SybilRankConfig::default()).rank(&graph, &seeds);
    let is_sybil: Vec<bool> = kept.iter().map(|u| sim.is_fake[u.index()]).collect();
    result.auc(&is_sybil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simulator::{Scenario, ScenarioConfig};
    use socialgraph::generators::BarabasiAlbert;

    fn sim() -> SimOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let host = BarabasiAlbert::new(400, 4).generate(&mut rng);
        Scenario::new(ScenarioConfig { num_fakes: 60, ..ScenarioConfig::default() })
            .run(&host, 5)
    }

    #[test]
    fn rejecto_pipeline_finds_most_fakes() {
        let sim = sim();
        let cfg = PipelineConfig::default();
        let suspects = rejecto_suspects(&sim, &cfg, 60);
        let p = precision(&suspects, &sim.is_fake);
        assert!(p > 0.85, "precision {p}");
    }

    #[test]
    fn votetrust_pipeline_beats_chance() {
        let sim = sim();
        let cfg = PipelineConfig::default();
        let suspects = votetrust_suspects(&sim, &cfg, 60);
        let p = precision(&suspects, &sim.is_fake);
        assert!(p > 0.5, "precision {p}");
    }

    #[test]
    fn removing_spammers_improves_sybilrank() {
        // The paper's Fig 16 setup: only half of the Sybils spam; Rejecto
        // removes the spammers (and thus most attack edges), leaving the
        // silent Sybil community exposed to SybilRank.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let host = BarabasiAlbert::new(400, 4).generate(&mut rng);
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 60,
            spammer_fraction: 0.5,
            ..ScenarioConfig::default()
        })
        .run(&host, 5);
        let cfg = PipelineConfig::default();
        let before = defense_in_depth(&sim, &cfg, 0);
        let after = defense_in_depth(&sim, &cfg, 30);
        assert!(
            after > before - 0.02,
            "AUC degraded after pruning: {before} -> {after}"
        );
        assert!(after > 0.9, "sterilized AUC {after}");
    }

    #[test]
    fn budget_caps_suspect_count() {
        let sim = sim();
        let cfg = PipelineConfig::default();
        let suspects = rejecto_suspects(&sim, &cfg, 10);
        assert!(suspects.len() <= 10);
    }
}
