//! Subcommand implementations.

use super::args::{ArgError, Args};
use dataflow::{ClusterConfig, DistributedDetector};
use rejecto_core::store::atomic_write;
use rejecto_core::{
    Checkpoint, CheckpointStore, Completion, DetectionReport, FaultPlan, InterruptReason,
    IterativeDetector, RejectoConfig, ResourceBudget, Seeds, StoreFaults, Termination,
};
use rejection::io::LoadStats;
use rejection::AugmentedGraph;
use simulator::{Scenario, ScenarioConfig, SelfRejectionConfig};
use socialgraph::surrogates::Surrogate;
use socialgraph::{analysis, metrics, Graph, NodeId};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

/// Top-level CLI error: message plus exit-worthy context.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

macro_rules! cli_from {
    ($t:ty) => {
        impl From<$t> for CliError {
            fn from(e: $t) -> Self {
                CliError(e.to_string())
            }
        }
    };
}
cli_from!(socialgraph::GraphError);
cli_from!(rejection::io::AugmentedIoError);
cli_from!(rejecto_core::RuntimeError);

/// Opens a file for reading with the path attached to any failure, since a
/// bare `io::Error` ("No such file or directory") never names its victim.
fn open_file(path: &str) -> Result<File, CliError> {
    File::open(path).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Loads an augmented graph, strictly or leniently, under the given ingest
/// guards (resource ceilings + hostile-edge policy); lenient loads return
/// the skip accounting so commands can surface the degradation. Budget
/// trips are fatal in both modes — an over-budget input must never be
/// half-ingested as a smaller graph.
fn load_augmented(
    path: &str,
    lenient: bool,
    guards: rejection::io::IngestGuards,
) -> Result<(AugmentedGraph, LoadStats), CliError> {
    let file = open_file(path)?;
    if lenient {
        Ok(rejection::io::read_augmented_lenient_guarded(file, guards)
            .map_err(|e| e.in_file(path))?)
    } else {
        let g = rejection::io::read_augmented_guarded(file, guards).map_err(|e| e.in_file(path))?;
        Ok((g, LoadStats::default()))
    }
}

/// Dispatches a subcommand; `out` receives user-facing output (stdout in
/// `main`, a buffer in tests).
///
/// # Errors
///
/// Returns a rendered error for unknown commands, bad flags, and file
/// problems.
pub fn run<W: Write>(command: &str, raw_args: &[String], out: &mut W) -> Result<(), CliError> {
    let args = Args::parse(raw_args.iter().cloned())?;
    if args.wants_help() {
        writeln!(out, "{}", super::USAGE)?;
        return Ok(());
    }
    match command {
        "simulate" => simulate(args, out),
        "detect" => detect(args, out),
        "stats" => stats(args, out),
        "votetrust" => votetrust_cmd(args, out),
        "sybilrank" => sybilrank_cmd(args, out),
        "defense" => defense(args, out),
        other => Err(CliError(format!("unknown command {other:?}; see --help"))),
    }
}

fn parse_surrogate(name: &str) -> Result<Surrogate, CliError> {
    Surrogate::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = Surrogate::ALL.iter().map(|s| s.name()).collect();
            CliError(format!("unknown surrogate {name:?}; options: {}", names.join(", ")))
        })
}

fn parse_seed_list(raw: &str) -> Result<Vec<NodeId>, CliError> {
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map(NodeId)
                .map_err(|_| CliError(format!("bad node id {s:?} in seed list")))
        })
        .collect()
}

fn simulate<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let stem = args.require("out")?;
    let scale: f64 = args.get_or("scale", 0.2)?;
    let host = match args.get("edge-list") {
        Some(path) => {
            let (g, _) =
                socialgraph::io::read_edge_list(open_file(&path)?).map_err(|e| e.in_file(&path))?;
            g
        }
        None => {
            let name = args.get("host").unwrap_or_else(|| "Facebook".to_string());
            parse_surrogate(&name)?.generate_scaled(args.get_or("seed", 42u64)?, scale)
        }
    };
    let fakes: usize = args.get_or("fakes", ((10_000.0 * scale) as usize).max(1))?;
    // The Fig 14 whitewashing strategy: a sacrificed slice of the fakes
    // draws the rejections while the `--whitewashed` slice hides behind
    // them, which forces detection through multiple pruning rounds.
    let whitewashed: Option<usize> = args.get_opt("whitewashed")?;
    let self_requests: usize = args.get_or("self-requests", 10usize)?;
    let self_rejection_rate: f64 = args.get_or("self-rejection-rate", 0.9)?;
    let config = ScenarioConfig {
        num_fakes: fakes,
        requests_per_spammer: args.get_or("requests", 20usize)?,
        spam_rejection_rate: args.get_or("spam-rejection", 0.7)?,
        legit_rejection_rate: args.get_or("legit-rejection", 0.2)?,
        fake_intra_edges: args.get_or("intra-edges", 6usize)?,
        spammer_fraction: args.get_or("spammer-fraction", 1.0)?,
        self_rejection: whitewashed.map(|w| SelfRejectionConfig {
            whitewashed: w,
            requests_per_sender: self_requests,
            rejection_rate: self_rejection_rate,
        }),
        ..ScenarioConfig::default()
    };
    let seed: u64 = args.get_or("seed", 42)?;
    args.finish()?;

    let sim = Scenario::new(config).run(&host, seed);

    // Each output is rendered in memory and lands via the atomic write
    // protocol: an interrupted simulate can never leave a torn edge list
    // that a later lenient load half-ingests as a smaller attack.
    let graph_path = format!("{stem}.rjg");
    let mut graph_bytes = Vec::new();
    rejection::io::write_augmented(&sim.graph, &mut graph_bytes)?;
    atomic_write(Path::new(&graph_path), &graph_bytes).map_err(|e| CliError(e.to_string()))?;
    let req_path = format!("{stem}.requests");
    {
        let mut buf = Vec::new();
        for r in sim.log.requests() {
            writeln!(buf, "{} {} {}", r.from, r.to, u8::from(r.accepted))?;
        }
        atomic_write(Path::new(&req_path), &buf).map_err(|e| CliError(e.to_string()))?;
    }
    let truth_path = format!("{stem}.truth");
    {
        let mut buf = Vec::new();
        for f in &sim.fakes {
            writeln!(buf, "{f}")?;
        }
        atomic_write(Path::new(&truth_path), &buf).map_err(|e| CliError(e.to_string()))?;
    }

    writeln!(
        out,
        "simulated {} users ({} legit + {} fake), {} friendships, {} rejections, {} attack edges",
        sim.graph.num_nodes(),
        sim.num_legit,
        sim.fakes.len(),
        sim.graph.num_friendships(),
        sim.graph.num_rejections(),
        sim.attack_edges()
    )?;
    writeln!(out, "wrote {graph_path}, {req_path}, {truth_path}")?;
    Ok(())
}

fn read_truth(path: &str) -> Result<Vec<NodeId>, CliError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(File::open(path)?).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let id: u32 = t
            .parse()
            .map_err(|_| CliError(format!("{path}:{}: bad node id {t:?}", i + 1)))?;
        out.push(NodeId(id));
    }
    Ok(out)
}

/// How the user asked to interrupt a run, rendered for report lines.
fn interrupt_name(reason: InterruptReason) -> &'static str {
    match reason {
        InterruptReason::Deadline => "deadline",
        InterruptReason::PassBudget => "kl-pass budget",
        InterruptReason::RoundBudget => "round budget",
        InterruptReason::ResourceBudget => "resource budget",
        InterruptReason::Cancelled => "cancellation",
        _ => "interrupt",
    }
}

/// The one checkpoint sink both runtimes share: every generation goes
/// through the durable store (integrity frame + atomic write + retention),
/// and store failures surface through the runtime's structured
/// `CheckpointIo` failure path. Replaces two copy-pasted closures whose
/// `expect("sink only installed when a path was given")` was a latent
/// panic waiting for the call sites to drift apart.
fn checkpoint_sink(store: &CheckpointStore) -> impl FnMut(&Checkpoint) -> std::io::Result<()> + '_ {
    |ckpt| store.save(ckpt).map_err(std::io::Error::other)
}

/// Runs the detector in whichever of the four detect/resume ×
/// with/without-checkpoints modes the flags selected.
fn run_detector(
    detector: &IterativeDetector,
    g: &AugmentedGraph,
    seeds: &Seeds,
    termination: Termination,
    resume_from: Option<&Checkpoint>,
    store: Option<&CheckpointStore>,
) -> Result<DetectionReport, CliError> {
    match (resume_from, store) {
        (None, None) => Ok(detector.detect(g, seeds, termination)),
        (None, Some(s)) => {
            let mut sink = checkpoint_sink(s);
            Ok(detector.detect_with_checkpoints(g, seeds, termination, &mut sink))
        }
        (Some(c), None) => Ok(detector.resume(g, seeds, termination, c)?),
        (Some(c), Some(s)) => {
            let mut sink = checkpoint_sink(s);
            Ok(detector.resume_with_checkpoints(g, seeds, termination, c, &mut sink)?)
        }
    }
}

/// The distributed twin of [`run_detector`]: the same four modes on the
/// cluster runtime. Checkpoints are interchangeable between the two — the
/// wire format records algorithm state, not deployment — and both feed
/// the same durable store.
fn run_distributed_detector(
    detector: &DistributedDetector,
    g: &AugmentedGraph,
    seeds: &Seeds,
    termination: Termination,
    resume_from: Option<&Checkpoint>,
    store: Option<&CheckpointStore>,
) -> Result<DetectionReport, CliError> {
    match (resume_from, store) {
        (None, None) => Ok(detector.detect(g, seeds, termination)?),
        (None, Some(s)) => {
            let mut sink = checkpoint_sink(s);
            Ok(detector.detect_with_checkpoints(g, seeds, termination, &mut sink)?)
        }
        (Some(c), None) => Ok(detector.resume(g, seeds, termination, c)?),
        (Some(c), Some(s)) => {
            let mut sink = checkpoint_sink(s);
            Ok(detector.resume_with_checkpoints(g, seeds, termination, c, &mut sink)?)
        }
    }
}

fn detect<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let graph_path = args.require("graph")?;
    let budget: Option<usize> = args.get_opt("budget")?;
    let threshold: Option<f64> = args.get_opt("threshold")?;
    let truth_path = args.get("truth");
    let json: bool = args.get_or("json", false)?;
    let threads: usize = args.get_or("threads", 0)?;
    let lenient: bool = args.get_or("lenient", false)?;
    let deadline_ms: Option<u64> = args.get_opt("deadline-ms")?;
    let max_passes: Option<u64> = args.get_opt("max-passes")?;
    let max_rounds: Option<usize> = args.get_opt("max-rounds")?;
    let max_nodes: Option<u64> = args.get_opt("max-nodes")?;
    let max_edges: Option<u64> = args.get_opt("max-edges")?;
    let max_rejections: Option<u64> = args.get_opt("max-rejections")?;
    let max_checkpoint_bytes: Option<u64> = args.get_opt("max-checkpoint-bytes")?;
    let max_suspect_frac: Option<f64> = args.get_opt("max-suspect-frac")?;
    let checkpoint_path = args.get("checkpoint");
    let checkpoint_keep: Option<usize> = args.get_opt("checkpoint-keep")?;
    let resume_path = args.get("resume");
    let inject_spec = args.get("inject");
    let distributed: bool = args.get_or("distributed", false)?;
    let workers: Option<usize> = args.get_opt("workers")?;
    let request_deadline_ms: Option<u64> = args.get_opt("request-deadline-ms")?;
    let metrics_path = args.get("metrics");
    args.finish()?;

    // Metrics are opt-in: without `--metrics` the detectors run with no
    // observer attached and pay nothing for instrumentation.
    let obs = metrics_path.as_ref().map(|_| rejecto_obs::Obs::default());

    if !distributed && (workers.is_some() || request_deadline_ms.is_some()) {
        return Err(CliError(
            "--workers and --request-deadline-ms require --distributed true".to_string(),
        ));
    }
    if checkpoint_keep.is_some() && checkpoint_path.is_none() {
        return Err(CliError("--checkpoint-keep requires --checkpoint <stem>".to_string()));
    }
    if checkpoint_keep == Some(0) {
        return Err(CliError("--checkpoint-keep must retain at least 1 generation".to_string()));
    }
    if let Some(frac) = max_suspect_frac {
        if !(frac > 0.0 && frac <= 1.0) {
            return Err(CliError(
                "--max-suspect-frac must be a fraction in (0, 1]".to_string(),
            ));
        }
    }

    // Resource ceilings (space), distinct from the `--deadline-ms` /
    // `--max-passes` / `--max-rounds` run budgets (time). The ingest
    // guards bound the loader *before* allocation; the rest ride the
    // config into the detection loop and the checkpoint store.
    let resources = ResourceBudget {
        max_nodes,
        max_edges,
        max_rejections,
        max_checkpoint_bytes,
        max_suspect_frac,
    };

    let (g, load_stats) = load_augmented(&graph_path, lenient, resources.ingest_guards())?;
    if load_stats.is_degraded() {
        if let Some(obs) = &obs {
            let skipped =
                u64::try_from(load_stats.skipped_lines).expect("skipped line count fits in u64");
            obs.incr("load/skipped_lines", skipped);
        }
        let first = load_stats.first_skipped.unwrap_or(0);
        if json {
            writeln!(
                out,
                "{}",
                serde_json::json!({
                    "skipped_lines": load_stats.skipped_lines,
                    "first_skipped_line": first,
                })
            )?;
        } else {
            writeln!(
                out,
                "lenient load: skipped {} malformed line(s), first at line {first}",
                load_stats.skipped_lines
            )?;
        }
    }

    let termination = match (budget, threshold) {
        (Some(b), Some(t)) => Termination::BudgetOrThreshold { budget: b, threshold: t },
        (Some(b), None) => Termination::SuspectBudget(b),
        (None, Some(t)) => Termination::AcceptanceThreshold(t),
        (None, None) => Termination::AcceptanceThreshold(0.5),
    };
    let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
    if let Some(ms) = deadline_ms {
        config.budget.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(p) = max_passes {
        config.budget.max_kl_passes = Some(p);
    }
    if let Some(r) = max_rounds {
        config.budget.max_rounds = Some(r);
    }
    if let Some(spec) = &inject_spec {
        config.faults = FaultPlan::parse(spec).map_err(|e| CliError(format!("--inject: {e}")))?;
    }
    config.resources = resources;

    // The durable store behind `--checkpoint`: generation files plus a
    // framed manifest, with any armed torn-write/bit-flip mangles and the
    // metrics registry attached.
    let store = checkpoint_path.as_ref().map(|p| {
        let mut s = CheckpointStore::new(p)
            .with_faults(StoreFaults::new(&config.faults))
            .with_limit(max_checkpoint_bytes);
        if let Some(keep) = checkpoint_keep {
            s = s.with_keep(keep);
        }
        if let Some(obs) = &obs {
            s = s.with_obs(obs.clone());
        }
        s
    });

    // `--resume` resolves the newest *valid* generation, walking past
    // corrupt or truncated frames. Each skip is surfaced on stderr right
    // away and recorded as a structured failure on the final report.
    let resumed = match &resume_path {
        Some(p) => {
            let mut resume_store = CheckpointStore::new(p).with_limit(max_checkpoint_bytes);
            if let Some(obs) = &obs {
                resume_store = resume_store.with_obs(obs.clone());
            }
            let resume = resume_store
                .load_latest_valid()
                .map_err(|e| CliError(format!("{}", rejecto_core::RuntimeError::from(e))))?;
            if resume.fell_back() {
                for skip in &resume.skipped {
                    eprintln!("resume: {skip}");
                }
                eprintln!(
                    "resume: fell back past {} corrupt artifact(s) to {}",
                    resume.skipped.len(),
                    resume.path.display()
                );
            }
            Some(resume)
        }
        None => None,
    };
    let resume_from = resumed.as_ref().map(|r| r.checkpoint.clone());
    let mut report = if distributed {
        let mut cluster = ClusterConfig::default();
        if let Some(w) = workers {
            cluster.num_workers = w;
        }
        if let Some(ms) = request_deadline_ms {
            cluster.request_deadline = Duration::from_millis(ms);
        }
        let mut detector = DistributedDetector::new(cluster, config);
        if let Some(obs) = &obs {
            detector.set_obs(obs.clone());
        }
        run_distributed_detector(
            &detector,
            &g,
            &Seeds::default(),
            termination,
            resume_from.as_ref(),
            store.as_ref(),
        )?
    } else {
        let mut detector = IterativeDetector::new(config);
        if let Some(obs) = &obs {
            detector.set_obs(obs.clone());
        }
        run_detector(
            &detector,
            &g,
            &Seeds::default(),
            termination,
            resume_from.as_ref(),
            store.as_ref(),
        )?
    };
    // Corrupt-generation skips belong to this run's story: they render as
    // the same degraded/failure lines every other runtime failure uses.
    if let Some(resume) = &resumed {
        if resume.fell_back() {
            let mut failures = resume.skipped.clone();
            failures.extend(report.failures);
            report.failures = failures;
        }
    }

    if json {
        for group in &report.groups {
            let ids: Vec<u32> = group.nodes.iter().map(|n| n.0).collect();
            writeln!(
                out,
                "{}",
                serde_json::json!({
                    "round": group.round,
                    "acceptance_rate": group.acceptance_rate,
                    // The winning sweep parameter as the exact rational the
                    // solver used; `value` is a convenience rendering only.
                    "k": serde_json::json!({
                        "num": group.k.num(),
                        "den": group.k.den(),
                        "value": group.k.value(),
                    }),
                    "nodes": ids,
                })
            )
            .map_err(|e| CliError(e.to_string()))?;
        }
    } else {
        writeln!(out, "{} group(s) detected in {} round(s)", report.groups.len(), report.rounds)?;
        for group in &report.groups {
            writeln!(
                out,
                "  round {:>2}: {:>6} accounts at acceptance rate {:.4} (k = {})",
                group.round,
                group.nodes.len(),
                group.acceptance_rate,
                group.k
            )?;
        }
    }

    // Degraded-run diagnostics. These lines only appear for interrupted or
    // faulted runs, so clean-run JSON output stays one-group-per-line.
    if let Completion::Partial { completed_rounds, completed_k_indices, reason } =
        &report.completion
    {
        if json {
            writeln!(
                out,
                "{}",
                serde_json::json!({
                    "partial": interrupt_name(*reason),
                    "completed_rounds": *completed_rounds,
                    "completed_k_indices": completed_k_indices.clone(),
                })
            )?;
        } else {
            writeln!(
                out,
                "partial result: {} tripped after {completed_rounds} completed round(s); \
                 the groups above are all complete",
                interrupt_name(*reason)
            )?;
        }
    }
    for failure in &report.failures {
        if json {
            writeln!(out, "{}", serde_json::json!({ "failure": failure.to_string() }))?;
        } else {
            writeln!(out, "degraded: {failure}")?;
        }
    }

    if let Some(path) = truth_path {
        let truth = read_truth(&path)?;
        let mut is_fake = vec![false; g.num_nodes()];
        for t in &truth {
            if t.index() < is_fake.len() {
                is_fake[t.index()] = true;
            }
        }
        let suspects = report.suspects();
        let idx: Vec<usize> = suspects.iter().map(|s| s.index()).collect();
        let pr = eval::precision_recall(&idx, &is_fake);
        writeln!(
            out,
            "scored against {path}: precision {:.4}, recall {:.4} ({} of {} declared correct)",
            pr.precision(),
            pr.recall(),
            pr.true_positives,
            pr.declared
        )?;
    }

    if let (Some(path), Some(obs)) = (&metrics_path, &obs) {
        if path == "-" {
            write!(out, "{}", obs.human_summary())?;
        } else {
            let mut doc = obs.to_json();
            doc.push('\n');
            atomic_write(Path::new(path), doc.as_bytes())
                .map_err(|e| CliError(e.to_string()))?;
        }
    }
    Ok(())
}

fn stats<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let edge_path = args.get("graph");
    let augmented_path = args.get("augmented");
    args.finish()?;

    let (graph, rejections): (Graph, Option<(u64, u64)>) = match (edge_path, augmented_path) {
        (Some(p), None) => {
            let (g, _) =
                socialgraph::io::read_edge_list(open_file(&p)?).map_err(|e| e.in_file(&p))?;
            (g, None)
        }
        (None, Some(p)) => {
            let ag =
                rejection::io::read_augmented(open_file(&p)?).map_err(|e| e.in_file(&p))?;
            let rejected_users =
                ag.nodes().filter(|&u| ag.rejections_received(u) > 0).count() as u64;
            (ag.friendship_graph(), Some((ag.num_rejections(), rejected_users)))
        }
        _ => {
            return Err(CliError(
                "stats needs exactly one of --graph <edge list> or --augmented <.rjg>".to_string(),
            ))
        }
    };

    let deg = metrics::degree_stats(&graph);
    writeln!(out, "nodes:            {}", graph.num_nodes())?;
    writeln!(out, "edges:            {}", graph.num_edges())?;
    writeln!(out, "degree:           min {} / mean {:.2} / max {}", deg.min, deg.mean, deg.max)?;
    writeln!(out, "clustering:       {:.4}", metrics::average_clustering(&graph))?;
    let comps = metrics::connected_components(&graph);
    let largest = comps.iter().map(Vec::len).max().unwrap_or(0);
    writeln!(out, "components:       {} (largest {largest})", comps.len())?;
    if let Some(start) = comps.iter().max_by_key(|c| c.len()).and_then(|c| c.first()) {
        writeln!(out, "diameter (lb):    {}", metrics::pseudo_diameter(&graph, *start, 4))?;
    }
    writeln!(out, "degeneracy:       {}", analysis::degeneracy(&graph))?;
    if let Some(alpha) = analysis::power_law_alpha(&graph, deg.mean.ceil() as usize + 1) {
        writeln!(out, "power-law alpha:  {alpha:.2} (tail above mean degree)")?;
    }
    if let Some(r) = analysis::degree_assortativity(&graph) {
        writeln!(out, "assortativity:    {r:.4}")?;
    }
    if let Some((rej, rejected_users)) = rejections {
        writeln!(out, "rejections:       {rej} (onto {rejected_users} users)")?;
    }
    Ok(())
}

fn votetrust_cmd<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let log_path = args.require("log")?;
    let bottom: usize = args.get_or("bottom", 20)?;
    let seeds = match args.get("seeds") {
        Some(raw) => parse_seed_list(&raw)?,
        None => Vec::new(),
    };
    args.finish()?;

    let mut requests: Vec<(NodeId, NodeId, bool)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in BufReader::new(File::open(&log_path)?).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, CliError> {
            tok.and_then(|x| x.parse().ok())
                .ok_or_else(|| CliError(format!("{log_path}:{}: bad request line {t:?}", i + 1)))
        };
        let from = parse(parts.next())?;
        let to = parse(parts.next())?;
        let accepted = parse(parts.next())? != 0;
        max_id = max_id.max(from).max(to);
        requests.push((NodeId(from), NodeId(to), accepted));
    }
    let g = votetrust::RequestGraph::from_requests(max_id as usize + 1, requests);
    let ranking = votetrust::VoteTrust::default().rank(&g, &seeds);
    writeln!(out, "bottom {bottom} users by VoteTrust rating:")?;
    for n in ranking.bottom(bottom) {
        writeln!(
            out,
            "  {n}: rating {:.4}, votes {:.6}",
            ranking.ratings()[n.index()],
            ranking.votes()[n.index()]
        )?;
    }
    Ok(())
}

/// Ascending score order with index tie-break, shared by the ranking
/// commands. `total_cmp` keeps the order total even when a score is NaN
/// (it sorts after every finite value), where the old
/// `partial_cmp(..).expect(..)` chain aborted the whole CLI.
fn ranked_by_score(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx
}

fn sybilrank_cmd<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let graph_path = args.require("graph")?;
    let seeds = parse_seed_list(&args.require("seeds")?)?;
    let bottom: usize = args.get_or("bottom", 20)?;
    args.finish()?;

    let (g, _) = socialgraph::io::read_edge_list(open_file(&graph_path)?)
        .map_err(|e| e.in_file(&graph_path))?;
    if seeds.is_empty() {
        return Err(CliError("sybilrank needs at least one --seeds id".to_string()));
    }
    for s in &seeds {
        if s.index() >= g.num_nodes() {
            return Err(CliError(format!("seed {s} out of range ({} nodes)", g.num_nodes())));
        }
    }
    let result = sybilrank::SybilRank::default().rank(&g, &seeds);
    let idx = ranked_by_score(result.scores());
    writeln!(out, "bottom {bottom} users by degree-normalized trust:")?;
    for &i in idx.iter().take(bottom) {
        writeln!(out, "  {}: score {:.6}", i, result.scores()[i])?;
    }
    Ok(())
}

/// Defense in depth (§VI-D): prune Rejecto's suspects from an augmented
/// graph and report SybilRank's ranking quality before and after.
fn defense<W: Write>(mut args: Args, out: &mut W) -> Result<(), CliError> {
    let graph_path = args.require("graph")?;
    let budget: usize = args.get_or("budget", 1_000)?;
    let seeds = parse_seed_list(&args.require("seeds")?)?;
    let truth_path = args.get("truth");
    let threads: usize = args.get_or("threads", 0)?;
    args.finish()?;

    let g = rejection::io::read_augmented(open_file(&graph_path)?)
        .map_err(|e| e.in_file(&graph_path))?;
    if seeds.is_empty() {
        return Err(CliError("defense needs at least one --seeds id".to_string()));
    }
    for s in &seeds {
        if s.index() >= g.num_nodes() {
            return Err(CliError(format!("seed {s} out of range ({} nodes)", g.num_nodes())));
        }
    }

    let detector = IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() });
    let report = detector.detect(
        &g,
        &Seeds { legit: seeds.clone(), spammer: Vec::new() },
        Termination::SuspectBudget(budget),
    );
    let pruned = report.suspects_top(budget, &g);
    writeln!(out, "rejecto pruned {} suspects in {} round(s)", pruned.len(), report.rounds)?;

    // Sterilized friendship graph: drop pruned nodes with their links.
    let mut keep = vec![true; g.num_nodes()];
    for s in &pruned {
        keep[s.index()] = false;
    }
    let kept: Vec<NodeId> = g.nodes().filter(|u| keep[u.index()]).collect();
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (i, &u) in kept.iter().enumerate() {
        new_id[u.index()] = i as u32;
    }
    let mut b = socialgraph::GraphBuilder::new(kept.len());
    for &u in &kept {
        for &v in g.friends(u) {
            if u < v && keep[v.index()] {
                b.add_edge(NodeId(new_id[u.index()]), NodeId(new_id[v.index()]));
            }
        }
    }
    let sterilized = b.build();
    let mapped_seeds: Vec<NodeId> = seeds
        .iter()
        .filter(|s| keep[s.index()])
        .map(|s| NodeId(new_id[s.index()]))
        .collect();
    if mapped_seeds.is_empty() {
        return Err(CliError("all seeds were pruned; supply known-legit seeds".to_string()));
    }

    let before = sybilrank::SybilRank::default().rank(&g.friendship_graph(), &seeds);
    let after = sybilrank::SybilRank::default().rank(&sterilized, &mapped_seeds);
    writeln!(
        out,
        "sybilrank ranking spans {} users before, {} after pruning",
        g.num_nodes(),
        sterilized.num_nodes()
    )?;

    if let Some(path) = truth_path {
        let truth = read_truth(&path)?;
        let mut is_fake = vec![false; g.num_nodes()];
        for t in &truth {
            if t.index() < is_fake.len() {
                is_fake[t.index()] = true;
            }
        }
        let auc_before = before.auc(&is_fake);
        let kept_fake: Vec<bool> = kept.iter().map(|u| is_fake[u.index()]).collect();
        let auc_after = after.auc(&kept_fake);
        let tp = pruned.iter().filter(|s| is_fake[s.index()]).count();
        writeln!(out, "pruned true fakes: {tp} of {}", pruned.len())?;
        writeln!(out, "sybilrank AUC: {auc_before:.4} before, {auc_after:.4} after")?;
    }
    Ok(())
}

/// Helper for tests: run a command against string args.
#[cfg(test)]
pub fn run_to_string(command: &str, args: &[&str]) -> Result<String, CliError> {
    let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    run(command, &raw, &mut buf)?;
    Ok(String::from_utf8(buf).expect("utf-8 output"))
}

#[allow(unused)]
fn _path_exists(p: &Path) -> bool {
    p.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rejecto-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn simulate_then_detect_roundtrip() {
        let dir = tmpdir();
        let stem = dir.join("attack");
        let stem_s = stem.to_str().unwrap();
        let out = run_to_string(
            "simulate",
            &["--out", stem_s, "--scale", "0.03", "--fakes", "60", "--seed", "5"],
        )
        .unwrap();
        assert!(out.contains("simulated"), "{out}");

        let graph = format!("{stem_s}.rjg");
        let truth = format!("{stem_s}.truth");
        let report = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "60", "--truth", &truth],
        )
        .unwrap();
        assert!(report.contains("group(s) detected"), "{report}");
        let precision: f64 = report
            .split("precision ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("precision in output");
        assert!(precision > 0.9, "cli precision {precision}\n{report}");
    }

    #[test]
    fn detect_json_round_trips_the_exact_k() {
        let dir = tmpdir();
        let stem = dir.join("json");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let out = run_to_string(
            "detect",
            &["--graph", &format!("{stem_s}.rjg"), "--budget", "40", "--json", "true"],
        )
        .unwrap();
        let sweep = RejectoConfig::default().k_sweep();
        assert!(!out.lines().collect::<Vec<_>>().is_empty(), "no groups emitted");
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("json line");
            assert!(v["acceptance_rate"].is_number());
            // The serialized num/den must reconstruct the winning KParam
            // exactly — it is a member of the configured sweep, and its
            // reported float value matches the rational bit-for-bit.
            let num = v["k"]["num"].as_u64().expect("k.num is a u64");
            let den = v["k"]["den"].as_u64().expect("k.den is a u64");
            let k = rejecto_core::KParam::new(num, den);
            assert!(sweep.contains(&k), "k = {k} not in the default sweep");
            assert_eq!(
                v["k"]["value"].as_f64().expect("k.value is a float").to_bits(),
                k.value().to_bits()
            );
        }
    }

    #[test]
    fn detect_output_is_independent_of_thread_count() {
        let dir = tmpdir();
        let stem = dir.join("threads");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let run_with = |threads: &str| {
            run_to_string(
                "detect",
                &["--graph", &graph, "--budget", "40", "--json", "true", "--threads", threads],
            )
            .unwrap()
        };
        let serial = run_with("1");
        assert_eq!(serial, run_with("4"), "threads=4 output differs from serial");
        assert_eq!(serial, run_with("0"), "threads=auto output differs from serial");
    }

    #[test]
    fn detect_max_nodes_budget_is_a_typed_error_before_allocation() {
        let dir = tmpdir();
        let stem = dir.join("res-nodes");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let err = run_to_string("detect", &["--graph", &graph, "--max-nodes", "5"])
            .expect_err("a 5-node ceiling must reject the simulated graph");
        assert!(err.0.contains("resource budget exhausted: nodes"), "{err}");
        // Within budget, the same flags load fine.
        run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--max-nodes", "100000"],
        )
        .expect("a generous ceiling must not trip");
    }

    #[test]
    fn detect_max_suspect_frac_reports_a_resource_budget_partial() {
        let dir = tmpdir();
        let stem = dir.join("res-frac");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let out = run_to_string(
            "detect",
            &[
                "--graph",
                &format!("{stem_s}.rjg"),
                "--budget",
                "40",
                "--json",
                "true",
                "--max-suspect-frac",
                "0.001",
            ],
        )
        .unwrap();
        assert!(out.contains("\"partial\":\"resource budget\""), "{out}");
    }

    #[test]
    fn detect_max_checkpoint_bytes_degrades_the_save_with_a_typed_failure() {
        let dir = tmpdir();
        let stem = dir.join("res-ckpt");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let out = run_to_string(
            "detect",
            &[
                "--graph",
                &format!("{stem_s}.rjg"),
                "--budget",
                "40",
                "--checkpoint",
                &format!("{stem_s}.ckpt"),
                "--max-checkpoint-bytes",
                "32",
            ],
        )
        .unwrap();
        assert!(out.contains("degraded:"), "{out}");
        assert!(out.contains("exceeds the 32-byte budget"), "{out}");
    }

    #[test]
    fn detect_checkpoint_then_resume_matches_uninterrupted_run() {
        let dir = tmpdir();
        let stem = dir.join("ckpt");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let ckpt = format!("{stem_s}.ckpt");

        let full = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--json", "true"],
        )
        .unwrap();

        // Interrupt after one round, leaving a checkpoint behind...
        let partial = run_to_string(
            "detect",
            &[
                "--graph", &graph, "--budget", "40", "--json", "true", "--max-rounds", "1",
                "--checkpoint", &ckpt,
            ],
        )
        .unwrap();
        assert!(partial.contains("\"partial\":\"round budget\""), "{partial}");

        // ...then resume: the resumed report re-emits the checkpointed
        // groups and finishes the run, so its output must be byte-identical
        // to the uninterrupted run.
        let resumed = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--json", "true", "--resume", &ckpt],
        )
        .unwrap();
        assert_eq!(resumed, full, "resumed run differs from the uninterrupted run");
    }

    #[test]
    fn detect_deadline_zero_reports_a_partial_run() {
        let dir = tmpdir();
        let stem = dir.join("deadline");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let out = run_to_string(
            "detect",
            &["--graph", &format!("{stem_s}.rjg"), "--budget", "30", "--deadline-ms", "0"],
        )
        .unwrap();
        assert!(out.contains("partial result: deadline tripped"), "{out}");
    }

    #[test]
    fn detect_survives_an_injected_worker_panic() {
        let dir = tmpdir();
        let stem = dir.join("inject");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let clean =
            run_to_string("detect", &["--graph", &graph, "--budget", "30"]).unwrap();
        // A one-shot panic is retried serially: same answer, no extra lines.
        let faulted = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "30", "--inject", "worker_panic@k=3"],
        )
        .unwrap();
        assert_eq!(clean, faulted, "one-shot injected panic changed the output");
        // A persistent panic degrades: the failure surfaces in the report.
        let degraded = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "30", "--inject", "worker_panic@k=3:always"],
        )
        .unwrap();
        assert!(degraded.contains("degraded:"), "{degraded}");
    }

    #[test]
    fn detect_distributed_matches_local_cut_across_worker_counts() {
        let dir = tmpdir();
        let stem = dir.join("dist");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let run_with = |extra: &[&str]| {
            let mut argv = vec!["--graph", &graph, "--budget", "40", "--json", "true"];
            argv.extend_from_slice(extra);
            run_to_string("detect", &argv).unwrap()
        };
        let one = run_with(&["--distributed", "true", "--workers", "1"]);
        assert!(!one.is_empty(), "distributed run emitted nothing");
        let four = run_with(&["--distributed", "true", "--workers", "4"]);
        assert_eq!(one, four, "worker count changed the distributed output");
    }

    #[test]
    fn detect_distributed_fault_injection_is_invisible() {
        let dir = tmpdir();
        let stem = dir.join("dist-fault");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let clean = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--distributed", "true", "--workers", "3"],
        )
        .unwrap();
        let faulted = run_to_string(
            "detect",
            &[
                "--graph", &graph, "--budget", "40", "--distributed", "true", "--workers", "3",
                "--request-deadline-ms", "200",
                "--inject", "worker_death@fetch=2,worker_death@fetch=5:x2,worker_hang@k=1",
            ],
        )
        .unwrap();
        assert_eq!(clean, faulted, "fault recovery leaked into the CLI output");
    }

    #[test]
    fn detect_distributed_resumes_a_local_checkpoint() {
        let dir = tmpdir();
        let stem = dir.join("dist-ckpt");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let ckpt = format!("{stem_s}.ckpt");
        let full =
            run_to_string("detect", &["--graph", &graph, "--budget", "40", "--json", "true"])
                .unwrap();
        // Halt a *local* run after one round, resume it *distributed*.
        run_to_string(
            "detect",
            &[
                "--graph", &graph, "--budget", "40", "--json", "true", "--max-rounds", "1",
                "--checkpoint", &ckpt,
            ],
        )
        .unwrap();
        let resumed = run_to_string(
            "detect",
            &[
                "--graph", &graph, "--budget", "40", "--json", "true", "--resume", &ckpt,
                "--distributed", "true", "--workers", "2",
            ],
        )
        .unwrap();
        assert_eq!(resumed, full, "distributed resume diverged from the local run");
    }

    #[test]
    fn distributed_flags_require_distributed_mode() {
        let dir = tmpdir();
        let stem = dir.join("dist-flags");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let err = run_to_string(
            "detect",
            &["--graph", &format!("{stem_s}.rjg"), "--budget", "30", "--workers", "4"],
        )
        .unwrap_err();
        assert!(err.0.contains("--distributed"), "{err}");
    }

    #[test]
    fn detect_lenient_load_counts_skipped_lines() {
        let dir = tmpdir();
        let stem = dir.join("lenient");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let mangled = format!("{stem_s}-mangled.rjg");
        let mut text = std::fs::read_to_string(&graph).unwrap();
        text.push_str("X 0 1\nF 0 banana\n");
        std::fs::write(&mangled, text).unwrap();

        let err = run_to_string("detect", &["--graph", &mangled, "--budget", "30"]).unwrap_err();
        assert!(err.0.contains(&mangled), "strict error must name the file: {err}");
        assert!(err.0.contains("\"X\""), "strict error must name the token: {err}");

        let out = run_to_string(
            "detect",
            &["--graph", &mangled, "--budget", "30", "--lenient", "true"],
        )
        .unwrap();
        assert!(out.contains("skipped 2 malformed line(s)"), "{out}");
    }

    #[test]
    fn detect_metrics_file_is_versioned_and_thread_invariant() {
        let dir = tmpdir();
        let stem = dir.join("metrics");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "40"]).unwrap();
        let graph = format!("{stem_s}.rjg");
        let m1 = format!("{stem_s}-t1.metrics.json");
        let m4 = format!("{stem_s}-t4.metrics.json");
        run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--threads", "1", "--metrics", &m1],
        )
        .unwrap();
        run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--threads", "4", "--metrics", &m4],
        )
        .unwrap();
        let doc1 = std::fs::read_to_string(&m1).unwrap();
        let doc4 = std::fs::read_to_string(&m4).unwrap();
        assert!(doc1.contains(&format!("\"schema\": \"{}\"", rejecto_obs::SCHEMA)), "{doc1}");
        assert!(doc1.contains("\"kl/moves_committed\""), "{doc1}");
        assert!(doc1.contains("\"timings\""), "{doc1}");
        assert_eq!(
            rejecto_obs::strip_timings(&doc1),
            rejecto_obs::strip_timings(&doc4),
            "metrics outside `timings` must not depend on --threads"
        );

        let human = run_to_string(
            "detect",
            &["--graph", &graph, "--budget", "40", "--metrics", "-"],
        )
        .unwrap();
        assert!(human.contains(&format!("metrics ({})", rejecto_obs::SCHEMA)), "{human}");
        assert!(human.contains("kl/moves_committed"), "{human}");
    }

    #[test]
    fn stats_reports_augmented_numbers() {
        let dir = tmpdir();
        let stem = dir.join("stats");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let out =
            run_to_string("stats", &["--augmented", &format!("{stem_s}.rjg")]).unwrap();
        assert!(out.contains("rejections:"), "{out}");
        assert!(out.contains("clustering:"), "{out}");
    }

    #[test]
    fn votetrust_ranks_from_request_log() {
        let dir = tmpdir();
        let stem = dir.join("vt");
        let stem_s = stem.to_str().unwrap();
        run_to_string("simulate", &["--out", stem_s, "--scale", "0.03", "--fakes", "30"]).unwrap();
        let out = run_to_string(
            "votetrust",
            &["--log", &format!("{stem_s}.requests"), "--bottom", "5", "--seeds", "0,1"],
        )
        .unwrap();
        assert_eq!(out.lines().count(), 6, "{out}");
    }

    /// Regression test: the ranking sort used
    /// `partial_cmp(..).expect("finite scores")`, which panicked the CLI
    /// the moment any score was NaN. The order must instead stay total
    /// (`total_cmp`): NaN sorts after every finite score, ties break by
    /// index, and no input can abort the process.
    #[test]
    fn score_ranking_survives_nan_scores() {
        let order = ranked_by_score(&[0.5, f64::NAN, 0.25, 0.5]);
        assert_eq!(order, vec![2, 0, 3, 1], "NaN must sort last, ties by index");
    }

    /// A degree-zero node is the realistic route to a pathological score
    /// under degree normalization; the whole rank-then-sort path must
    /// stay deterministic and panic-free for it.
    #[test]
    fn sybilrank_ranking_handles_an_isolated_node() {
        let mut b = socialgraph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build(); // node 1 has degree zero
        let result = sybilrank::SybilRank::default().rank(&g, &[NodeId(0)]);
        let order = ranked_by_score(result.scores());
        assert_eq!(order.len(), 4);
        assert!(order.contains(&1), "isolated node missing from the ranking");
        assert_eq!(order, ranked_by_score(result.scores()), "order must be stable");
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run_to_string("frobnicate", &[]).unwrap_err();
        assert!(err.0.contains("unknown command"));
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = run_to_string("stats", &["--bogus", "1"]).unwrap_err();
        assert!(err.0.contains("unknown flag") || err.0.contains("stats needs"), "{err}");
    }
}
