//! The `rejecto` command-line tool: simulate attacks, persist augmented
//! graphs, and run the detectors from the shell.
//!
//! ```text
//! rejecto simulate  --out attack.rjg [--host Facebook] [--scale 0.2] ...
//! rejecto detect    --graph attack.rjg [--budget N | --threshold F] ...
//! rejecto stats     --graph edges.txt | --augmented attack.rjg
//! rejecto votetrust --log requests.log [--bottom N]
//! rejecto sybilrank --graph edges.txt --seeds 0,1,2 [--bottom N]
//! ```

mod args;
mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
rejecto — friend-spam detection via social rejections (ICDCS'15 reproduction)

USAGE:
  rejecto <COMMAND> [--key value ...]

COMMANDS:
  simulate    Simulate a friend-spam attack on a surrogate or SNAP host
              graph; writes the augmented graph, request log, and ground
              truth.
                --out <stem>          output stem (writes <stem>.rjg,
                                      <stem>.requests, <stem>.truth)
                --host <name>         Table-I surrogate [default Facebook]
                --edge-list <path>    ... or a SNAP edge list as the host
                --scale <f>           surrogate scale [default 0.2]
                --fakes <n>           injected fakes [default scale*10000]
                --requests <n>        spam requests per fake [default 20]
                --spam-rejection <f>  spam rejection rate [default 0.7]
                --legit-rejection <f> legit rejection rate [default 0.2]
                --intra-edges <n>     intra-fake edges per fake [default 6]
                --spammer-fraction <f> fraction of fakes that spam [1.0]
                --whitewashed <n>     self-rejection attack: this many
                                      fakes keep spamming but also reject
                                      internal requests from sacrificed
                                      fakes (who send no spam to legit
                                      users); enables the mode
                --self-requests <n>   requests each sacrificed fake sends
                                      to the whitewashed set [default 10]
                                      (needs --whitewashed)
                --self-rejection-rate <f>
                                      rate at which whitewashed fakes
                                      reject them (the Fig 14 sweep axis)
                                      [default 0.9] (needs --whitewashed)
                --seed <u64>          RNG seed [default 42]

  detect      Run iterative MAAR detection on an augmented graph.
                --graph <path.rjg>    input augmented graph
                --budget <n>          stop after n suspects
                --threshold <f>       ... or at this acceptance rate
                --truth <path>        optional ground truth for scoring
                --json <bool>         machine-readable output [false]
                --threads <n>         k-sweep worker threads; 0 = all
                                      cores, 1 = serial [default 0].
                                      Results are identical for every
                                      value (deterministic reduction).
                --lenient <bool>      skip+count malformed graph lines
                                      instead of failing the load [false]
                --deadline-ms <n>     wall-clock budget; an expired run
                                      returns a partial report
                --max-passes <n>      global KL inner-pass budget
                --max-rounds <n>      stop after n completed prune rounds
                --max-nodes <n>       resource ceiling: reject inputs
                                      declaring more than n nodes before
                                      any allocation happens
                --max-edges <n>       resource ceiling on friendship edges
                --max-rejections <n>  resource ceiling on rejection edges
                --max-checkpoint-bytes <n>
                                      resource ceiling on any checkpoint
                                      artifact, enforced on save (the frame
                                      is never written) and on load (gated
                                      on file metadata before the bytes
                                      are read)
                --max-suspect-frac <f>
                                      resource ceiling on the cumulative
                                      suspect fraction of the input graph;
                                      the offending round is rolled back
                                      and the run reports a partial result
                                      (deterministic)
                --checkpoint <stem>   write checksummed checkpoint
                                      generations (<stem>.gen-<round>.json
                                      plus <stem>.manifest) after every
                                      completed round, each via the atomic
                                      write protocol
                --checkpoint-keep <n> checkpoint generations retained
                                      before pruning [default 3]
                                      (needs --checkpoint)
                --resume <stem>       resume from the newest *valid*
                                      generation under a --checkpoint stem
                                      (corrupt/truncated generations are
                                      skipped with a recorded failure; a
                                      plain pre-generational checkpoint
                                      file also works; same graph
                                      required; local and distributed
                                      checkpoints are interchangeable)
                --distributed <bool>  run on the in-process cluster
                                      runtime (§V); the report is byte-
                                      identical to the local run at every
                                      worker count [false]
                --workers <n>         cluster worker count [default 4]
                                      (needs --distributed)
                --request-deadline-ms <n>
                                      per-request watchdog deadline; a
                                      worker silent past it is declared
                                      hung and respawned from lineage
                                      [default 5000] (needs --distributed)
                --metrics <path|->    write run metrics as versioned JSON
                                      (rejecto-metrics/v1); everything
                                      outside the trailing `timings`
                                      section is byte-identical across
                                      --threads / --workers values.
                                      `-` prints a human summary instead
                --inject <spec>       deterministic fault injection, e.g.
                                      worker_panic@k=3,io_error@round=2,
                                      deadline=50ms; distributed forms:
                                      worker_death@fetch=N[:xM] (kill a
                                      worker at the Nth fetch, M times),
                                      worker_hang@k=N (hang one worker
                                      during the Nth sweep index);
                                      durable-store forms:
                                      torn_write@round=N (truncate the
                                      round-N checkpoint generation),
                                      bit_flip@round=N (flip one bit in
                                      it) (testing only)

  stats       Structural statistics of a graph.
                --graph <path>        SNAP edge list, or
                --augmented <path>    augmented graph (.rjg)

  votetrust   Rank users with the VoteTrust baseline.
                --log <path>          request log (from to accepted)
                --bottom <n>          how many suspects to print [20]
                --seeds <ids>         trusted seeds, comma-separated

  sybilrank   Rank users with SybilRank.
                --graph <path>        SNAP edge list
                --seeds <ids>         trust seeds, comma-separated
                --bottom <n>          how many low-trust users to print [20]

  defense     Defense in depth: prune Rejecto's suspects, then report
              SybilRank's ranking quality before/after.
                --graph <path.rjg>    augmented graph
                --seeds <ids>         known-legit seeds, comma-separated
                --budget <n>          suspects to prune [1000]
                --truth <path>        ground truth for AUC scoring
                --threads <n>         k-sweep worker threads [default 0]

Run `rejecto <COMMAND> --help` for the command's flags.
";
