//! A small, dependency-free argument parser for the CLI.
//!
//! Flags are `--key value` pairs (plus bare `--help`); each subcommand
//! declares which keys it understands and unknown keys are rejected with a
//! helpful message.

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    /// Keys the caller has consumed (for unknown-flag detection).
    known: Vec<String>,
}

/// Argument-parsing errors, rendered to the user verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` pairs from raw arguments.
    ///
    /// # Errors
    ///
    /// Returns an error for positional arguments or a trailing flag with
    /// no value.
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = HashMap::new();
        let mut iter = raw.into_iter().map(Into::into);
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            if key == "help" {
                values.insert("help".to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("flag --{key} requires a value")))?;
            values.insert(key.to_string(), value);
        }
        Ok(Args { values, known: Vec::new() })
    }

    /// Whether `--help` was given.
    pub fn wants_help(&self) -> bool {
        self.values.contains_key("help")
    }

    /// A string flag.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.known.push(key.to_string());
        self.values.get(key).cloned()
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing flag.
    pub fn require(&mut self, key: &str) -> Result<String, ArgError> {
        self.get(key).ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// An optional parsed flag.
    ///
    /// # Errors
    ///
    /// Returns an error if present but unparsable.
    pub fn get_opt<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// Rejects any flag the subcommand did not consume.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown flag.
    pub fn finish(self) -> Result<(), ArgError> {
        for key in self.values.keys() {
            if key != "help" && !self.known.iter().any(|k| k == key) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs() {
        let mut a = Args::parse(["--scale", "0.5", "--seed", "7"]).unwrap();
        assert_eq!(a.get_or("scale", 1.0).unwrap(), 0.5);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        a.finish().unwrap();
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(["oops"]).is_err());
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(Args::parse(["--graph"]).is_err());
    }

    #[test]
    fn requires_missing_flag() {
        let mut a = Args::parse([] as [&str; 0]).unwrap();
        assert!(a.require("graph").is_err());
    }

    #[test]
    fn flags_defaults_apply() {
        let mut a = Args::parse([] as [&str; 0]).unwrap();
        assert_eq!(a.get_or("budget", 10usize).unwrap(), 10);
        assert_eq!(a.get_opt::<f64>("threshold").unwrap(), None);
    }

    #[test]
    fn unknown_flags_are_rejected_at_finish() {
        let mut a = Args::parse(["--graph", "x", "--bogus", "1"]).unwrap();
        let _ = a.get("graph");
        assert!(a.finish().is_err());
    }

    #[test]
    fn bad_parse_is_reported() {
        let mut a = Args::parse(["--seed", "banana"]).unwrap();
        let err = a.get_or("seed", 0u64).unwrap_err();
        assert!(err.0.contains("banana"));
    }

    #[test]
    fn help_flag_needs_no_value() {
        let a = Args::parse(["--help"]).unwrap();
        assert!(a.wants_help());
    }
}
