//! The `rejecto` CLI entry point; see [`rejecto::cli`] for the commands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", rejecto::cli::USAGE);
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", rejecto::cli::USAGE);
        return ExitCode::SUCCESS;
    }
    let mut stdout = std::io::stdout().lock();
    match rejecto::cli::run(command, rest, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        // A closed pipe (e.g. piping into `head`) is a normal exit.
        Err(e) if e.0.contains("Broken pipe") => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
