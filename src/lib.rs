//! # Rejecto — Combating Friend Spam Using Social Rejections
//!
//! A from-scratch reproduction of *"Combating Friend Spam Using Social
//! Rejections"* (Cao, Sirivianos, Yang, Munagala — ICDCS 2015): a system
//! that detects fake OSN accounts used for friend spam by partitioning a
//! rejection-augmented social graph at the cut with the **minimum aggregate
//! acceptance rate** (MAAR), solved with an extended Kernighan–Lin
//! heuristic and hardened against the collusion and self-rejection attack
//! strategies.
//!
//! This facade crate re-exports the workspace and offers the end-to-end
//! [`pipeline`] the examples and experiment harnesses drive:
//!
//! | crate | contents |
//! |---|---|
//! | [`socialgraph`] | graph substrate: storage, generators, sampling, metrics, I/O |
//! | [`rejection`] | the augmented graph `G = (V, F, R⃗)` and cut bookkeeping |
//! | [`kl`] | bucket list, classic KL, and the paper's extended KL |
//! | [`rejecto_core`] | MAAR solver, iterative detection, seeds |
//! | [`votetrust`] | the VoteTrust baseline (INFOCOM'13) |
//! | [`sybilrank`] | SybilRank (NSDI'12) for the defense-in-depth pipeline |
//! | [`simulator`] | the §VI-A attack/workload simulator |
//! | [`eval`] | precision/recall, ROC/AUC, CDFs |
//! | [`dataflow`] | the Spark-substitute master/worker runtime (§V) |
//!
//! # Quickstart
//!
//! ```
//! use rejecto::pipeline::{self, PipelineConfig};
//! use rejecto::simulator::{Scenario, ScenarioConfig};
//! use rejecto::socialgraph::surrogates::Surrogate;
//!
//! // A small Facebook-like host graph with 50 injected fakes.
//! let host = Surrogate::Facebook.generate_scaled(1, 0.05);
//! let sim = Scenario::new(ScenarioConfig {
//!     num_fakes: 50,
//!     ..ScenarioConfig::default()
//! })
//! .run(&host, 7);
//!
//! let cfg = PipelineConfig::default();
//! let suspects = pipeline::rejecto_suspects(&sim, &cfg, 50);
//! let accuracy = pipeline::precision(&suspects, &sim.is_fake);
//! assert!(accuracy > 0.9, "precision {accuracy}");
//! ```

#![forbid(unsafe_code)]

pub use dataflow;
pub use eval;
pub use kl;
pub use rejection;
pub use rejecto_core;
pub use simulator;
pub use socialgraph;
pub use sybilrank;
pub use votetrust;

pub mod cli;
pub mod pipeline;
