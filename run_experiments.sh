#!/bin/bash
# Full experiment campaign; logs under results/logs/.
set -u
cd /root/repo
mkdir -p results/logs
run() {
  local name=$1; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  "$@" > results/logs/$name.log 2>&1
  echo "    done ($(date +%H:%M:%S))"
}
B=./target/release
run fig01 $B/fig01_purchased_accounts
run fig03_05 $B/fig03_05_friend_cdfs
run table1 $B/table1_graphs
run fig09 $B/fig09_request_volume
run fig10 $B/fig10_half_spammers
run fig11 $B/fig11_spam_rejection_rate
run fig12 $B/fig12_legit_rejection_rate
run fig13 $B/fig13_collusion
run fig14 $B/fig14_self_rejection
run fig15 $B/fig15_rejections_on_legit
run fig16 $B/fig16_defense_in_depth
run table2 env REJECTO_SCALE=0.1 $B/table2_scalability
run ablation_seeds $B/ablation_seeds
run ablation_ksweep $B/ablation_ksweep
run ablation_init $B/ablation_init
run ablation_prefetch $B/ablation_prefetch
run ablation_community_seeds env REJECTO_SCALE=0.5 $B/ablation_community_seeds
run ext_compromised env REJECTO_SCALE=0.5 $B/ext_compromised
run fig17 env REJECTO_SCALE=0.5 REJECTO_POINTS=5 $B/fig17_sensitivity_all_graphs
run fig18 env REJECTO_SCALE=0.5 REJECTO_POINTS=5 $B/fig18_resilience_all_graphs
run render_figures $B/render_figures
echo ALL_DONE
