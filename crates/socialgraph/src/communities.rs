//! Community detection by synchronous label propagation.
//!
//! §IV-F: "To ensure sufficient seed coverage, one could employ the
//! community-based seed selection as in SybilRank." SybilRank detects
//! communities of the social graph and places trust seeds in each, so that
//! no legitimate community is left unseeded (an unseeded community is
//! exactly the "problematic legitimate-user cut" a spurious MAAR partition
//! could carve off). This module provides the community detector and
//! [`spread_seeds`], the coverage-aware seed picker.

use crate::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A community assignment: `label[u]` identifies `u`'s community; labels
/// are compacted to `0..num_communities`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communities {
    label: Vec<u32>,
    sizes: Vec<usize>,
}

impl Communities {
    /// The community of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn community_of(&self, u: NodeId) -> u32 {
        self.label[u.index()]
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether there are no communities (empty graph).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Community sizes, indexed by label.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Members of community `c`, ascending.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Label propagation: every node starts in its own community; in each
/// round (asynchronous, random node order) a node adopts the most frequent
/// label among its neighbors. Ties keep the node's current label when it
/// is among the maxima, otherwise pick uniformly at random among the tied
/// labels — a *smallest-label* tie-break would let one label invade a
/// neighboring community across a single bridge edge while every
/// neighborhood is still all-singleton. Converges in a few rounds on
/// social graphs.
///
/// Label counts live in a `BTreeMap` so the scan order over candidate
/// labels is the label order itself, never allocator- or hash-seed
/// dependent: for a fixed `rng` seed the outcome is reproducible
/// byte-for-byte (`cargo xtask check` bans `HashMap` iteration in this
/// crate for exactly this reason).
///
/// `max_rounds` caps the iteration (label propagation can oscillate on
/// bipartite-ish structures).
pub fn label_propagation<R: Rng + ?Sized>(g: &Graph, max_rounds: usize, rng: &mut R) -> Communities {
    let n = g.num_nodes();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    let mut tied: Vec<u32> = Vec::new();

    for _ in 0..max_rounds {
        order.shuffle(rng);
        let mut changed = 0usize;
        for &i in &order {
            let u = NodeId::from_index(i);
            if g.degree(u) == 0 {
                continue;
            }
            counts.clear();
            for &v in g.neighbors(u) {
                *counts.entry(label[v.index()]).or_insert(0) += 1;
            }
            let top = *counts.values().max().expect("non-empty neighbor set");
            tied.clear();
            tied.extend(counts.iter().filter(|&(_, &c)| c == top).map(|(&l, _)| l));
            let current = label[i];
            let best = if tied.contains(&current) {
                current
            } else {
                *tied.choose(rng).expect("at least one maximal label")
            };
            if best != current {
                label[i] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }

    // Compact labels (BTreeMap: relabeling is independent of insertion
    // history, so equal label vectors always compact identically).
    let mut remap: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    for l in &mut label {
        let next = remap.len() as u32;
        let id = *remap.entry(*l).or_insert(next);
        if id as usize == sizes.len() {
            sizes.push(0);
        }
        sizes[id as usize] += 1;
        *l = id;
    }
    Communities { label, sizes }
}

/// Picks up to `budget` seed nodes spread across communities, with seats
/// allocated **proportionally to community size** (largest-remainder
/// method): every community large enough to matter is anchored, and the
/// bulk of the seed budget stays inside the big communities where the
/// §IV-F spurious cuts could otherwise form. Label propagation on social
/// graphs typically yields a few giant communities plus singleton dust —
/// one-seat-per-community allocation would squander the budget on the
/// dust.
pub fn spread_seeds<R: Rng + ?Sized>(
    g: &Graph,
    communities: &Communities,
    budget: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let _ = g;
    if budget == 0 || communities.is_empty() {
        return Vec::new();
    }
    let mut per_community: Vec<Vec<NodeId>> = (0..communities.len() as u32)
        .map(|c| {
            let mut m = communities.members(c);
            m.shuffle(rng);
            m
        })
        .collect();
    per_community.sort_by_key(|m| std::cmp::Reverse(m.len()));
    let total: usize = per_community.iter().map(Vec::len).sum();
    let budget = budget.min(total);

    // Largest-remainder apportionment of `budget` seats by size.
    let mut seats: Vec<usize> = Vec::with_capacity(per_community.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(per_community.len());
    let mut assigned = 0usize;
    for (i, m) in per_community.iter().enumerate() {
        let exact = budget as f64 * m.len() as f64 / total as f64;
        let floor = (exact.floor() as usize).min(m.len());
        seats.push(floor);
        assigned += floor;
        remainders.push((exact - floor as f64, i));
    }
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut ri = 0usize;
    while assigned < budget && ri < remainders.len() {
        let i = remainders[ri].1;
        if seats[i] < per_community[i].len() {
            seats[i] += 1;
            assigned += 1;
        }
        ri += 1;
        if ri == remainders.len() && assigned < budget {
            // Spill any leftover seats into communities with capacity.
            ri = 0;
        }
    }

    let mut seeds = Vec::with_capacity(budget);
    for (m, &s) in per_community.iter().zip(&seats) {
        seeds.extend(m.iter().copied().take(s));
    }
    seeds.sort_unstable();
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two cliques joined by one bridge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        Graph::from_edges(10, edges)
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = label_propagation(&g, 16, &mut rng);
        assert_eq!(c.len(), 2, "expected two communities, got {}", c.len());
        // Each clique is uniform.
        for base in [0u32, 5] {
            let l = c.community_of(NodeId(base));
            for i in 1..5 {
                assert_eq!(c.community_of(NodeId(base + i)), l);
            }
        }
        assert_ne!(c.community_of(NodeId(0)), c.community_of(NodeId(5)));
    }

    #[test]
    fn sizes_partition_the_nodes() {
        let g = two_cliques();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = label_propagation(&g, 16, &mut rng);
        assert_eq!(c.sizes().iter().sum::<usize>(), 10);
        for label in 0..c.len() as u32 {
            assert_eq!(c.members(label).len(), c.sizes()[label as usize]);
        }
    }

    #[test]
    fn spread_seeds_anchors_equal_communities_evenly() {
        let g = two_cliques();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c = label_propagation(&g, 16, &mut rng);
        // With a budget of 2 per community, allocation is proportional.
        let budget = 2 * c.len();
        let seeds = spread_seeds(&g, &c, budget, &mut rng);
        assert_eq!(seeds.len(), budget);
        let mut per: std::collections::BTreeMap<u32, usize> = Default::default();
        for &s in &seeds {
            *per.entry(c.community_of(s)).or_insert(0) += 1;
        }
        assert_eq!(per.len(), c.len(), "every community holds a seed");
        for (&label, &count) in &per {
            let size = c.sizes()[label as usize];
            // Proportional: seats ≈ budget·size/total, within one.
            let exact = budget as f64 * size as f64 / 10.0;
            assert!(
                (count as f64 - exact).abs() <= 1.0,
                "community {label}: {count} seats for size {size}"
            );
        }
    }

    #[test]
    fn spread_seeds_favors_large_communities() {
        // A 12-clique plus 4 isolated singletons: with budget 4, at least
        // 3 seeds land in the clique (proportional, not one-per-community).
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(16, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let c = label_propagation(&g, 16, &mut rng);
        let seeds = spread_seeds(&g, &c, 4, &mut rng);
        let in_clique = seeds.iter().filter(|s| s.0 < 12).count();
        assert!(in_clique >= 3, "only {in_clique} seeds in the giant community");
    }

    #[test]
    fn spread_seeds_caps_at_population() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let c = label_propagation(&g, 8, &mut rng);
        let seeds = spread_seeds(&g, &c, 50, &mut rng);
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn isolated_nodes_keep_singleton_communities() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let c = label_propagation(&g, 8, &mut rng);
        // 0-1 merge into one; 2 and 3 stand alone.
        assert_eq!(c.len(), 3);
    }
}
