//! Surrogates for the paper's Table-I evaluation graphs.
//!
//! We do not ship the Facebook sample or the SNAP datasets; instead each
//! Table-I row has a generator configuration tuned to reproduce its size and
//! clustering regime (see DESIGN.md §3 for the substitution rationale).
//! Users who have the real datasets can load them with
//! [`crate::io::read_edge_list`] and run the identical pipeline.

use crate::generators::{BarabasiAlbert, HolmeKim, WattsStrogatz};
use crate::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// One Table-I dataset and its published statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Surrogate {
    /// Forest-fire-sampled Facebook graph (10,000 / 40,013, CC 0.2332).
    Facebook,
    /// arXiv High Energy Physics Theory co-authorship (9,877 / 25,985, CC 0.2734).
    CaHepTh,
    /// arXiv Astrophysics co-authorship (18,772 / 198,080, CC 0.3158).
    CaAstroPh,
    /// Enron email graph (33,696 / 180,811, CC 0.0848).
    EmailEnron,
    /// Epinions trust network (75,877 / 405,739, CC 0.0655).
    SocEpinions,
    /// Slashdot Zoo network (82,168 / 504,230, CC 0.0240).
    SocSlashdot,
    /// The paper's own BA scale-free graph (10,000 / 39,399, CC 0.0018).
    Synthetic,
}

/// Published Table-I statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: u64,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Reported diameter.
    pub diameter: u32,
}

/// The generator recipe backing a surrogate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Recipe {
    /// Holme–Kim with `m` edges/node and triad probability.
    HolmeKim { m: usize, triad_p: f64 },
    /// Plain Barabási–Albert with `m` edges/node.
    Ba { m: usize },
    /// Watts–Strogatz with lattice degree `k` and rewiring probability —
    /// used where the clustering target exceeds what Holme–Kim reaches at
    /// the required density (ca-AstroPh).
    Ws { k: usize, beta: f64 },
}

impl Surrogate {
    /// All seven Table-I rows, in the paper's order.
    pub const ALL: [Surrogate; 7] = [
        Surrogate::Facebook,
        Surrogate::CaHepTh,
        Surrogate::CaAstroPh,
        Surrogate::EmailEnron,
        Surrogate::SocEpinions,
        Surrogate::SocSlashdot,
        Surrogate::Synthetic,
    ];

    /// The six non-Facebook graphs used by the paper's appendix sweeps
    /// (Figures 17 and 18).
    pub const APPENDIX: [Surrogate; 6] = [
        Surrogate::CaHepTh,
        Surrogate::CaAstroPh,
        Surrogate::EmailEnron,
        Surrogate::SocEpinions,
        Surrogate::SocSlashdot,
        Surrogate::Synthetic,
    ];

    /// The dataset name as printed in Table I.
    pub fn name(self) -> &'static str {
        match self {
            Surrogate::Facebook => "Facebook",
            Surrogate::CaHepTh => "ca-HepTh",
            Surrogate::CaAstroPh => "ca-AstroPh",
            Surrogate::EmailEnron => "email-Enron",
            Surrogate::SocEpinions => "soc-Epinions",
            Surrogate::SocSlashdot => "soc-Slashdot",
            Surrogate::Synthetic => "Synthetic",
        }
    }

    /// The statistics the paper reports for this dataset.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            Surrogate::Facebook => {
                PaperStats { nodes: 10_000, edges: 40_013, clustering: 0.2332, diameter: 17 }
            }
            Surrogate::CaHepTh => {
                PaperStats { nodes: 9_877, edges: 25_985, clustering: 0.2734, diameter: 18 }
            }
            Surrogate::CaAstroPh => {
                PaperStats { nodes: 18_772, edges: 198_080, clustering: 0.3158, diameter: 14 }
            }
            Surrogate::EmailEnron => {
                PaperStats { nodes: 33_696, edges: 180_811, clustering: 0.0848, diameter: 13 }
            }
            Surrogate::SocEpinions => {
                PaperStats { nodes: 75_877, edges: 405_739, clustering: 0.0655, diameter: 15 }
            }
            Surrogate::SocSlashdot => {
                PaperStats { nodes: 82_168, edges: 504_230, clustering: 0.0240, diameter: 13 }
            }
            Surrogate::Synthetic => {
                PaperStats { nodes: 10_000, edges: 39_399, clustering: 0.0018, diameter: 7 }
            }
        }
    }

    fn recipe(self) -> Recipe {
        // `m` ≈ edges / nodes; `triad_p` tuned so the measured average
        // clustering lands in the paper's regime (see table1 harness).
        match self {
            Surrogate::Facebook => Recipe::HolmeKim { m: 4, triad_p: 0.63 },
            Surrogate::CaHepTh => Recipe::HolmeKim { m: 3, triad_p: 0.58 },
            Surrogate::CaAstroPh => Recipe::Ws { k: 22, beta: 0.235 },
            Surrogate::EmailEnron => Recipe::HolmeKim { m: 5, triad_p: 0.27 },
            Surrogate::SocEpinions => Recipe::HolmeKim { m: 5, triad_p: 0.21 },
            Surrogate::SocSlashdot => Recipe::HolmeKim { m: 6, triad_p: 0.09 },
            Surrogate::Synthetic => Recipe::Ba { m: 4 },
        }
    }

    /// Generates the full-size surrogate graph deterministically from `seed`.
    pub fn generate(self, seed: u64) -> Graph {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates a surrogate scaled to `scale * nodes` nodes (same recipe).
    /// Benches use small scales for quick runs; `scale = 1.0` is
    /// paper-size.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn generate_scaled(self, seed: u64, scale: f64) -> Graph {
        assert!(scale > 0.0, "scale must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = ((self.paper_stats().nodes as f64 * scale).round() as usize).max(64);
        match self.recipe() {
            Recipe::HolmeKim { m, triad_p } => HolmeKim::new(n, m, triad_p).generate(&mut rng),
            Recipe::Ba { m } => BarabasiAlbert::new(n, m).generate(&mut rng),
            Recipe::Ws { k, beta } => WattsStrogatz::new(n, k, beta).generate(&mut rng),
        }
    }
}

impl fmt::Display for Surrogate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn all_lists_every_variant_once() {
        assert_eq!(Surrogate::ALL.len(), 7);
        let mut names: Vec<_> = Surrogate::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn appendix_excludes_facebook() {
        assert!(!Surrogate::APPENDIX.contains(&Surrogate::Facebook));
        assert_eq!(Surrogate::APPENDIX.len(), 6);
    }

    #[test]
    fn scaled_generation_matches_node_budget() {
        let g = Surrogate::Facebook.generate_scaled(1, 0.05);
        assert_eq!(g.num_nodes(), 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Surrogate::Synthetic.generate_scaled(7, 0.05);
        let b = Surrogate::Synthetic.generate_scaled(7, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn facebook_surrogate_clusters_more_than_synthetic() {
        let fb = Surrogate::Facebook.generate_scaled(1, 0.2);
        let syn = Surrogate::Synthetic.generate_scaled(1, 0.2);
        let cc_fb = metrics::average_clustering(&fb);
        let cc_syn = metrics::average_clustering(&syn);
        assert!(cc_fb > 5.0 * cc_syn, "fb {cc_fb} vs synthetic {cc_syn}");
    }

    #[test]
    fn full_size_stats_are_published() {
        let s = Surrogate::CaAstroPh.paper_stats();
        assert_eq!(s.nodes, 18_772);
        assert_eq!(s.edges, 198_080);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Surrogate::CaHepTh.to_string(), "ca-HepTh");
    }
}
