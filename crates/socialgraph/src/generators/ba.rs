use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Barabási–Albert preferential-attachment generator (scale-free).
///
/// This is the model the paper's "Synthetic" Table-I row is generated
/// from ("generated based on the scale-free model \[14\]"). Each arriving
/// node attaches `m` edges to existing nodes with probability proportional
/// to their degree.
///
/// ```
/// use socialgraph::generators::BarabasiAlbert;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let g = BarabasiAlbert::new(500, 3).generate(&mut rng);
/// // m edges per node after the seed clique:
/// assert!(g.num_edges() >= 3 * (500 - 4) as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    n: usize,
    m: usize,
}

impl BarabasiAlbert {
    /// Configures a generator for `n` nodes with `m` attachments per node.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n <= m`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m > 0, "attachment count m must be positive");
        assert!(n > m, "need more nodes ({n}) than attachments per node ({m})");
        BarabasiAlbert { n, m }
    }

    /// Number of nodes generated.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Attachments per arriving node.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Generates a graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        // `endpoints` holds each node id once per incident edge, so sampling
        // a uniform element is degree-proportional sampling.
        let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * self.n * self.m);

        // Seed: a clique on the first m+1 nodes.
        for u in 0..=self.m {
            for v in (u + 1)..=self.m {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
                endpoints.push(NodeId(u as u32));
                endpoints.push(NodeId(v as u32));
            }
        }

        for u in (self.m + 1)..self.n {
            let u = NodeId(u as u32);
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < self.m {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                guard += 1;
                if b.add_edge(u, t) {
                    endpoints.push(u);
                    endpoints.push(t);
                    added += 1;
                } else if guard > 50 * self.m {
                    // All degree mass is on nodes we already hit; fall back
                    // to a uniform untried node to guarantee progress.
                    let t = NodeId(rng.gen_range(0..u.0));
                    if b.add_edge(u, t) {
                        endpoints.push(u);
                        endpoints.push(t);
                        added += 1;
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = BarabasiAlbert::new(200, 4).generate(&mut rng);
        assert_eq!(g.num_nodes(), 200);
        // clique(5) + 4 per remaining node
        assert_eq!(g.num_edges(), 10 + 4 * 195);
    }

    #[test]
    fn every_non_seed_node_has_degree_at_least_m() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = BarabasiAlbert::new(300, 3).generate(&mut rng);
        for u in g.nodes() {
            assert!(g.degree(u) >= 3, "node {u} has degree {}", g.degree(u));
        }
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let g1 = BarabasiAlbert::new(150, 2).generate(&mut ChaCha8Rng::seed_from_u64(9));
        let g2 = BarabasiAlbert::new(150, 2).generate(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = BarabasiAlbert::new(2_000, 3).generate(&mut rng);
        let max_deg = g.nodes().map(|u| g.degree(u)).max().expect("generator emits at least one node");
        // A scale-free graph grows hubs far above the mean degree (~6).
        assert!(max_deg > 40, "max degree {max_deg} not hub-like");
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn rejects_zero_m() {
        let _ = BarabasiAlbert::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        let _ = BarabasiAlbert::new(3, 3);
    }
}
