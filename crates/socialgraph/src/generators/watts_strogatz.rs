use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Watts–Strogatz small-world generator.
///
/// A ring lattice where each node connects to its `k` nearest neighbors,
/// with each edge rewired to a uniform target with probability `beta`.
/// Yields high clustering and small diameter — the regime of the paper's
/// email/social surrogates when mixed clustering is needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    n: usize,
    k: usize,
    beta: f64,
}

impl WattsStrogatz {
    /// Configures a generator for `n` nodes, even lattice degree `k`, and
    /// rewiring probability `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or zero, `n <= k`, or `beta` is not in `[0, 1]`.
    pub fn new(n: usize, k: usize, beta: f64) -> Self {
        assert!(k > 0 && k.is_multiple_of(2), "lattice degree k must be positive and even");
        assert!(n > k, "need more nodes ({n}) than lattice degree ({k})");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        WattsStrogatz { n, k, beta }
    }

    /// Number of nodes generated.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lattice degree.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Rewiring probability.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Generates a graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for u in 0..self.n {
            for d in 1..=(self.k / 2) {
                let v = (u + d) % self.n;
                let (a, mut c) = (NodeId(u as u32), NodeId(v as u32));
                if rng.gen_bool(self.beta) {
                    // Rewire the far endpoint to a uniform node; retry on
                    // collision a few times, else keep the lattice edge.
                    for _ in 0..16 {
                        let w = NodeId(rng.gen_range(0..self.n as u32));
                        if w != a && !b.has_edge(a, w) {
                            c = w;
                            break;
                        }
                    }
                }
                if b.has_edge(a, c) {
                    // Lattice edge already taken by an earlier rewiring;
                    // leave it rather than forcing a parallel edge.
                    continue;
                }
                b.add_edge(a, c);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = WattsStrogatz::new(50, 4, 0.0).generate(&mut rng);
        assert_eq!(g.num_edges(), 100);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn lattice_clustering_is_high() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = WattsStrogatz::new(500, 6, 0.05).generate(&mut rng);
        let cc = metrics::average_clustering(&g);
        assert!(cc > 0.3, "small-world clustering too low: {cc}");
    }

    #[test]
    fn heavy_rewiring_lowers_clustering() {
        let lo = WattsStrogatz::new(500, 6, 0.9)
            .generate(&mut ChaCha8Rng::seed_from_u64(3));
        let hi = WattsStrogatz::new(500, 6, 0.0)
            .generate(&mut ChaCha8Rng::seed_from_u64(3));
        assert!(metrics::average_clustering(&lo) < metrics::average_clustering(&hi));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = WattsStrogatz::new(10, 3, 0.1);
    }
}
