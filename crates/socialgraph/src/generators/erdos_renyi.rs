use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Erdős–Rényi `G(n, m)` generator: exactly `m` uniform random edges.
///
/// Used as a null model in tests and ablations (no clustering, no degree
/// skew).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyi {
    n: usize,
    m: u64,
}

impl ErdosRenyi {
    /// Configures a generator for `n` nodes and `m` edges.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `m` exceeds the number of possible edges.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let max = n as u64 * (n as u64 - 1) / 2;
        assert!(m <= max, "requested {m} edges but only {max} are possible");
        ErdosRenyi { n, m }
    }

    /// Number of nodes generated.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges generated.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Generates a graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        let mut placed = 0u64;
        while placed < self.m {
            let u = NodeId(rng.gen_range(0..self.n as u32));
            let v = NodeId(rng.gen_range(0..self.n as u32));
            if b.add_edge(u, v) {
                placed += 1;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_edge_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = ErdosRenyi::new(100, 250).generate(&mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn can_generate_complete_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = ErdosRenyi::new(6, 15).generate(&mut rng);
        assert_eq!(g.num_edges(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_too_many_edges() {
        let _ = ErdosRenyi::new(4, 7);
    }
}
