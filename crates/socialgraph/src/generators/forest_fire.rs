use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Leskovec forest-fire growth model.
///
/// Each arriving node picks a uniform *ambassador*, then "burns" through the
/// graph: from each burned node it burns a geometrically distributed number
/// of yet-unburned neighbors (mean `p / (1 - p)`), recursively. The new node
/// links to every burned node. Produces heavy-tailed degrees, high
/// clustering, and community structure — the regime of the paper's
/// forest-fire-sampled Facebook graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestFire {
    n: usize,
    burn_p: f64,
    max_burn: usize,
}

impl ForestFire {
    /// Configures a generator for `n` nodes with forward-burning probability
    /// `burn_p`. `max_burn` caps how many nodes one arrival may link to
    /// (keeps the super-critical regime from densifying into a clique).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `burn_p` is not in `[0, 1)`, or `max_burn == 0`.
    pub fn new(n: usize, burn_p: f64, max_burn: usize) -> Self {
        assert!(n > 0, "need at least one node");
        assert!((0.0..1.0).contains(&burn_p), "burn_p must be in [0, 1)");
        assert!(max_burn > 0, "max_burn must be positive");
        ForestFire { n, burn_p, max_burn }
    }

    /// Number of nodes generated.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Forward-burning probability.
    pub fn burn_p(&self) -> f64 {
        self.burn_p
    }

    /// Per-arrival link cap.
    pub fn max_burn(&self) -> usize {
        self.max_burn
    }

    /// Generates a graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.n];
        let mut burned_mark = vec![u32::MAX; self.n];

        for u in 1..self.n {
            let u_id = NodeId(u as u32);
            let ambassador = NodeId(rng.gen_range(0..u as u32));
            let mut frontier = vec![ambassador];
            let mut burned: Vec<NodeId> = Vec::new();
            burned_mark[ambassador.index()] = u as u32;

            while let Some(w) = frontier.pop() {
                burned.push(w);
                if burned.len() >= self.max_burn {
                    break;
                }
                // Burn Geometric(1 - p) neighbors of w, preferring unburned.
                let mut to_burn = 0usize;
                while rng.gen_bool(self.burn_p) {
                    to_burn += 1;
                    if to_burn >= self.max_burn {
                        break;
                    }
                }
                if to_burn == 0 {
                    continue;
                }
                let unburned: Vec<NodeId> = adj[w.index()]
                    .iter()
                    .copied()
                    .filter(|x| burned_mark[x.index()] != u as u32)
                    .collect();
                for _ in 0..to_burn.min(unburned.len()) {
                    // Sample without replacement by marking immediately.
                    let choices: Vec<&NodeId> = unburned
                        .iter()
                        .filter(|x| burned_mark[x.index()] != u as u32)
                        .collect();
                    if choices.is_empty() {
                        break;
                    }
                    let pick = *choices[rng.gen_range(0..choices.len())];
                    burned_mark[pick.index()] = u as u32;
                    frontier.push(pick);
                }
            }

            for w in burned {
                if b.add_edge(u_id, w) {
                    adj[u_id.index()].push(w);
                    adj[w.index()].push(u_id);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_connected_growth() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = ForestFire::new(500, 0.35, 40).generate(&mut rng);
        assert_eq!(g.num_nodes(), 500);
        // Every arrival links to at least the ambassador.
        assert!(g.num_edges() >= 499);
        assert_eq!(metrics::connected_components(&g).len(), 1);
    }

    #[test]
    fn higher_burn_probability_densifies() {
        let sparse = ForestFire::new(800, 0.2, 60).generate(&mut ChaCha8Rng::seed_from_u64(2));
        let dense = ForestFire::new(800, 0.5, 60).generate(&mut ChaCha8Rng::seed_from_u64(2));
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn produces_clustering() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = ForestFire::new(1_000, 0.45, 60).generate(&mut rng);
        let cc = metrics::average_clustering(&g);
        assert!(cc > 0.05, "forest fire should cluster, got {cc}");
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let g1 = ForestFire::new(300, 0.4, 30).generate(&mut ChaCha8Rng::seed_from_u64(4));
        let g2 = ForestFire::new(300, 0.4, 30).generate(&mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "burn_p")]
    fn rejects_burn_probability_one() {
        let _ = ForestFire::new(10, 1.0, 5);
    }
}
