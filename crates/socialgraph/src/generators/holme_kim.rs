use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Holme–Kim power-law generator with tunable clustering.
///
/// Extends Barabási–Albert with a *triad-formation* step: after each
/// preferential attachment to node `t`, with probability `triad_p` the next
/// edge goes to a random neighbor of `t` (closing a triangle) instead of
/// doing another preferential attachment. High `triad_p` yields the high
/// clustering coefficients of the paper's co-authorship surrogates
/// (ca-HepTh 0.27, ca-AstroPh 0.32); `triad_p = 0` degenerates to BA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolmeKim {
    n: usize,
    m: usize,
    triad_p: f64,
}

impl HolmeKim {
    /// Configures a generator for `n` nodes, `m` edges per node, and triad
    /// probability `triad_p`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `n <= m`, or `triad_p` is not in `[0, 1]`.
    pub fn new(n: usize, m: usize, triad_p: f64) -> Self {
        assert!(m > 0, "attachment count m must be positive");
        assert!(n > m, "need more nodes ({n}) than attachments per node ({m})");
        assert!((0.0..=1.0).contains(&triad_p), "triad_p must be in [0, 1]");
        HolmeKim { n, m, triad_p }
    }

    /// Number of nodes generated.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edges per arriving node.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Probability of the triad-formation step.
    pub fn triad_p(&self) -> f64 {
        self.triad_p
    }

    /// Generates a graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * self.n * self.m);
        // Mutable adjacency mirror for triad sampling (builder lists are
        // append-only and unsorted, which is all we need).
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.n];

        let link = |b: &mut GraphBuilder,
                        adj: &mut Vec<Vec<NodeId>>,
                        endpoints: &mut Vec<NodeId>,
                        u: NodeId,
                        v: NodeId|
         -> bool {
            if b.add_edge(u, v) {
                adj[u.index()].push(v);
                adj[v.index()].push(u);
                endpoints.push(u);
                endpoints.push(v);
                true
            } else {
                false
            }
        };

        for u in 0..=self.m {
            for v in (u + 1)..=self.m {
                link(&mut b, &mut adj, &mut endpoints, NodeId(u as u32), NodeId(v as u32));
            }
        }

        for u in (self.m + 1)..self.n {
            let u = NodeId(u as u32);
            let mut added = 0usize;
            let mut last_target: Option<NodeId> = None;
            let mut guard = 0usize;
            while added < self.m {
                guard += 1;
                let force_pa = guard > 50 * self.m;
                let try_triad = !force_pa && last_target.is_some() && rng.gen_bool(self.triad_p);
                let candidate = if try_triad {
                    let t = last_target.expect("checked is_some above");
                    let nbrs = &adj[t.index()];
                    nbrs[rng.gen_range(0..nbrs.len())]
                } else if force_pa {
                    NodeId(rng.gen_range(0..u.0))
                } else {
                    endpoints[rng.gen_range(0..endpoints.len())]
                };
                if candidate != u && link(&mut b, &mut adj, &mut endpoints, u, candidate) {
                    added += 1;
                    if !try_triad {
                        last_target = Some(candidate);
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = HolmeKim::new(400, 3, 0.5).generate(&mut rng);
        assert_eq!(g.num_nodes(), 400);
        // seed clique on m+1 = 4 nodes (6 edges) + m per remaining node
        assert_eq!(g.num_edges(), 6 + 3 * 396);
    }

    #[test]
    fn triads_raise_clustering_over_ba() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let clustered = HolmeKim::new(2_000, 4, 0.9).generate(&mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plain = HolmeKim::new(2_000, 4, 0.0).generate(&mut rng);
        let cc_hi = metrics::average_clustering(&clustered);
        let cc_lo = metrics::average_clustering(&plain);
        assert!(
            cc_hi > 2.0 * cc_lo,
            "triad formation should raise clustering: {cc_hi} vs {cc_lo}"
        );
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let g1 = HolmeKim::new(300, 2, 0.7).generate(&mut ChaCha8Rng::seed_from_u64(5));
        let g2 = HolmeKim::new(300, 2, 0.7).generate(&mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "triad_p")]
    fn rejects_bad_probability() {
        let _ = HolmeKim::new(10, 2, 1.5);
    }
}
