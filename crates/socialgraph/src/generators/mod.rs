//! Random-graph generators.
//!
//! The paper evaluates on one Facebook sample, five SNAP datasets, and a
//! Barabási–Albert synthetic graph (Table I). We do not have the raw
//! datasets, so [`crate::surrogates`] uses these generators to synthesize
//! graphs in the same size and clustering regime. Every generator takes an
//! explicit RNG so runs are reproducible from a seed.
//!
//! ```
//! use socialgraph::generators::BarabasiAlbert;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = BarabasiAlbert::new(1_000, 4).generate(&mut rng);
//! assert_eq!(g.num_nodes(), 1_000);
//! ```

mod ba;
mod erdos_renyi;
mod forest_fire;
mod holme_kim;
mod watts_strogatz;

pub use ba::BarabasiAlbert;
pub use erdos_renyi::ErdosRenyi;
pub use forest_fire::ForestFire;
pub use holme_kim::HolmeKim;
pub use watts_strogatz::WattsStrogatz;
