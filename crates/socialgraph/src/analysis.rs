//! Structural analysis beyond the Table-I basics: degree distributions,
//! power-law exponents, degree assortativity, and k-core decomposition.
//!
//! These characterize how faithful a surrogate is to its original dataset
//! (degree skew and core structure shape how trust and cuts behave), and
//! they are the standard toolkit an OSN analyst runs before deploying a
//! graph-based defense.

use crate::{Graph, NodeId};

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.nodes().map(|u| g.degree(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Complementary CDF of the degree distribution: `(d, P(deg >= d))` for
/// every occupied degree, ascending in `d`. The straight-line-on-log-log
/// signature of a power law shows up here.
pub fn degree_ccdf(g: &Graph) -> Vec<(usize, f64)> {
    let hist = degree_histogram(g);
    let n: usize = hist.iter().sum();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut at_least = n;
    for (d, &count) in hist.iter().enumerate() {
        if count > 0 {
            out.push((d, at_least as f64 / n as f64));
        }
        at_least -= count;
    }
    out
}

/// Maximum-likelihood estimate of a discrete power-law exponent `α` for
/// the degree tail `deg >= d_min` (Clauset–Shalizi–Newman continuous
/// approximation: `α = 1 + n / Σ ln(d_i / (d_min − ½))`).
///
/// Returns `None` if fewer than 10 nodes have degree `>= d_min`.
///
/// # Panics
///
/// Panics if `d_min < 1`.
pub fn power_law_alpha(g: &Graph, d_min: usize) -> Option<f64> {
    assert!(d_min >= 1, "d_min must be at least 1");
    let tail: Vec<f64> = g
        .nodes()
        .map(|u| g.degree(u))
        .filter(|&d| d >= d_min)
        .map(|d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom = crate::det::ordered_sum(tail.iter().map(|&d| (d / (d_min as f64 - 0.5)).ln()));
    Some(1.0 + tail.len() as f64 / denom)
}

/// Pearson degree assortativity: the correlation of endpoint degrees over
/// edges. Social networks are typically assortative (> 0); BA-style
/// synthetic graphs are neutral-to-disassortative.
///
/// Returns `None` for graphs with no edges or zero degree variance.
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    let m = g.num_edges();
    if m == 0 {
        return None;
    }
    // Standard formulation over undirected edges, counting each edge with
    // both orientations.
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0.0f64, 0.0f64, 0.0f64);
    let count = (2 * m) as f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= 0.0 {
        return None;
    }
    let cov = sum_xy / count - mean * mean;
    Some(cov / var)
}

/// K-core decomposition: `core[u]` is the largest `k` such that `u`
/// belongs to a subgraph where every node has degree ≥ `k`
/// (Batagelj–Zaveršnik peeling, `O(V + E)`).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort nodes by current degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0usize; n];
    {
        let mut next = bins.clone();
        for (i, &d) in degree.iter().enumerate() {
            pos[i] = next[d];
            order[next[d]] = i;
            next[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for idx in 0..n {
        let u = order[idx];
        core[u] = degree[u] as u32;
        for &v in g.neighbors(NodeId::from_index(u)) {
            let v = v.index();
            if degree[v] > degree[u] {
                // Move v one bucket down: swap it with the first node of
                // its current bucket, then shrink the bucket boundary.
                let dv = degree[v];
                let pv = pos[v];
                let pw = bins[dv];
                let w = order[pw];
                if v != w {
                    order[pv] = w;
                    order[pw] = v;
                    pos[v] = pw;
                    pos[w] = pv;
                }
                bins[dv] += 1;
                degree[v] -= 1;
            }
        }
    }
    core
}

/// The maximum core number (graph degeneracy).
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{BarabasiAlbert, WattsStrogatz};
    use crate::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn histogram_counts_nodes() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]); // three leaves, one hub
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = BarabasiAlbert::new(500, 3).generate(&mut rng);
        let ccdf = degree_ccdf(&g);
        assert_eq!(ccdf.first().expect("ccdf of a non-empty graph has entries").1, 1.0);
        for w in ccdf.windows(2) {
            assert!(w[0].1 >= w[1].1, "CCDF must not increase");
        }
    }

    #[test]
    fn ba_alpha_is_near_three() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = BarabasiAlbert::new(20_000, 4).generate(&mut rng);
        let alpha = power_law_alpha(&g, 8).expect("enough tail");
        assert!((2.2..4.0).contains(&alpha), "BA exponent {alpha} not ≈ 3");
    }

    #[test]
    fn lattice_has_no_power_law_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = WattsStrogatz::new(200, 4, 0.0).generate(&mut rng);
        // Everyone has degree 4; a tail at d_min=5 is empty.
        assert!(power_law_alpha(&g, 5).is_none());
    }

    #[test]
    fn star_is_disassortative() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = degree_assortativity(&g).expect("fixture has degree variance");
        assert!(r < -0.9, "star assortativity {r}");
    }

    #[test]
    fn regular_graph_has_no_defined_assortativity() {
        // A cycle: every node degree 2 ⇒ zero variance.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_assortativity(&g).is_none());
    }

    #[test]
    fn core_numbers_of_clique_plus_tail() {
        // Triangle {0,1,2} (2-core) with pendant 3 attached to 0 (1-core)
        // and isolated 4 (0-core).
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![2, 2, 2, 1, 0]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn ba_degeneracy_equals_m() {
        // BA with attachment m yields an m-degenerate graph (each arrival
        // has exactly m edges at insertion time).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = BarabasiAlbert::new(500, 3).generate(&mut rng);
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn core_numbers_respect_subgraph_property() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = BarabasiAlbert::new(300, 2).generate(&mut rng);
        let core = core_numbers(&g);
        // Every node's core number is at most its degree.
        for u in g.nodes() {
            assert!(core[u.index()] as usize <= g.degree(u));
        }
        // Nodes of the k-core have >= k neighbors inside the k-core.
        let k = degeneracy(&g);
        for u in g.nodes() {
            if core[u.index()] == k {
                let inside = g
                    .neighbors(u)
                    .iter()
                    .filter(|v| core[v.index()] >= k)
                    .count();
                assert!(inside >= k as usize, "node {u} has {inside} < {k}");
            }
        }
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Graph::from_edges(0, []);
        assert!(degree_histogram(&g).len() == 1);
        assert!(degree_ccdf(&g).is_empty());
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }
}
