use std::fmt;
use std::io;

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending id value.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The unparsable content.
        content: String,
    },
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge-list line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "edge-list i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = GraphError::NodeOutOfRange { node: 9, num_nodes: 5 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
