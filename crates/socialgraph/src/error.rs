use std::fmt;
use std::io;

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending id value.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token (or `"<end of line>"` for a truncated line).
        token: String,
        /// The unparsable content.
        content: String,
    },
    /// An input would grow a resource past an explicit budget (or past a
    /// structural ceiling such as the `u32` dense-id space), so the loader
    /// refused to keep allocating. Hostile inputs surface here instead of
    /// ballooning memory until the allocator aborts.
    ResourceExhausted {
        /// Which resource ran out (`"nodes"`, `"edges"`, `"node ids"`, ...).
        resource: &'static str,
        /// The configured (or structural) limit.
        limit: u64,
        /// The observed demand that exceeded it.
        observed: u64,
    },
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// An error annotated with the path of the file it came from, so a
    /// loader failure deep in a pipeline still names its input.
    InFile {
        /// Path of the file being read.
        file: String,
        /// The underlying error (carries the 1-based line and token for
        /// parse errors).
        source: Box<GraphError>,
    },
}

impl GraphError {
    /// Wraps the error with the path of the file it came from. Callers
    /// that open files themselves attach the path at the call site, since
    /// the readers only see an anonymous `Read`.
    #[must_use]
    pub fn in_file(self, file: impl Into<String>) -> GraphError {
        GraphError::InFile { file: file.into(), source: Box::new(self) }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::Parse { line, token, content } => {
                write!(f, "cannot parse edge-list line {line}: bad token {token:?} in {content:?}")
            }
            GraphError::ResourceExhausted { resource, limit, observed } => write!(
                f,
                "resource budget exhausted: {resource}: observed {observed} exceeds limit {limit}"
            ),
            GraphError::Io(e) => write!(f, "edge-list i/o error: {e}"),
            GraphError::InFile { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = GraphError::NodeOutOfRange { node: 9, num_nodes: 5 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_error_names_the_token() {
        let e = GraphError::Parse {
            line: 3,
            token: "banana".to_string(),
            content: "1 banana".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("banana"), "{msg}");
    }

    #[test]
    fn resource_exhausted_names_limit_and_observed() {
        let e = GraphError::ResourceExhausted { resource: "edges", limit: 10, observed: 11 };
        let msg = e.to_string();
        assert!(msg.contains("edges"), "{msg}");
        assert!(msg.contains("11 exceeds limit 10"), "{msg}");
    }

    #[test]
    fn in_file_prepends_the_path_and_chains_the_source() {
        use std::error::Error;
        let e = GraphError::Parse {
            line: 7,
            token: "x".to_string(),
            content: "x y".to_string(),
        }
        .in_file("edges.txt");
        let msg = e.to_string();
        assert!(msg.starts_with("edges.txt: "), "{msg}");
        assert!(msg.contains("line 7"), "{msg}");
        assert!(matches!(
            e.source(),
            Some(src) if src.to_string().contains("line 7")
        ));
    }
}
