//! SNAP-style edge-list I/O.
//!
//! The paper's public datasets come from the Stanford SNAP collection, which
//! distributes graphs as whitespace-separated `u v` lines with `#` comments.
//! These readers/writers let users run the pipeline on the real datasets
//! when they have them.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Reads a SNAP edge list, densely relabeling arbitrary node ids to
/// `0..n`. Lines starting with `#` are comments; directed duplicates are
/// merged into single undirected edges.
///
/// Returns the graph plus the original label of each dense id.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and [`GraphError::Io`]
/// on read failures.
///
/// ```
/// use socialgraph::io::read_edge_list;
/// let data = "# comment\n10 20\n20 30\n";
/// let (g, labels) = read_edge_list(data.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(labels, vec![10, 20, 30]);
/// # Ok::<(), socialgraph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<(Graph, Vec<u64>), GraphError> {
    let reader = BufReader::new(reader);
    // BTreeMap rather than HashMap: this crate's kernels are under the
    // `cargo xtask check` hash-collection ban, and the interner's dense ids
    // must depend only on input order, never on hasher state.
    let mut ids: BTreeMap<u64, u32> = BTreeMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let intern = |raw: u64, ids: &mut BTreeMap<u64, u32>, labels: &mut Vec<u64>| -> u32 {
        *ids.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as u32
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.and_then(|t| t.parse().ok()).ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                content: trimmed.to_string(),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        let u = intern(u, &mut ids, &mut labels);
        let v = intern(v, &mut ids, &mut labels);
        edges.push((u, v));
    }

    let mut b = GraphBuilder::new(labels.len());
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok((b.build(), labels))
}

/// Writes `g` as a SNAP edge list (one `u v` line per undirected edge, with
/// a size header comment).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes: {} edges: {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let data = "# header\n\n1 2\n2 3\n\n# tail\n";
        let (g, labels) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn merges_directed_duplicates() {
        let data = "5 7\n7 5\n";
        let (g, _) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = read_edge_list("1 banana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrips_through_write_and_read() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write to Vec cannot fail");
        let (g2, _) = read_edge_list(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 3);
    }

    #[test]
    fn handles_large_sparse_labels() {
        let data = "1000000000 2000000000\n";
        let (g, labels) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(labels, vec![1_000_000_000, 2_000_000_000]);
    }
}
