//! SNAP-style edge-list I/O.
//!
//! The paper's public datasets come from the Stanford SNAP collection, which
//! distributes graphs as whitespace-separated `u v` lines with `#` comments.
//! These readers/writers let users run the pipeline on the real datasets
//! when they have them.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Per-load accounting for the lenient readers: how many malformed lines
/// were dropped and where the first one was, so callers can surface the
/// degradation in their reports instead of silently losing edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Number of malformed lines skipped.
    pub skipped_lines: usize,
    /// 1-based line number of the first skipped line, if any.
    pub first_skipped: Option<usize>,
}

impl LoadStats {
    /// True when the load dropped at least one line.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.skipped_lines > 0
    }

    /// Records one skipped line. Public so sibling loaders (the rejection
    /// crate's augmented reader) can share the same accounting type.
    pub fn record(&mut self, line: usize) {
        self.skipped_lines += 1;
        if self.first_skipped.is_none() {
            self.first_skipped = Some(line);
        }
    }
}

/// Resource ceilings for the edge-list readers (DESIGN.md §15). The input
/// to a spam detector is attacker-shaped, so the loaders must refuse to
/// keep allocating past an explicit budget instead of riding an adversarial
/// byte stream into an allocator abort. `None` means unlimited; budget
/// violations are fatal even for the lenient readers (a malformed *line*
/// is recoverable, unbounded growth is not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeListLimits {
    /// Maximum number of distinct nodes the load may intern.
    pub max_nodes: Option<u64>,
    /// Maximum number of edge lines the load may buffer (counted before
    /// dedup — buffering is what the budget protects).
    pub max_edges: Option<u64>,
}

impl EdgeListLimits {
    /// No ceilings at all; identical to `EdgeListLimits::default()`.
    #[must_use]
    pub fn unlimited() -> Self {
        EdgeListLimits::default()
    }

    /// Whether any ceiling is set.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.max_nodes.is_some() || self.max_edges.is_some()
    }
}

/// `count` as a `u64` for budget accounting; collection lengths always fit.
fn observed(count: usize) -> u64 {
    u64::try_from(count).expect("collection length fits in u64")
}

/// Parses one non-comment edge-list line into its raw endpoint labels,
/// naming the offending token on failure.
fn parse_edge_line(trimmed: &str, lineno: usize) -> Result<(u64, u64), GraphError> {
    let mut parts = trimmed.split_whitespace();
    let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
        let bad = |token: &str| GraphError::Parse {
            line: lineno,
            token: token.to_string(),
            content: trimmed.to_string(),
        };
        match tok {
            Some(t) => t.parse().map_err(|_| bad(t)),
            None => Err(bad("<end of line>")),
        }
    };
    Ok((parse(parts.next())?, parse(parts.next())?))
}

/// Reads a SNAP edge list, densely relabeling arbitrary node ids to
/// `0..n`. Lines starting with `#` are comments; directed duplicates are
/// merged into single undirected edges.
///
/// Returns the graph plus the original label of each dense id.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and [`GraphError::Io`]
/// on read failures.
///
/// ```
/// use socialgraph::io::read_edge_list;
/// let data = "# comment\n10 20\n20 30\n";
/// let (g, labels) = read_edge_list(data.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(labels, vec![10, 20, 30]);
/// # Ok::<(), socialgraph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<(Graph, Vec<u64>), GraphError> {
    let (g, labels, _) = read_edge_list_impl(reader, false, EdgeListLimits::unlimited())?;
    Ok((g, labels))
}

/// Like [`read_edge_list`], but enforcing the node/edge ceilings of
/// `limits`: the load fails with [`GraphError::ResourceExhausted`] the
/// moment the input would intern more nodes or buffer more edge lines than
/// allowed, before the over-budget allocation happens.
///
/// # Errors
///
/// Everything [`read_edge_list`] returns, plus
/// [`GraphError::ResourceExhausted`] on a tripped ceiling.
pub fn read_edge_list_bounded<R: Read>(
    reader: R,
    limits: EdgeListLimits,
) -> Result<(Graph, Vec<u64>), GraphError> {
    let (g, labels, _) = read_edge_list_impl(reader, false, limits)?;
    Ok((g, labels))
}

/// Like [`read_edge_list`], but malformed lines are skipped and counted
/// instead of failing the whole load. I/O errors remain fatal. The returned
/// [`LoadStats`] lets the caller report how much input was dropped.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on read failures.
///
/// ```
/// use socialgraph::io::read_edge_list_lenient;
/// let data = "1 2\n2 banana\n2 3\n";
/// let (g, _, stats) = read_edge_list_lenient(data.as_bytes())?;
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(stats.skipped_lines, 1);
/// assert_eq!(stats.first_skipped, Some(2));
/// # Ok::<(), socialgraph::GraphError>(())
/// ```
pub fn read_edge_list_lenient<R: Read>(
    reader: R,
) -> Result<(Graph, Vec<u64>, LoadStats), GraphError> {
    read_edge_list_impl(reader, true, EdgeListLimits::unlimited())
}

/// Like [`read_edge_list_lenient`], but enforcing the node/edge ceilings
/// of `limits`. A tripped ceiling stays fatal even in lenient mode: skipping
/// a malformed line loses one edge, but over-budget growth is the hostile
/// condition the budget exists to stop.
///
/// # Errors
///
/// Everything [`read_edge_list_lenient`] returns, plus
/// [`GraphError::ResourceExhausted`] on a tripped ceiling.
pub fn read_edge_list_lenient_bounded<R: Read>(
    reader: R,
    limits: EdgeListLimits,
) -> Result<(Graph, Vec<u64>, LoadStats), GraphError> {
    read_edge_list_impl(reader, true, limits)
}

fn read_edge_list_impl<R: Read>(
    reader: R,
    lenient: bool,
    limits: EdgeListLimits,
) -> Result<(Graph, Vec<u64>, LoadStats), GraphError> {
    let reader = BufReader::new(reader);
    // BTreeMap rather than HashMap: this crate's kernels are under the
    // `cargo xtask check` hash-collection ban, and the interner's dense ids
    // must depend only on input order, never on hasher state.
    let mut ids: BTreeMap<u64, u32> = BTreeMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut stats = LoadStats::default();

    // Interning is fallible: dense ids live in `u32`, so a stream with more
    // than 2^32 distinct labels is structurally overflow-sized whatever the
    // budget says, and the configured `max_nodes` ceiling trips first when
    // one is set.
    let intern = |raw: u64, ids: &mut BTreeMap<u64, u32>, labels: &mut Vec<u64>| -> Result<u32, GraphError> {
        if let Some(&id) = ids.get(&raw) {
            return Ok(id);
        }
        if let Some(max) = limits.max_nodes {
            if observed(labels.len()) >= max {
                return Err(GraphError::ResourceExhausted {
                    resource: "nodes",
                    limit: max,
                    observed: observed(labels.len()) + 1,
                });
            }
        }
        let next = u32::try_from(labels.len()).map_err(|_| GraphError::ResourceExhausted {
            resource: "node ids",
            limit: u64::from(u32::MAX),
            observed: observed(labels.len()),
        })?;
        labels.push(raw);
        ids.insert(raw, next);
        Ok(next)
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Parse both endpoints before interning either, so a half-valid
        // line in lenient mode never plants a spurious isolated node.
        let (u, v) = match parse_edge_line(trimmed, lineno + 1) {
            Ok(pair) => pair,
            Err(e) => {
                if lenient {
                    stats.record(lineno + 1);
                    continue;
                }
                return Err(e);
            }
        };
        if let Some(max) = limits.max_edges {
            if observed(edges.len()) >= max {
                return Err(GraphError::ResourceExhausted {
                    resource: "edges",
                    limit: max,
                    observed: observed(edges.len()) + 1,
                });
            }
        }
        let u = intern(u, &mut ids, &mut labels)?;
        let v = intern(v, &mut ids, &mut labels)?;
        edges.push((u, v));
    }

    let mut b = GraphBuilder::new(labels.len());
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok((b.build(), labels, stats))
}

/// Writes `g` as a SNAP edge list (one `u v` line per undirected edge, with
/// a size header comment).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes: {} edges: {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let data = "# header\n\n1 2\n2 3\n\n# tail\n";
        let (g, labels) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn merges_directed_duplicates() {
        let data = "5 7\n7 5\n";
        let (g, _) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = read_edge_list("1 banana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_error_carries_the_offending_token() {
        let err = read_edge_list("# ok\n1 2\n3 banana\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, token, content } => {
                assert_eq!(line, 3);
                assert_eq!(token, "banana");
                assert_eq!(content, "3 banana");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_line_reports_end_of_line() {
        let err = read_edge_list("1\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { token, .. } => assert_eq!(token, "<end of line>"),
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn lenient_mode_skips_and_counts_bad_lines() {
        let data = "1 2\nbananas everywhere\n2 3\n4 -1\n3 1\n";
        let (g, labels, stats) = read_edge_list_lenient(data.as_bytes()).expect("lenient load");
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![1, 2, 3]);
        assert_eq!(stats.skipped_lines, 2);
        assert_eq!(stats.first_skipped, Some(2));
        assert!(stats.is_degraded());
    }

    #[test]
    fn lenient_mode_never_interns_nodes_from_skipped_lines() {
        // "4" parses but its partner does not: node 4 must not appear.
        let (g, labels, stats) =
            read_edge_list_lenient("1 2\n4 oops\n".as_bytes()).expect("lenient load");
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(labels, vec![1, 2]);
        assert_eq!(stats.skipped_lines, 1);
    }

    #[test]
    fn lenient_mode_matches_strict_on_clean_input() {
        let data = "# header\n1 2\n2 3\n";
        let (g, labels) = read_edge_list(data.as_bytes()).expect("strict load");
        let (g2, labels2, stats) = read_edge_list_lenient(data.as_bytes()).expect("lenient load");
        assert_eq!(g, g2);
        assert_eq!(labels, labels2);
        assert_eq!(stats, LoadStats::default());
    }

    #[test]
    fn roundtrips_through_write_and_read() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write to Vec cannot fail");
        let (g2, _) = read_edge_list(buf.as_slice()).expect("roundtrip parses");
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 3);
    }

    #[test]
    fn bounded_load_rejects_over_budget_nodes() {
        let data = "1 2\n3 4\n";
        let err = read_edge_list_bounded(
            data.as_bytes(),
            EdgeListLimits { max_nodes: Some(3), max_edges: None },
        )
        .unwrap_err();
        match err {
            GraphError::ResourceExhausted { resource, limit, observed } => {
                assert_eq!(resource, "nodes");
                assert_eq!(limit, 3);
                assert_eq!(observed, 4);
            }
            other => panic!("expected ResourceExhausted, got {other}"),
        }
    }

    #[test]
    fn bounded_load_rejects_over_budget_edges() {
        let data = "1 2\n2 3\n3 1\n";
        let err = read_edge_list_bounded(
            data.as_bytes(),
            EdgeListLimits { max_nodes: None, max_edges: Some(2) },
        )
        .unwrap_err();
        assert!(
            matches!(err, GraphError::ResourceExhausted { resource: "edges", limit: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn bounded_load_at_the_exact_budget_succeeds() {
        let data = "1 2\n2 3\n";
        let (g, labels) = read_edge_list_bounded(
            data.as_bytes(),
            EdgeListLimits { max_nodes: Some(3), max_edges: Some(2) },
        )
        .expect("exact-budget load succeeds");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn lenient_bounded_load_still_fails_on_budget() {
        // Malformed lines skip, but the budget trip stays fatal.
        let data = "1 2\nbanana\n3 4\n";
        let err = read_edge_list_lenient_bounded(
            data.as_bytes(),
            EdgeListLimits { max_nodes: Some(2), max_edges: None },
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::ResourceExhausted { resource: "nodes", .. }), "{err}");
    }

    #[test]
    fn unlimited_limits_report_unlimited() {
        assert!(!EdgeListLimits::unlimited().is_limited());
        assert!(EdgeListLimits { max_nodes: Some(1), max_edges: None }.is_limited());
    }

    #[test]
    fn handles_large_sparse_labels() {
        let data = "1000000000 2000000000\n";
        let (g, labels) = read_edge_list(data.as_bytes()).expect("fixture parses");
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(labels, vec![1_000_000_000, 2_000_000_000]);
    }
}
