use crate::{GraphError, NodeId};

/// An undirected simple graph over dense node ids `0..num_nodes`.
///
/// Storage is an adjacency list with each neighbor list sorted, so
/// [`Graph::has_edge`] is a binary search and neighbor intersection (used by
/// the clustering-coefficient metric) is a linear merge.
///
/// `Graph` is immutable; construct one through [`GraphBuilder`], which
/// deduplicates parallel edges and drops self-loops.
///
/// ```
/// use socialgraph::{Graph, GraphBuilder, NodeId};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (1, 2)]);
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.has_edge(NodeId(1), NodeId(2)));
/// assert!(!g.has_edge(NodeId(0), NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    num_edges: u64,
}

impl Graph {
    /// Builds a graph with `num_nodes` nodes from an iterator of `(u, v)`
    /// pairs given as raw `u32` ids. Convenience wrapper over
    /// [`GraphBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// The sorted neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.index()]
    }

    /// Whether the undirected edge `(u, v)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let n = u32::try_from(self.adj.len()).expect("node count fits the u32 id space");
        (0..n).map(NodeId)
    }

    /// Iterator over every undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> EdgesIter<'_> {
        EdgesIter { graph: self, u: 0, pos: 0 }
    }

    /// Iterator over neighbors of `u` (equivalent to
    /// `self.neighbors(u).iter().copied()`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors_iter(&self, u: NodeId) -> NeighborsIter<'_> {
        NeighborsIter { inner: self.adj[u.index()].iter() }
    }

    /// Validates that `u` names a node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if it does not.
    pub fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u.index() < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { node: u.0, num_nodes: self.adj.len() })
        }
    }
}

/// Iterator over the edges of a [`Graph`]; see [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgesIter<'a> {
    graph: &'a Graph,
    u: u32,
    pos: usize,
}

impl Iterator for EdgesIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        while NodeId(self.u).index() < self.graph.adj.len() {
            let list = &self.graph.adj[NodeId(self.u).index()];
            while self.pos < list.len() {
                let v = list[self.pos];
                self.pos += 1;
                if self.u < v.0 {
                    return Some((NodeId(self.u), v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

/// Iterator over the neighbors of a node; see [`Graph::neighbors_iter`].
#[derive(Debug, Clone)]
pub struct NeighborsIter<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl Iterator for NeighborsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborsIter<'_> {}

/// Incremental constructor for [`Graph`].
///
/// Deduplicates parallel edges and silently ignores self-loops, matching how
/// the paper treats multiple rejections between the same pair ("we denote
/// them as a single rejection edge") and how SNAP edge lists are cleaned.
///
/// ```
/// use socialgraph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // duplicate, ignored
/// b.add_edge(NodeId(0), NodeId(0)); // self-loop, ignored
/// assert_eq!(b.build().num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    adj: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { adj: vec![Vec::new(); num_nodes] }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Appends `extra` new isolated nodes and returns the id of the first
    /// one. Used by the attack simulator to graft a Sybil region onto a
    /// host graph.
    pub fn add_nodes(&mut self, extra: usize) -> NodeId {
        let first = self.adj.len();
        self.adj.resize(self.adj.len() + extra, Vec::new());
        NodeId::from_index(first)
    }

    /// Adds the undirected edge `(u, v)`. Duplicate edges and self-loops are
    /// ignored. Returns `true` if the edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.adj.len() && v.index() < self.adj.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adj.len()
        );
        if u == v {
            return false;
        }
        // Probe the smaller list to keep duplicate detection cheap during
        // generation (lists are unsorted until `build`).
        let (probe, other) = if self.adj[u.index()].len() <= self.adj[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        if self.adj[probe.index()].contains(&other) {
            return false;
        }
        self.adj[u.index()].push(v);
        self.adj[v.index()].push(u);
        true
    }

    /// Whether the edge `(u, v)` has already been added.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (probe, other) = if self.adj[u.index()].len() <= self.adj[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[probe.index()].contains(&other)
    }

    /// Current degree of `u` among edges added so far.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Finalizes into an immutable [`Graph`] with sorted adjacency.
    ///
    /// Edge counting uses checked arithmetic end to end: a hostile input
    /// cannot wrap the degree sum into a silently-wrong `num_edges`.
    pub fn build(mut self) -> Graph {
        let mut num_edges = 0u64;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            let deg = u64::try_from(list.len()).expect("degree fits in u64");
            num_edges = num_edges.checked_add(deg).expect("degree sum fits in u64");
        }
        let g = Graph { adj: self.adj, num_edges: num_edges / 2 };
        #[cfg(feature = "debug-invariants")]
        g.assert_invariants();
        g
    }
}

#[cfg(feature = "debug-invariants")]
impl Graph {
    /// Exhaustively re-checks the structural invariants every kernel in the
    /// workspace assumes of adjacency storage: sorted, deduplicated,
    /// self-loop-free neighbor lists; symmetry (`v ∈ adj[u] ⇔ u ∈ adj[v]`);
    /// and the degree-sum identity `Σ deg(u) = 2·|E|`. `O(Σ deg · log deg)`,
    /// so it is compiled only under the `debug-invariants` feature;
    /// [`GraphBuilder::build`] calls it automatically after every graph
    /// construction (the only mutation point — `Graph` itself is immutable).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn assert_invariants(&self) {
        let n = self.adj.len();
        let mut degree_sum = 0u64;
        for (i, list) in self.adj.iter().enumerate() {
            let u = NodeId::from_index(i);
            let deg = u64::try_from(list.len()).expect("degree fits in u64");
            degree_sum = degree_sum.checked_add(deg).expect("degree sum fits in u64");
            for w in list.windows(2) {
                assert!(
                    w[0] < w[1],
                    "adjacency of {u} unsorted or duplicated: {} before {}",
                    w[0],
                    w[1]
                );
            }
            for &v in list {
                assert!(v.index() < n, "neighbor {v} of {u} out of range ({n} nodes)");
                assert_ne!(v, u, "self-loop on {u}");
                assert!(
                    self.adj[v.index()].binary_search(&u).is_ok(),
                    "asymmetric adjacency: {v} ∈ adj[{u}] but {u} ∉ adj[{v}]"
                );
            }
        }
        assert_eq!(
            degree_sum,
            2 * self.num_edges,
            "degree sum {degree_sum} disagrees with 2·|E| = {}",
            2 * self.num_edges
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolate() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn counts_nodes_and_edges() {
        let g = triangle_plus_isolate();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(4, [(2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = Graph::from_edges(2, [(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_isolate();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(3), NodeId(0)));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_isolate();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn add_nodes_extends_graph() {
        let mut b = GraphBuilder::new(2);
        let first = b.add_nodes(3);
        assert_eq!(first, NodeId(2));
        assert_eq!(b.num_nodes(), 5);
        b.add_edge(NodeId(1), NodeId(4));
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.has_edge(NodeId(1), NodeId(4)));
    }

    #[test]
    fn check_node_rejects_out_of_range() {
        let g = triangle_plus_isolate();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(g.check_node(NodeId(4)).is_err());
    }

    #[test]
    fn builder_add_edge_reports_insertion() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId(0), NodeId(1)));
        assert!(!b.add_edge(NodeId(1), NodeId(0)));
        assert!(!b.add_edge(NodeId(2), NodeId(2)));
    }

    #[test]
    fn neighbors_iter_matches_slice() {
        let g = triangle_plus_isolate();
        let via_iter: Vec<_> = g.neighbors_iter(NodeId(0)).collect();
        assert_eq!(via_iter.as_slice(), g.neighbors(NodeId(0)));
        assert_eq!(g.neighbors_iter(NodeId(0)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5));
    }
}
