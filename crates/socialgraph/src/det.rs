//! Determinism-preserving float helpers.
//!
//! Floating-point addition is not associative: `(a + b) + c` and
//! `a + (b + c)` can differ in the last ulp, so any reduction whose
//! accumulation order is unspecified (`Iterator::sum`, a parallel tree
//! reduce) is a silent determinism hazard. The `float-determinism` lint
//! (`cargo xtask check`) bans such reductions in the kernel crates;
//! this module is the sanctioned escape hatch. [`ordered_sum`] and
//! [`ordered_mean`] commit to one explicit order — a single
//! left-to-right fold over the iterator as given — so the result is a
//! pure function of the element *sequence*, never of scheduling.
//! Callers remain responsible for feeding a deterministic sequence
//! (iterate a `Vec` or `BTreeMap`, not a hash map).

/// Left-to-right sequential sum. Same value as `iter.sum::<f64>()` on
/// every platform, but the ordering contract is explicit at the call
/// site, which is what the `float-determinism` lint asks for.
pub fn ordered_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    // The one blessed order-silent reduction: this fold IS the ordering
    // contract the rest of the workspace points at.
    values.into_iter().fold(0.0, |acc, x| acc + x) // xtask-allow: float-determinism: left-to-right fold is the ordering contract itself
}

/// Left-to-right mean: [`ordered_sum`] divided by the element count.
/// Returns `None` for an empty sequence instead of `NaN`.
pub fn ordered_mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut n = 0u64;
    let total = ordered_sum(values.into_iter().inspect(|_| n += 1));
    if n == 0 {
        None
    } else {
        // u64 → f64 is exact for any feasible element count (< 2^53).
        Some(total / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_is_left_to_right() {
        // Chosen so two orders of the same multiset disagree: the tiny
        // term survives only when the big terms cancel before it lands.
        assert_eq!(ordered_sum([1e16, 1.0, -1e16]), 0.0);
        assert_eq!(ordered_sum([1e16, -1e16, 1.0]), 1.0);
    }

    #[test]
    fn ordered_sum_of_empty_is_zero() {
        assert_eq!(ordered_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn ordered_mean_basics() {
        assert_eq!(ordered_mean([1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(ordered_mean(std::iter::empty()), None);
    }
}
