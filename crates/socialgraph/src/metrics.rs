//! Graph metrics used to characterize the Table-I host graphs.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Average local clustering coefficient (the statistic SNAP reports and the
/// paper's Table I lists).
///
/// The local coefficient of a node with degree `d >= 2` is
/// `2 * triangles(u) / (d * (d - 1))`; nodes with degree `< 2` contribute 0,
/// and the average is over all nodes.
///
/// ```
/// use socialgraph::{Graph, metrics};
/// // A triangle: every node has coefficient 1.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// assert!((metrics::average_clustering(&g) - 1.0).abs() < 1e-12);
/// ```
pub fn average_clustering(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for u in g.nodes() {
        let d = g.degree(u);
        if d < 2 {
            continue;
        }
        let tri = triangles_at(g, u);
        total += 2.0 * tri as f64 / (d as f64 * (d as f64 - 1.0));
    }
    total / g.num_nodes() as f64
}

/// Number of triangles incident to `u` (pairs of adjacent neighbors).
///
/// # Panics
///
/// Panics if `u` is out of range.
pub fn triangles_at(g: &Graph, u: NodeId) -> u64 {
    let nbrs = g.neighbors(u);
    let mut count = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        let a_nbrs = g.neighbors(a);
        // Sorted-merge intersection of a's neighbors with u's neighbors
        // after position i (each pair counted once).
        let rest = &nbrs[i + 1..];
        let (mut x, mut y) = (0usize, 0usize);
        while x < a_nbrs.len() && y < rest.len() {
            match a_nbrs[x].cmp(&rest[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
    }
    count
}

/// Breadth-first distances from `src`; unreachable nodes get `u32::MAX`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    dist[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components, each a sorted list of node ids; components are
/// ordered by their smallest node id.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.num_nodes()];
    let mut comps = Vec::new();
    for s in g.nodes() {
        if seen[s.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([s]);
        seen[s.index()] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Node set of the largest connected component (ties broken by smallest id).
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    connected_components(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Lower bound on the diameter of the component containing `start`, via the
/// iterated double-sweep heuristic (`rounds` sweeps).
///
/// On the small-world graphs used here the bound is usually tight; the
/// Table-I harness labels it as a lower bound regardless.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn pseudo_diameter(g: &Graph, start: NodeId, rounds: usize) -> u32 {
    let mut best = 0u32;
    let mut from = start;
    for _ in 0..rounds.max(1) {
        let dist = bfs_distances(g, from);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != u32::MAX)
            .max_by_key(|(_, &d)| d)
            .map(|(i, &d)| (NodeId::from_index(i), d))
            .unwrap_or((from, 0));
        if d <= best {
            break;
        }
        best = d;
        from = far;
    }
    best
}

/// Exact diameter of the component containing the largest component's nodes.
/// Runs a BFS from every node of that component — only for small graphs and
/// tests.
pub fn exact_diameter(g: &Graph) -> u32 {
    let comp = largest_component(g);
    let mut best = 0u32;
    for &u in &comp {
        let dist = bfs_distances(g, u);
        let ecc = comp
            .iter()
            .map(|v| dist[v.index()])
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Basic degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes [`DegreeStats`] over all nodes.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.num_nodes() == 0 {
        return DegreeStats::default();
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0u64;
    for u in g.nodes() {
        let d = g.degree(u);
        min = min.min(d);
        max = max.max(d);
        sum += d as u64;
    }
    DegreeStats { min, max, mean: sum as f64 / g.num_nodes() as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_path_is_zero() {
        assert_eq!(average_clustering(&path5()), 0.0);
    }

    #[test]
    fn clustering_of_square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: nodes 1 and 3 have cc 1,
        // nodes 0 and 2 have cc 2/3 (2 triangles over C(3,2)=3 pairs).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let expected = (1.0 + 1.0 + 2.0 / 3.0 + 2.0 / 3.0) / 4.0;
        assert!((average_clustering(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn triangle_counting_matches_by_hand() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(triangles_at(&g, crate::NodeId(0)), 2);
        assert_eq!(triangles_at(&g, crate::NodeId(1)), 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path5(), crate::NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = bfs_distances(&g, crate::NodeId(0));
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn components_split_correctly() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[2], vec![crate::NodeId(4)]);
    }

    #[test]
    fn largest_component_of_two() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(largest_component(&g).len(), 3);
    }

    #[test]
    fn pseudo_diameter_is_exact_on_path() {
        assert_eq!(pseudo_diameter(&path5(), crate::NodeId(2), 4), 4);
        assert_eq!(exact_diameter(&path5()), 4);
    }

    #[test]
    fn exact_diameter_of_cycle() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(exact_diameter(&g), 3);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_metrics_are_defined() {
        let g = Graph::from_edges(0, []);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(degree_stats(&g), DegreeStats::default());
        assert!(connected_components(&g).is_empty());
    }
}

/// Conductance of a node set `S`: cut edges over the smaller side's edge
/// volume, `|∂S| / min(vol(S), vol(V∖S))`. This is the quantity social-
/// graph Sybil defenses reason about — a Sybil region attached by few
/// attack edges is exactly a low-conductance set, and SybilRank's
/// early-terminated walk relies on the legitimate region's conductance
/// being much higher.
///
/// Returns `None` when either side has zero volume (no edges to compare).
///
/// # Panics
///
/// Panics if `in_set.len() != g.num_nodes()`.
pub fn conductance(g: &Graph, in_set: &[bool]) -> Option<f64> {
    assert_eq!(in_set.len(), g.num_nodes(), "set mask has wrong length");
    let mut cut = 0u64;
    let mut vol_s = 0u64;
    let mut vol_rest = 0u64;
    for u in g.nodes() {
        let du = g.degree(u) as u64;
        if in_set[u.index()] {
            vol_s += du;
            for &v in g.neighbors(u) {
                if !in_set[v.index()] {
                    cut += 1;
                }
            }
        } else {
            vol_rest += du;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

#[cfg(test)]
mod conductance_tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn two_cliques_with_bridge_have_low_conductance() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, edges);
        let in_set: Vec<bool> = (0..8).map(|i| i < 4).collect();
        // One cut edge; each side's volume is 2·6 + 1 = 13.
        let phi = conductance(&g, &in_set).expect("cut has volume");
        assert!((phi - 1.0 / 13.0).abs() < 1e-12, "{phi}");
    }

    #[test]
    fn split_of_complete_graph_has_high_conductance() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, edges);
        let in_set: Vec<bool> = (0..6).map(|i| i < 3).collect();
        // Cut = 9, vol each side = 15.
        assert!((conductance(&g, &in_set).expect("cut has volume") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_side_is_undefined() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(conductance(&g, &[false, false, false]).is_none());
        assert!(conductance(&g, &[true, true, true]).is_none());
    }
}
