use std::fmt;

/// Dense identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are consecutive integers `0..num_nodes`. The newtype keeps node
/// indices from being confused with counts, degrees, or other integers.
///
/// ```
/// use socialgraph::NodeId;
/// let n = NodeId(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(n.to_string(), "7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index, for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_index() {
        assert_eq!(NodeId::from_index(42).index(), 42);
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(format!("{}", NodeId(3)), "3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn from_index_rejects_overflow() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
