//! Forest-fire sampling of an existing graph.
//!
//! The paper's Facebook graph "is a sample graph we obtained on Facebook via
//! the 'forest fire' sampling method" (Leskovec & Faloutsos, KDD'06). This
//! module implements that sampler so the same pipeline can be applied to any
//! host graph.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Result of a sampling run: the induced subgraph plus the mapping from new
/// ids to original ids.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The induced subgraph over the sampled nodes, relabeled to `0..k`.
    pub graph: Graph,
    /// `original[i]` is the id the sampled node `i` had in the host graph.
    pub original: Vec<NodeId>,
}

/// Forest-fire samples `target` nodes from `g` with forward-burning
/// probability `burn_p`, then returns the induced subgraph.
///
/// Fires start at uniform random seeds and restart whenever they die out,
/// so the sampler always reaches `target` nodes (capped at `g.num_nodes()`).
///
/// # Panics
///
/// Panics if `burn_p` is not in `[0, 1)` or `target == 0`.
pub fn forest_fire_sample<R: Rng + ?Sized>(g: &Graph, target: usize, burn_p: f64, rng: &mut R) -> Sample {
    assert!((0.0..1.0).contains(&burn_p), "burn_p must be in [0, 1)");
    assert!(target > 0, "target must be positive");
    let target = target.min(g.num_nodes());

    let mut in_sample = vec![false; g.num_nodes()];
    let mut sampled: Vec<NodeId> = Vec::with_capacity(target);
    let mut frontier: Vec<NodeId> = Vec::new();

    while sampled.len() < target {
        if frontier.is_empty() {
            // Start (or restart) a fire at a fresh uniform seed.
            loop {
                let s = NodeId(rng.gen_range(0..g.num_nodes() as u32));
                if !in_sample[s.index()] {
                    in_sample[s.index()] = true;
                    sampled.push(s);
                    frontier.push(s);
                    break;
                }
            }
            continue;
        }
        let u = frontier.pop().expect("frontier checked non-empty");
        let mut burn = 0usize;
        while rng.gen_bool(burn_p) {
            burn += 1;
        }
        if burn == 0 {
            continue;
        }
        let mut fresh: Vec<NodeId> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|v| !in_sample[v.index()])
            .collect();
        for _ in 0..burn.min(fresh.len()) {
            if sampled.len() >= target {
                break;
            }
            let i = rng.gen_range(0..fresh.len());
            let v = fresh.swap_remove(i);
            in_sample[v.index()] = true;
            sampled.push(v);
            frontier.push(v);
        }
    }

    // Induce the subgraph with dense relabeling.
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (i, &orig) in sampled.iter().enumerate() {
        new_id[orig.index()] = i as u32;
    }
    let mut b = GraphBuilder::new(sampled.len());
    for (i, &orig) in sampled.iter().enumerate() {
        for &v in g.neighbors(orig) {
            let nv = new_id[v.index()];
            if nv != u32::MAX {
                b.add_edge(NodeId(i as u32), NodeId(nv));
            }
        }
    }
    Sample { graph: b.build(), original: sampled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::BarabasiAlbert;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_has_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let host = BarabasiAlbert::new(1_000, 4).generate(&mut rng);
        let s = forest_fire_sample(&host, 200, 0.4, &mut rng);
        assert_eq!(s.graph.num_nodes(), 200);
        assert_eq!(s.original.len(), 200);
    }

    #[test]
    fn sample_edges_exist_in_host() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let host = BarabasiAlbert::new(500, 3).generate(&mut rng);
        let s = forest_fire_sample(&host, 100, 0.5, &mut rng);
        for (u, v) in s.graph.edges() {
            assert!(host.has_edge(s.original[u.index()], s.original[v.index()]));
        }
    }

    #[test]
    fn sampled_ids_are_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let host = BarabasiAlbert::new(400, 2).generate(&mut rng);
        let s = forest_fire_sample(&host, 150, 0.3, &mut rng);
        let mut ids = s.original.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 150);
    }

    #[test]
    fn target_is_capped_at_host_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let host = BarabasiAlbert::new(50, 2).generate(&mut rng);
        let s = forest_fire_sample(&host, 500, 0.4, &mut rng);
        assert_eq!(s.graph.num_nodes(), 50);
    }

    #[test]
    #[should_panic(expected = "target")]
    fn rejects_zero_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = BarabasiAlbert::new(10, 2).generate(&mut rng);
        let _ = forest_fire_sample(&host, 0, 0.4, &mut rng);
    }
}
