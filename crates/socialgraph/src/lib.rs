//! Social-graph substrate for the Rejecto reproduction.
//!
//! This crate implements everything the paper's evaluation needs from a
//! graph library, from scratch:
//!
//! * a compact undirected simple graph ([`Graph`]) with a deduplicating
//!   [`GraphBuilder`];
//! * random-graph generators used to synthesize the evaluation's host
//!   graphs ([`generators`]): Barabási–Albert, Holme–Kim (power-law with
//!   tunable clustering), Watts–Strogatz, Erdős–Rényi, and the
//!   Leskovec forest-fire model;
//! * forest-fire *sampling* of an existing graph ([`sampling`]), the method
//!   the paper used to obtain its Facebook sample;
//! * graph metrics ([`metrics`]): average local clustering coefficient,
//!   (pseudo-)diameter, degree statistics, connected components;
//! * community detection by label propagation ([`communities`]) and the
//!   SybilRank-style community-spread seed picker;
//! * SNAP-style edge-list I/O ([`io`]);
//! * the catalog of Table-I surrogate graphs ([`surrogates`]).
//!
//! # Example
//!
//! ```
//! use socialgraph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1));
//! b.add_edge(NodeId(1), NodeId(2));
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 2);
//! assert_eq!(g.degree(NodeId(1)), 2);
//! ```

#![forbid(unsafe_code)]

mod error;
mod graph;
mod id;

pub mod analysis;
pub mod communities;
pub mod det;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod sampling;
pub mod surrogates;

pub use error::GraphError;
pub use graph::{EdgesIter, Graph, GraphBuilder, NeighborsIter};
pub use id::NodeId;
