//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use socialgraph::{io, metrics, Graph, GraphBuilder, NodeId};

fn random_graph(n: usize) -> impl Strategy<Value = Graph> {
    let nodes = 1..n;
    nodes.prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3)
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    /// Degree sum equals twice the edge count (handshake lemma), and
    /// adjacency is symmetric.
    #[test]
    fn handshake_and_symmetry(g in random_graph(32)) {
        let degree_sum: u64 = g.nodes().map(|u| g.degree(u) as u64).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge ({u}, {v})");
                prop_assert_ne!(u, v, "self-loop survived");
            }
        }
    }

    /// The edges iterator yields each undirected edge exactly once.
    #[test]
    fn edges_iterator_is_exact(g in random_graph(24)) {
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len() as u64, g.num_edges());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());
    }

    /// Edge-list write/read round trips to an isomorphic graph (identical
    /// under the dense relabeling order, modulo isolated nodes which the
    /// text format cannot represent).
    #[test]
    fn edge_list_roundtrip(g in random_graph(24)) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("write to Vec cannot fail");
        let (g2, labels) = io::read_edge_list(buf.as_slice()).expect("roundtrip parses");
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g2.edges() {
            let (ou, ov) = (labels[u.index()] as u32, labels[v.index()] as u32);
            prop_assert!(g.has_edge(NodeId(ou), NodeId(ov)));
        }
    }

    /// Clustering coefficient is a probability; triangle counts are
    /// symmetric in their computation.
    #[test]
    fn clustering_is_bounded(g in random_graph(20)) {
        let cc = metrics::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&cc), "clustering {cc}");
    }

    /// BFS distances satisfy the triangle property along edges: adjacent
    /// nodes' distances differ by at most 1 (when both reachable).
    #[test]
    fn bfs_is_lipschitz_along_edges(g in random_graph(24)) {
        if g.num_nodes() == 0 { return Ok(()); }
        let dist = metrics::bfs_distances(&g, NodeId(0));
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "edge with one endpoint unreachable");
            }
        }
    }

    /// Components partition the node set.
    #[test]
    fn components_partition_nodes(g in random_graph(24)) {
        let comps = metrics::connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());
        let mut seen = vec![false; g.num_nodes()];
        for c in &comps {
            for u in c {
                prop_assert!(!seen[u.index()], "node {u} in two components");
                seen[u.index()] = true;
            }
        }
    }

    /// The builder is idempotent under duplicate edge insertion.
    #[test]
    fn builder_dedupes(
        n in 2usize..16,
        edges in proptest::collection::vec((0u32..16, 0u32..16), 0..40),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let mut b1 = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b1.add_edge(NodeId(u), NodeId(v));
        }
        let mut b2 = GraphBuilder::new(n);
        for &(u, v) in edges.iter().chain(edges.iter()) {
            b2.add_edge(NodeId(u), NodeId(v));
        }
        prop_assert_eq!(b1.build(), b2.build());
    }
}
