//! Hostile-input hardening of the edge-list loaders: arbitrary byte
//! streams and adversarially shaped edge lists must produce typed errors
//! (or clean skips in lenient mode) — never a panic, never unbounded
//! allocation past an armed [`EdgeListLimits`] budget.

use proptest::prelude::*;
use socialgraph::io::{
    read_edge_list, read_edge_list_bounded, read_edge_list_lenient,
    read_edge_list_lenient_bounded, EdgeListLimits,
};
use socialgraph::GraphError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The strict loader maps every byte soup to `Ok` or a typed error.
    /// Running under `catch_unwind`-free test harness, a panic would fail
    /// the test outright — surviving all cases is the assertion.
    #[test]
    fn arbitrary_bytes_never_panic_the_strict_loader(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = read_edge_list(bytes.as_slice());
    }

    /// The lenient loader tolerates every malformed *line*; the only error
    /// it may return on arbitrary bytes is an I/O-level one (invalid
    /// UTF-8 surfaces through the buffered line reader).
    #[test]
    fn arbitrary_bytes_never_panic_the_lenient_loader(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        match read_edge_list_lenient(bytes.as_slice()) {
            Ok((g, labels, stats)) => {
                prop_assert_eq!(g.num_nodes(), labels.len());
                if stats.skipped_lines > 0 {
                    prop_assert!(stats.first_skipped.is_some());
                }
            }
            Err(GraphError::Io(_)) => {}
            Err(other) => {
                return Err(format!("lenient loader returned a non-I/O error: {other}"));
            }
        }
    }

    /// Budgets bound both loaders identically: a ceiling below the input's
    /// true node/edge demand yields `ResourceExhausted` from the strict
    /// *and* the lenient bounded reader (budget trips are fatal in both
    /// modes), while a ceiling at or above the demand changes nothing.
    #[test]
    fn budgets_trip_identically_in_strict_and_lenient_mode(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..40),
        node_cap in 1u64..8,
    ) {
        let text: String =
            edges.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
        let (g, _) = read_edge_list(text.as_bytes()).expect("well-formed fixture parses");
        let demand = g.num_nodes() as u64;

        let limits = EdgeListLimits { max_nodes: Some(node_cap), max_edges: None };
        let strict = read_edge_list_bounded(text.as_bytes(), limits);
        let lenient = read_edge_list_lenient_bounded(text.as_bytes(), limits);
        if node_cap >= demand {
            prop_assert!(strict.is_ok());
            prop_assert!(lenient.is_ok());
        } else {
            for result in [strict.map(|_| ()), lenient.map(|_| ())] {
                match result {
                    Err(GraphError::ResourceExhausted { resource, limit, observed }) => {
                        prop_assert_eq!(resource, "nodes");
                        prop_assert_eq!(limit, node_cap);
                        prop_assert!(observed > limit);
                    }
                    other => {
                        return Err(format!(
                            "expected ResourceExhausted(nodes), got {other:?}"
                        ));
                    }
                }
            }
        }
    }

    /// Raw labels anywhere in the `u64` space — including the `u32`
    /// boundary — intern cleanly to dense ids; the number of interned
    /// nodes equals the number of distinct labels, never the magnitude of
    /// any label.
    #[test]
    fn u64_boundary_labels_intern_without_ballooning(
        labels in proptest::collection::vec(
            prop_oneof![
                Just(0u64),
                Just(u64::from(u32::MAX)),
                Just(u64::from(u32::MAX) + 1),
                Just(u64::MAX),
                0u64..1000,
            ],
            2..20,
        ),
    ) {
        let text: String = labels
            .windows(2)
            .map(|w| format!("{} {}\n", w[0], w[1]))
            .collect();
        let (g, interned) =
            read_edge_list(text.as_bytes()).expect("well-formed fixture parses");
        // Every label is interned exactly once (self-loop lines drop the
        // edge but still intern the endpoint); magnitude is irrelevant.
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(g.num_nodes(), distinct.len());
        prop_assert_eq!(interned.len(), distinct.len());
    }
}
