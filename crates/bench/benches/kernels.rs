//! Micro-benchmarks of the algorithmic kernels: the FM bucket list, the
//! extended-KL pass, and the MAAR sweep. These quantify the §IV-C claim
//! that the bucket list makes KL effectively linear per pass.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use kl::{BucketList, ExtendedKl, ExtendedKlConfig, KParam};
use rejecto_core::{MaarSolver, RejectoConfig};
use rejection::Partition;
use simulator::{Scenario, ScenarioConfig};
use socialgraph::surrogates::Surrogate;
use std::hint::black_box;

fn bench_bucket_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_list");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("insert_update_pop", n), &n, |b, &n| {
            b.iter_batched(
                || BucketList::new(n, -65, 65),
                |mut bucket| {
                    for i in 0..n as u32 {
                        bucket.insert(i, (i as i64 % 129) - 64);
                    }
                    for i in 0..n as u32 {
                        bucket.adjust(i, if i % 2 == 0 { 1 } else { -1 });
                    }
                    while let Some(x) = bucket.pop_max() {
                        black_box(x);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The ablation contrast: a naive max-scan over a gain vector. The
    // quadratic baseline is capped at 10K nodes — the gap to the bucket
    // list is already two orders of magnitude there.
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("naive_scan_pop", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let gains: Vec<i64> = (0..n as i64).map(|i| (i % 129) - 64).collect();
                    let present = vec![true; n];
                    (gains, present)
                },
                |(gains, mut present)| {
                    for _ in 0..n {
                        let best = (0..n)
                            .filter(|&i| present[i])
                            .max_by_key(|&i| gains[i])
                            .expect("non-empty");
                        present[best] = false;
                        black_box(best);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn scenario(scale: f64) -> simulator::SimOutput {
    let host = Surrogate::Facebook.generate_scaled(1, scale);
    let fakes = (10_000.0 * scale) as usize;
    Scenario::new(ScenarioConfig { num_fakes: fakes, ..ScenarioConfig::default() })
        .run(&host, 42)
}

fn bench_extended_kl(c: &mut Criterion) {
    let mut group = c.benchmark_group("extended_kl");
    group.sample_size(10);
    for &scale in &[0.05f64, 0.1, 0.2] {
        let sim = scenario(scale);
        group.bench_with_input(
            BenchmarkId::new("single_k", (scale * 10_000.0) as usize * 2),
            &sim,
            |b, sim| {
                let kl = ExtendedKl::new(
                    &sim.graph,
                    ExtendedKlConfig::new(KParam::approximate(0.56, 64)),
                );
                b.iter(|| {
                    let out = kl.run(Partition::all_legit(&sim.graph));
                    black_box(out.objective)
                })
            },
        );
    }
    group.finish();
}

fn bench_maar_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("maar");
    group.sample_size(10);
    let sim = scenario(0.1);
    group.bench_function("full_sweep_scale0.1", |b| {
        let solver = MaarSolver::new(RejectoConfig::default());
        b.iter(|| {
            let cut = solver.solve(&sim.graph, &[], &[]).expect("cut exists");
            black_box(cut.acceptance_rate)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bucket_list, bench_extended_kl, bench_maar_sweep);
criterion_main!(benches);
