//! End-to-end detector benchmarks: full iterative Rejecto, the VoteTrust
//! baseline, and SybilRank — per-detection cost on a fixed attacked graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rejecto::pipeline::{self, PipelineConfig};
use simulator::{Scenario, ScenarioConfig};
use socialgraph::surrogates::Surrogate;
use std::hint::black_box;
use sybilrank::{SybilRank, SybilRankConfig};
use votetrust::{RequestGraph, VoteTrust};

fn scenario(scale: f64) -> simulator::SimOutput {
    let host = Surrogate::Facebook.generate_scaled(1, scale);
    let fakes = (10_000.0 * scale) as usize;
    Scenario::new(ScenarioConfig { num_fakes: fakes, ..ScenarioConfig::default() })
        .run(&host, 42)
}

fn bench_rejecto(c: &mut Criterion) {
    let mut group = c.benchmark_group("rejecto_pipeline");
    group.sample_size(10);
    for &scale in &[0.05f64, 0.1, 0.2] {
        let sim = scenario(scale);
        let budget = sim.fakes.len();
        let cfg = PipelineConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter((scale * 20_000.0) as usize),
            &sim,
            |b, sim| {
                b.iter(|| black_box(pipeline::rejecto_suspects(sim, &cfg, budget)))
            },
        );
    }
    group.finish();
}

fn bench_votetrust(c: &mut Criterion) {
    let mut group = c.benchmark_group("votetrust");
    group.sample_size(10);
    for &scale in &[0.05f64, 0.1, 0.2] {
        let sim = scenario(scale);
        let g = RequestGraph::from_requests(
            sim.graph.num_nodes(),
            sim.log.requests().iter().map(|r| (r.from, r.to, r.accepted)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter((scale * 20_000.0) as usize),
            &g,
            |b, g| {
                let vt = VoteTrust::default();
                b.iter(|| black_box(vt.rank(g, &[rejection::NodeId(0)])))
            },
        );
    }
    group.finish();
}

fn bench_sybilrank(c: &mut Criterion) {
    let mut group = c.benchmark_group("sybilrank");
    group.sample_size(10);
    for &scale in &[0.1f64, 0.2, 0.5] {
        let sim = scenario(scale);
        let graph = sim.graph.friendship_graph();
        group.bench_with_input(
            BenchmarkId::from_parameter(graph.num_nodes()),
            &graph,
            |b, graph| {
                let sr = SybilRank::new(SybilRankConfig::default());
                b.iter(|| black_box(sr.rank(graph, &[rejection::NodeId(0)])))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rejecto, bench_votetrust, bench_sybilrank);
criterion_main!(benches);
