//! Substrate benchmarks: graph generators, graph metrics, the simulator,
//! and the distributed runtime's throughput (the Table-II kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::{ClusterConfig, DistributedMaar};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto_core::RejectoConfig;
use simulator::{Scenario, ScenarioConfig};
use socialgraph::generators::{BarabasiAlbert, HolmeKim};
use socialgraph::metrics;
use socialgraph::surrogates::Surrogate;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m4", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                black_box(BarabasiAlbert::new(n, 4).generate(&mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("holme_kim_m4_t63", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                black_box(HolmeKim::new(n, 4, 0.63).generate(&mut rng))
            })
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    let g = Surrogate::Facebook.generate_scaled(1, 1.0);
    group.bench_function("average_clustering_10k", |b| {
        b.iter(|| black_box(metrics::average_clustering(&g)))
    });
    group.bench_function("pseudo_diameter_10k", |b| {
        b.iter(|| black_box(metrics::pseudo_diameter(&g, rejection::NodeId(0), 4)))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let host = Surrogate::Facebook.generate_scaled(1, 0.5);
    group.bench_function("scenario_5k_fakes", |b| {
        let sc = Scenario::new(ScenarioConfig { num_fakes: 5_000, ..ScenarioConfig::default() });
        b.iter(|| black_box(sc.run(&host, 42)))
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let host = Surrogate::Facebook.generate_scaled(1, 0.2);
    let sim = Scenario::new(ScenarioConfig { num_fakes: 2_000, ..ScenarioConfig::default() })
        .run(&host, 42);
    let rejecto = RejectoConfig { k_factor: 2.5, max_kl_passes: 8, ..RejectoConfig::default() };
    for &workers in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("maar_solve_4k_nodes", workers),
            &workers,
            |b, &workers| {
                let solver = DistributedMaar::new(
                    ClusterConfig { num_workers: workers, ..ClusterConfig::default() },
                    rejecto.clone(),
                );
                b.iter(|| black_box(solver.solve(&sim.graph)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generators, bench_metrics, bench_simulator, bench_distributed);
criterion_main!(benches);
