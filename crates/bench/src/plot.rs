//! A minimal SVG line-chart renderer, so the harness regenerates actual
//! figure files (`results/*.svg`) and not just tables.
//!
//! Deliberately tiny: multi-series line charts with axes, ticks, labels,
//! and a legend — exactly what the paper's precision/recall and AUC plots
//! need. No external dependencies.

use std::fmt::Write as _;

/// One named line series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; rendered in the given order.
    pub points: Vec<(f64, f64)>,
}

/// Chart-level options.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartConfig {
    /// Title printed above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Fixed y range; `None` auto-scales to the data (padded).
    pub y_range: Option<(f64, f64)>,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            y_range: Some((0.0, 1.0)),
            width: 640,
            height: 420,
        }
    }
}

const COLORS: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Formats an axis tick without trailing float noise.
fn tick_label(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e7 {
        format!("{}", v.round() as i64)
    } else {
        let s = format!("{v:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Renders the chart to an SVG document string.
///
/// # Panics
///
/// Panics if no series contains a finite point.
pub fn render(config: &ChartConfig, series: &[Series]) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    assert!(!pts.is_empty(), "nothing to plot");

    let (x_min, x_max) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| (lo.min(x), hi.max(x)));
    let (x_min, x_max) = if x_min == x_max { (x_min - 0.5, x_max + 0.5) } else { (x_min, x_max) };
    let (y_min, y_max) = config.y_range.unwrap_or_else(|| {
        let (lo, hi) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
        let pad = ((hi - lo) * 0.08).max(1e-9);
        (lo - pad, hi + pad)
    });

    let (w, h) = (config.width as f64, config.height as f64);
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = move |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        config.width, config.height
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        w / 2.0,
        esc(&config.title)
    );

    // Axes frame and ticks.
    let _ = writeln!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
    );
    let ticks = 5usize;
    for i in 0..=ticks {
        let fx = x_min + (x_max - x_min) * i as f64 / ticks as f64;
        let px = sx(fx);
        let _ = writeln!(
            svg,
            r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#ccc"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 16.0,
            tick_label(fx)
        );
        let fy = y_min + (y_max - y_min) * i as f64 / ticks as f64;
        let py = sy(fy);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#ccc"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            py + 4.0,
            tick_label(fy)
        );
    }
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        esc(&config.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(&config.y_label)
    );

    // Series.
    for (si, s) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y.clamp(y_min, y_max))))
            .collect();
        if path.len() > 1 {
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
        }
        for p in &path {
            let (px, py) = p.split_once(',').expect("formatted pair");
            let _ = writeln!(svg, r#"<circle cx="{px}" cy="{py}" r="3" fill="{color}"/>"#);
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + 18.0 * si as f64;
        let lx = MARGIN_L + plot_w - 130.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            esc(&s.name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "Rejecto".to_string(),
                points: vec![(5.0, 0.99), (25.0, 0.99), (50.0, 1.0)],
            },
            Series {
                name: "VoteTrust".to_string(),
                points: vec![(5.0, 0.86), (25.0, 0.92), (50.0, 0.94)],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let cfg = ChartConfig { title: "Fig 9".into(), ..Default::default() };
        let svg = render(&cfg, &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Rejecto") && svg.contains("VoteTrust"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let cfg = ChartConfig { title: "a < b & c".into(), ..Default::default() };
        let svg = render(&cfg, &demo_series());
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn clamps_out_of_range_points() {
        let cfg = ChartConfig { y_range: Some((0.0, 1.0)), ..Default::default() };
        let series = vec![Series { name: "s".into(), points: vec![(0.0, -0.5), (1.0, 2.0)] }];
        let svg = render(&cfg, &series);
        // No y coordinate outside the plot area (36..=372 at default size).
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((36.0..=372.01).contains(&y), "point escaped plot area: {y}");
        }
    }

    #[test]
    fn single_x_value_does_not_divide_by_zero() {
        let series = vec![Series { name: "s".into(), points: vec![(3.0, 0.5), (3.0, 0.6)] }];
        let svg = render(&ChartConfig::default(), &series);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(tick_label(5.0), "5");
        assert_eq!(tick_label(0.25), "0.25");
        assert_eq!(tick_label(0.30000000004), "0.3");
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn refuses_empty_input() {
        let _ = render(&ChartConfig::default(), &[]);
    }
}
