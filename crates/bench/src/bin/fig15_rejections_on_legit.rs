//! Figure 15: precision/recall as a function of the number of rejections
//! cast **on legitimate users** by fakes (16K–160K at paper scale):
//! legitimate users' requests to the spamming region, all rejected.
//! Rejections from legit to fakes stay fixed at ≈140K (10K fakes × 20
//! requests × 0.7).
//!
//! Expected shape (paper): Rejecto tolerates up to ≈120K added rejections,
//! then collapses abruptly near 140K — the point where legitimate users
//! carry as many rejections as the spammers and the two regions become
//! indistinguishable by acceptance rate. VoteTrust degrades almost
//! linearly throughout.

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig15_rejections_on_legit");
    let xs: Vec<f64> = (1..=10).map(|i| (h.n(16_000) * i) as f64).collect();
    let rows = sweep(&h, Surrogate::Facebook, "rejections_on_legit", &xs, |x| ScenarioConfig {
        legit_requests_rejected_by_fakes: x as u64,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("rejections_on_legit", &rows), &rows);
}
