//! Ablation (§IV-D): granularity of the geometric `k` sweep vs detection
//! accuracy and cost.
//!
//! Theorem 1 guarantees the MAAR cut is found at `k = k*`; the sweep only
//! approximates `k*` to within one geometric step. Coarser sweeps run
//! fewer KL solves but may land the winning `k` farther from `k*`.

use bench::{Harness, PipelineConfig};
use rejecto::pipeline;
use serde::Serialize;
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct Row {
    k_factor: f64,
    sweep_len: usize,
    precision: f64,
    seconds: f64,
}

fn main() {
    let h = Harness::from_env("ablation_ksweep");
    let host = h.host(Surrogate::Facebook);
    let sim = h.simulate(&host, ScenarioConfig::default());
    let budget = sim.fakes.len();

    let mut rows = Vec::new();
    for k_factor in [1.2, 1.5, 2.0, 3.0, 5.0] {
        let mut cfg = PipelineConfig::default();
        cfg.rejecto.k_factor = k_factor;
        let sweep_len = cfg.rejecto.k_sweep().len();
        let t0 = Instant::now();
        let suspects = pipeline::rejecto_suspects(&sim, &cfg, budget);
        let seconds = t0.elapsed().as_secs_f64();
        let precision = pipeline::precision(&suspects, &sim.is_fake);
        eprintln!("  factor {k_factor}: sweep {sweep_len} precision {precision:.4} in {seconds:.2}s");
        rows.push(Row { k_factor, sweep_len, precision, seconds });
    }

    let mut t = eval::table::Table::new(["k_factor", "sweep_len", "precision", "time(s)"]);
    for r in &rows {
        t.row([
            format!("{}", r.k_factor),
            r.sweep_len.to_string(),
            eval::table::fnum(r.precision),
            format!("{:.2}", r.seconds),
        ]);
    }
    h.emit(&t, &rows);
}
