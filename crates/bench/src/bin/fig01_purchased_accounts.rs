//! Figure 1: the numbers of friends and pending requests on the purchased
//! fake accounts — the measurement that motivates the whole system (even
//! well-maintained fakes carry a heavy pending-request load).
//!
//! Our synthetic study population is drawn to match the paper's reported
//! envelope: 43 accounts, each ≥50 friends and ≥1 year old, pending
//! fraction per account in [16.7%, 67.9%], aggregate 2,804 friends and
//! 2,065 pending (ours matches in expectation; see DESIGN.md §3).

use bench::Harness;
use serde::Serialize;
use simulator::{PurchasedStudy, PurchasedStudyConfig};

#[derive(Debug, Clone, Serialize)]
struct Row {
    account: u32,
    friends: u32,
    pending: u32,
    pending_fraction: f64,
}

fn main() {
    let h = Harness::from_env("fig01_purchased_accounts");
    let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), h.seed);
    let rows: Vec<Row> = study
        .accounts
        .iter()
        .map(|a| Row {
            account: a.id,
            friends: a.friends,
            pending: a.pending,
            pending_fraction: a.pending_fraction(),
        })
        .collect();

    let mut t = eval::table::Table::new(["account", "friends", "pending", "pending_frac"]);
    for r in &rows {
        t.row([
            r.account.to_string(),
            r.friends.to_string(),
            r.pending.to_string(),
            eval::table::fnum(r.pending_fraction),
        ]);
    }
    println!(
        "totals: friends {} pending {} (paper: 2804 / 2065)",
        study.total_friends(),
        study.total_pending()
    );
    h.emit(&t, &rows);
}
