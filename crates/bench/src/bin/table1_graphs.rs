//! Table I: the social graphs used in the simulation — nodes, edges,
//! average clustering coefficient, and diameter, for every surrogate,
//! side by side with the statistics the paper reports for the original
//! datasets.
//!
//! The diameter column reports the iterated double-sweep lower bound on
//! the largest component (exact on these small-world graphs in practice).
//! Synthetic generators produce tighter small worlds than the crawled
//! originals, so surrogate diameters land below the paper's (see
//! EXPERIMENTS.md for the discussion).

use bench::Harness;
use serde::Serialize;
use socialgraph::surrogates::Surrogate;
use socialgraph::{metrics, NodeId};

#[derive(Debug, Clone, Serialize)]
struct Row {
    graph: String,
    nodes: usize,
    edges: u64,
    clustering: f64,
    diameter_lb: u32,
    paper_nodes: usize,
    paper_edges: u64,
    paper_clustering: f64,
    paper_diameter: u32,
}

fn main() {
    let h = Harness::from_env("table1_graphs");
    let mut rows = Vec::new();
    for s in Surrogate::ALL {
        let g = h.host(s);
        let cc = metrics::average_clustering(&g);
        let comp = metrics::largest_component(&g);
        let start = comp.first().copied().unwrap_or(NodeId(0));
        let diam = metrics::pseudo_diameter(&g, start, 6);
        let p = s.paper_stats();
        eprintln!("  [{}] n={} m={} cc={cc:.4} diam>={diam}", s.name(), g.num_nodes(), g.num_edges());
        rows.push(Row {
            graph: s.name().to_string(),
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            clustering: cc,
            diameter_lb: diam,
            paper_nodes: p.nodes,
            paper_edges: p.edges,
            paper_clustering: p.clustering,
            paper_diameter: p.diameter,
        });
    }
    let mut t = eval::table::Table::new([
        "graph",
        "nodes",
        "edges",
        "clustering",
        "diam(lb)",
        "paper:nodes",
        "paper:edges",
        "paper:cc",
        "paper:diam",
    ]);
    for r in &rows {
        t.row([
            r.graph.clone(),
            r.nodes.to_string(),
            r.edges.to_string(),
            eval::table::fnum(r.clustering),
            r.diameter_lb.to_string(),
            r.paper_nodes.to_string(),
            r.paper_edges.to_string(),
            eval::table::fnum(r.paper_clustering),
            r.paper_diameter.to_string(),
        ]);
    }
    h.emit(&t, &rows);
}
