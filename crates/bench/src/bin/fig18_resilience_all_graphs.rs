//! Figure 18 (appendix B): the three attack-strategy sweeps of §VI-C
//! repeated on the six non-Facebook graphs — per graph: (a) collusion,
//! (b) self-rejection, (c) legitimate users' requests rejected by Sybils.
//!
//! Expected shape (paper): "similar trends" to Figures 13–15 on every
//! graph. Coarser default grid; set `REJECTO_POINTS` to densify.

use bench::{comparison_table, sweep, ComparisonRow, Harness};
use simulator::{ScenarioConfig, SelfRejectionConfig};
use socialgraph::surrogates::Surrogate;

fn points(default: usize) -> usize {
    std::env::var("REJECTO_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64).collect()
}

fn main() {
    let h = Harness::from_env("fig18_resilience_all_graphs");
    let n = points(5);
    let whitewashed = h.n(5_000);
    let mut all: Vec<ComparisonRow> = Vec::new();

    for graph in Surrogate::APPENDIX {
        eprintln!("=== {} ===", graph.name());
        // (a) collusion: intra-fake accepted requests per fake.
        let xs = grid(0.0, 40.0, n).iter().map(|x| x.round()).collect::<Vec<_>>();
        all.extend(sweep(&h, graph, "collusion_edges", &xs, |x| ScenarioConfig {
            fake_intra_edges: x as usize,
            ..ScenarioConfig::default()
        }));
        // (b) self-rejection rate.
        let rates = grid(0.05, 0.95, n);
        all.extend(sweep(&h, graph, "self_rejection", &rates, |x| ScenarioConfig {
            self_rejection: Some(SelfRejectionConfig {
                whitewashed,
                requests_per_sender: 20,
                rejection_rate: x,
            }),
            ..ScenarioConfig::default()
        }));
        // (c) rejections cast on legitimate users (16K–160K at paper scale).
        let counts = grid(h.n(16_000) as f64, h.n(160_000) as f64, n);
        all.extend(sweep(&h, graph, "rejections_on_legit", &counts, |x| ScenarioConfig {
            legit_requests_rejected_by_fakes: x as u64,
            ..ScenarioConfig::default()
        }));
    }
    h.emit(&comparison_table("x", &all), &all);
}
