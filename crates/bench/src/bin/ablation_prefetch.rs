//! Ablation (§V): the master's prefetch buffer — batch size and LRU
//! capacity vs simulated master↔worker traffic and wall time.
//!
//! The paper's claim: fetching per-node on demand incurs prohibitive
//! network I/O; prefetching the bucket list's top-gain nodes in batches
//! removes round trips. `batch=1, capacity=1` approximates the naive
//! implementation.

use bench::Harness;
use dataflow::{ClusterConfig, DistributedMaar};
use rejecto_core::RejectoConfig;
use serde::Serialize;
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

#[derive(Debug, Clone, Serialize)]
struct Row {
    batch: usize,
    capacity: usize,
    fetch_batches: u64,
    nodes_fetched: u64,
    buffer_hits: u64,
    seconds: f64,
}

fn main() {
    let h = Harness::from_env("ablation_prefetch");
    let host = h.host(Surrogate::Facebook);
    let sim = h.simulate(&host, ScenarioConfig::default());
    let rejecto = RejectoConfig { k_factor: 2.5, max_kl_passes: 8, ..RejectoConfig::default() };

    let variants: Vec<(usize, usize)> = vec![
        (1, 1),          // naive: on-demand, no reuse
        (1, 1 << 16),    // cache without batching
        (64, 1 << 16),
        (256, 1 << 16),  // default
        (1024, 1 << 16),
        (256, 1 << 10),  // small buffer, eviction pressure
    ];

    let mut rows = Vec::new();
    let mut baseline_suspects: Option<Vec<rejection::NodeId>> = None;
    for (batch, capacity) in variants {
        let cfg = ClusterConfig {
            prefetch_batch: batch,
            buffer_capacity: capacity,
            num_workers: 4,
            ..ClusterConfig::default()
        };
        let out = DistributedMaar::new(cfg, rejecto.clone())
            .solve(&sim.graph)
            .expect("healthy cluster must solve");
        // The buffer is an optimization: every variant must find the same cut.
        match &baseline_suspects {
            None => baseline_suspects = Some(out.suspects.clone()),
            Some(b) => assert_eq!(b, &out.suspects, "buffering changed the cut"),
        }
        eprintln!(
            "  batch={batch} cap={capacity}: batches {} fetched {} hits {} in {:.2?}",
            out.io.fetch_batches, out.io.nodes_fetched, out.io.buffer_hits, out.elapsed
        );
        rows.push(Row {
            batch,
            capacity,
            fetch_batches: out.io.fetch_batches,
            nodes_fetched: out.io.nodes_fetched,
            buffer_hits: out.io.buffer_hits,
            seconds: out.elapsed.as_secs_f64(),
        });
    }

    let mut t = eval::table::Table::new([
        "batch", "capacity", "fetch_batches", "nodes_fetched", "buffer_hits", "time(s)",
    ]);
    for r in &rows {
        t.row([
            r.batch.to_string(),
            r.capacity.to_string(),
            r.fetch_batches.to_string(),
            r.nodes_fetched.to_string(),
            r.buffer_hits.to_string(),
            format!("{:.2}", r.seconds),
        ]);
    }
    h.emit(&t, &rows);
}
