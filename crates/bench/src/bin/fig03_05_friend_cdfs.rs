//! Figures 3–5: CDFs of the friend accounts of the purchased fakes, with
//! respect to (3) their social-graph degree, (4) wall posts and the likes
//! and comments on them, and (5) photos and the likes and comments on
//! them.
//!
//! Each curve is summarized at its quartiles plus the tail probability the
//! paper calls out (friends with degree > 1000).

use bench::Harness;
use eval::Cdf;
use serde::Serialize;
use simulator::{PurchasedStudy, PurchasedStudyConfig};

#[derive(Debug, Clone, Serialize)]
struct Row {
    attribute: String,
    p25: f64,
    p50: f64,
    p75: f64,
    p95: f64,
    max: f64,
}

fn summarize(name: &str, samples: Vec<f64>) -> (Row, Cdf) {
    let cdf = Cdf::from_samples(samples);
    let row = Row {
        attribute: name.to_string(),
        p25: cdf.quantile(0.25),
        p50: cdf.quantile(0.50),
        p75: cdf.quantile(0.75),
        p95: cdf.quantile(0.95),
        max: cdf.quantile(1.0),
    };
    (row, cdf)
}

fn main() {
    let h = Harness::from_env("fig03_05_friend_cdfs");
    let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), h.seed);
    let profiles: Vec<_> = study.all_friend_profiles().collect();

    let attributes: Vec<(&str, Vec<f64>)> = vec![
        ("degree", profiles.iter().map(|p| p.degree as f64).collect()),
        ("posts", profiles.iter().map(|p| p.posts as f64).collect()),
        ("post_likes", profiles.iter().map(|p| p.post_likes as f64).collect()),
        ("post_comments", profiles.iter().map(|p| p.post_comments as f64).collect()),
        ("photos", profiles.iter().map(|p| p.photos as f64).collect()),
        ("photo_likes", profiles.iter().map(|p| p.photo_likes as f64).collect()),
        ("photo_comments", profiles.iter().map(|p| p.photo_comments as f64).collect()),
    ];

    let mut rows = Vec::new();
    let mut degree_tail = 0.0;
    for (name, samples) in attributes {
        let (row, cdf) = summarize(name, samples);
        if name == "degree" {
            degree_tail = 1.0 - cdf.eval(1_000.0);
        }
        rows.push(row);
    }

    let mut t = eval::table::Table::new(["attribute", "p25", "p50", "p75", "p95", "max"]);
    for r in &rows {
        t.row([
            r.attribute.clone(),
            eval::table::fnum(r.p25),
            eval::table::fnum(r.p50),
            eval::table::fnum(r.p75),
            eval::table::fnum(r.p95),
            eval::table::fnum(r.max),
        ]);
    }
    println!(
        "friends with social degree > 1000: {:.2}% (paper: a visible tail, \"some of the friends\")",
        degree_tail * 100.0
    );
    h.emit(&t, &rows);
}
