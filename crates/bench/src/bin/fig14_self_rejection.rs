//! Figure 14: resilience to the self-rejection whitewashing strategy —
//! precision/recall as a function of the rejection rate of intra-fake
//! requests (0.05–0.95). Half of the fakes are whitewashed (they keep
//! spamming but reject internal requests from the sacrificed half, which
//! sends no spam).
//!
//! Expected shape (paper): Rejecto stays high with a slight dip where the
//! crafted internal cut's ratio approaches the true spammer/legitimate
//! ratio (self-rejection rate ≈ 0.7, the spam rejection rate); above that
//! the iterative pruning catches the sacrificed senders first and the
//! whitewashed spammers next. VoteTrust starts around 0.5 (the sacrificed
//! fakes' internal requests are all accepted, so they look clean) and
//! improves as the internal rejections hurt their individual ratings.

use bench::{comparison_table, sweep, Harness};
use simulator::{ScenarioConfig, SelfRejectionConfig};
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig14_self_rejection");
    let whitewashed = h.n(5_000);
    let xs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let rows = sweep(&h, Surrogate::Facebook, "self_rejection_rate", &xs, |x| ScenarioConfig {
        self_rejection: Some(SelfRejectionConfig {
            whitewashed,
            requests_per_sender: 20,
            rejection_rate: x,
        }),
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("self_rejection_rate", &rows), &rows);
}
