//! Figure 16: defense in depth — area under SybilRank's ROC curve as a
//! function of the number of accounts removed by Rejecto (0–5K at paper
//! scale), on the Facebook and ca-AstroPh surrogates.
//!
//! Setup (paper §VI-D): 10K Sybils, of which 5K send 20 spam requests each
//! at 70% rejection. Rejecto removes its top-N suspects with their links;
//! SybilRank ranks the sterilized graph.
//!
//! Expected shape (paper): the AUC climbs with the number of removed
//! accounts, approaching 1 at 5K removals — removing the spammers removes
//! most attack edges, leaving the silent Sybil community exposed.

use bench::{Harness, PipelineConfig};
use rejecto::pipeline;
use serde::Serialize;
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

#[derive(Debug, Clone, Serialize)]
struct Row {
    graph: String,
    removed: usize,
    auc: f64,
}

fn main() {
    let h = Harness::from_env("fig16_defense_in_depth");
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    for graph in [Surrogate::Facebook, Surrogate::CaAstroPh] {
        let host = h.host(graph);
        let sim = h.simulate(
            &host,
            ScenarioConfig { spammer_fraction: 0.5, ..ScenarioConfig::default() },
        );
        for i in 0..=5 {
            let removed = h.n(1_000) * i;
            let auc = pipeline::defense_in_depth(&sim, &cfg, removed);
            eprintln!("  [{}] removed={removed}: AUC {auc:.4}", graph.name());
            rows.push(Row { graph: graph.name().to_string(), removed, auc });
        }
    }
    let mut t = eval::table::Table::new(["graph", "removed", "sybilrank_auc"]);
    for r in &rows {
        t.row([r.graph.clone(), r.removed.to_string(), eval::table::fnum(r.auc)]);
    }
    h.emit(&t, &rows);
}
