//! Figure 13: resilience to collusion — precision/recall as a function of
//! the number of accepted intra-fake ("non-attack") edges per fake account
//! (0–40). At 40 edges each fake's individual rejection ratio drops from
//! 70% to ≈23%.
//!
//! Expected shape (paper): Rejecto is flat — edges among colluders never
//! enter the aggregate acceptance rate of the cross-region cut. VoteTrust
//! degrades as collusion densifies, because its rating is a per-user
//! acceptance average that accepted intra-fake requests dilute.

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig13_collusion");
    let xs: Vec<f64> = (0..=8).map(|i| (i * 5) as f64).collect();
    let rows = sweep(&h, Surrogate::Facebook, "intra_edges_per_fake", &xs, |x| ScenarioConfig {
        fake_intra_edges: x as usize,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("intra_edges_per_fake", &rows), &rows);
}
