//! Figure 12: precision/recall as a function of the rejection rate of
//! requests **among legitimate users** (0.05–0.95), spam rejection fixed
//! at 0.7.
//!
//! Expected shape (paper): both schemes degrade as the legitimate rejection
//! rate climbs toward the spam rejection rate — the rejection-rate gap that
//! separates the populations shrinks to nothing.

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig12_legit_rejection_rate");
    let xs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let rows = sweep(&h, Surrogate::Facebook, "legit_rejection_rate", &xs, |x| ScenarioConfig {
        legit_rejection_rate: x,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("legit_rejection_rate", &rows), &rows);
}
