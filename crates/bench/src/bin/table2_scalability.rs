//! Table II: Rejecto's execution time against input graph size on the
//! distributed runtime (the paper: 0.5M–10M users on a 5-node Spark/EC2
//! cluster with 300 GB aggregate RAM).
//!
//! We run the same solve — a geometric-`k` MAAR sweep with the §V data
//! layout (master: status + gains + bucket list; workers: sharded
//! adjacency; prefetch through an LRU buffer) — on in-process worker
//! threads. Sizes scale with `--scale` (1.0 reproduces the paper's row
//! sizes; the default harness run uses a laptop-friendly scale and the
//! near-linear trend is the claim under test). Simulated master↔worker
//! traffic is reported alongside wall time.

use bench::Harness;
use dataflow::{ClusterConfig, DistributedMaar};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto_core::RejectoConfig;
use serde::Serialize;
use simulator::{Scenario, ScenarioConfig};
use socialgraph::generators::BarabasiAlbert;

#[derive(Debug, Clone, Serialize)]
struct Row {
    users: usize,
    edges: u64,
    rejections: u64,
    workers: usize,
    seconds: f64,
    fetch_batches: u64,
    nodes_fetched: u64,
    worker_restarts: u64,
    shards_rebalanced: u64,
    suspects: usize,
}

fn main() {
    let h = Harness::from_env("table2_scalability");
    // Paper sizes: 0.5M, 1M, 2M, 5M, 10M users at ~16 edges/user.
    let paper_users = [500_000usize, 1_000_000, 2_000_000, 5_000_000, 10_000_000];
    // A shorter sweep keeps per-size runs comparable to the paper's single
    // detection pass; the trend across sizes is what the table shows.
    let rejecto = RejectoConfig { k_factor: 2.5, max_kl_passes: 8, ..RejectoConfig::default() };

    let mut rows = Vec::new();
    for users in paper_users {
        let n = h.n(users);
        if n < 1_000 {
            continue;
        }
        // ~90% legit / 10% fakes, average degree ≈ 16 like the paper's
        // edge budget.
        let legit = n * 9 / 10;
        let fakes = n - legit;
        let mut rng = ChaCha8Rng::seed_from_u64(h.seed);
        let host = BarabasiAlbert::new(legit, 8).generate(&mut rng);
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: fakes,
            ..ScenarioConfig::default()
        })
        .run(&host, h.seed);

        // The paper provisions the master's memory to the graph ("provided
        // that the aggregate memory of the cluster suffices"); size the
        // prefetch buffer accordingly so Table II measures scaling, not
        // buffer thrash (the ablation_prefetch harness studies constrained
        // buffers).
        let cluster = ClusterConfig {
            num_workers: 4,
            prefetch_batch: 512,
            buffer_capacity: n.max(1024),
            ..ClusterConfig::default()
        };
        let solver = DistributedMaar::new(cluster, rejecto.clone());
        let out = solver.solve(&sim.graph).expect("healthy cluster must solve");
        eprintln!(
            "  users={n} edges={} time={:.2?} batches={} fetched={}",
            sim.graph.num_friendships(),
            out.elapsed,
            out.io.fetch_batches,
            out.io.nodes_fetched
        );
        rows.push(Row {
            users: n,
            edges: sim.graph.num_friendships(),
            rejections: sim.graph.num_rejections(),
            workers: cluster.num_workers,
            seconds: out.elapsed.as_secs_f64(),
            fetch_batches: out.io.fetch_batches,
            nodes_fetched: out.io.nodes_fetched,
            worker_restarts: out.io.worker_restarts,
            shards_rebalanced: out.io.shards_rebalanced,
            suspects: out.suspects.len(),
        });
    }
    let mut t = eval::table::Table::new([
        "users", "edges", "rejections", "workers", "time(s)", "fetch_batches", "nodes_fetched",
    ]);
    for r in &rows {
        t.row([
            r.users.to_string(),
            r.edges.to_string(),
            r.rejections.to_string(),
            r.workers.to_string(),
            format!("{:.2}", r.seconds),
            r.fetch_batches.to_string(),
            r.nodes_fetched.to_string(),
        ]);
    }
    h.emit(&t, &rows);
}
