//! Ablation: KL warm start — all-legit initialization vs the
//! rejection-ratio warm start (DESIGN.md §6).
//!
//! The warm start should not change what the sweep converges to (the cut
//! is selected by acceptance rate), but it shortens the first pass.

use bench::{Harness, PipelineConfig};
use rejecto::pipeline;
use rejecto_core::InitialPlacement;
use serde::Serialize;
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct Row {
    init: String,
    precision: f64,
    seconds: f64,
}

fn main() {
    let h = Harness::from_env("ablation_init");
    let host = h.host(Surrogate::Facebook);
    let sim = h.simulate(&host, ScenarioConfig::default());
    let budget = sim.fakes.len();

    let variants = vec![
        ("all-legit", InitialPlacement::AllLegit),
        ("ratio>=0.3", InitialPlacement::RejectionRatio(0.3)),
        ("ratio>=0.5 (default)", InitialPlacement::RejectionRatio(0.5)),
        ("ratio>=0.7", InitialPlacement::RejectionRatio(0.7)),
    ];

    let mut rows = Vec::new();
    for (name, init) in variants {
        let mut cfg = PipelineConfig::default();
        cfg.rejecto.initial_placement = init;
        let t0 = Instant::now();
        let suspects = pipeline::rejecto_suspects(&sim, &cfg, budget);
        let seconds = t0.elapsed().as_secs_f64();
        let precision = pipeline::precision(&suspects, &sim.is_fake);
        eprintln!("  {name}: precision {precision:.4} in {seconds:.2}s");
        rows.push(Row { init: name.to_string(), precision, seconds });
    }

    let mut t = eval::table::Table::new(["init", "precision", "time(s)"]);
    for r in &rows {
        t.row([r.init.clone(), eval::table::fnum(r.precision), format!("{:.2}", r.seconds)]);
    }
    h.emit(&t, &rows);
}
