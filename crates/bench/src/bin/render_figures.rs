//! Renders SVG figures from the JSON rows the experiment harnesses wrote
//! under `results/` — run the harnesses (or `./run_experiments.sh`) first,
//! then:
//!
//! ```sh
//! cargo run --release -p bench --bin render_figures
//! ```
//!
//! Produces `results/<figure>.svg` for every comparison figure present
//! plus the defense-in-depth and scalability plots.

use bench::plot::{render, ChartConfig, Series};
use serde_json::Value;
use std::path::Path;

fn read_rows(path: &Path) -> Option<Vec<Value>> {
    let data = std::fs::read_to_string(path).ok()?;
    Some(data.lines().filter_map(|l| serde_json::from_str(l).ok()).collect())
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

/// Builds Rejecto/VoteTrust series per (graph, x_label) group.
fn comparison_series(rows: &[Value]) -> Vec<(String, Vec<Series>)> {
    let mut groups: Vec<(String, String)> = Vec::new();
    for r in rows {
        let g = r["graph"].as_str().unwrap_or("?").to_string();
        let xl = r["x_label"].as_str().unwrap_or("x").to_string();
        if !groups.contains(&(g.clone(), xl.clone())) {
            groups.push((g, xl));
        }
    }
    groups
        .into_iter()
        .map(|(g, xl)| {
            let mut rj = Vec::new();
            let mut vt = Vec::new();
            for r in rows {
                if r["graph"].as_str() == Some(&g) && r["x_label"].as_str() == Some(&xl) {
                    if let (Some(x), Some(a), Some(b)) =
                        (num(r, "x"), num(r, "rejecto"), num(r, "votetrust"))
                    {
                        rj.push((x, a));
                        vt.push((x, b));
                    }
                }
            }
            let key = format!("{g}:{xl}");
            (
                key,
                vec![
                    Series { name: "Rejecto".into(), points: rj },
                    Series { name: "VoteTrust".into(), points: vt },
                ],
            )
        })
        .collect()
}

fn write_svg(out_dir: &Path, stem: &str, cfg: &ChartConfig, series: &[Series]) {
    if series.iter().all(|s| s.points.is_empty()) {
        return;
    }
    let svg = render(cfg, series);
    let path = out_dir.join(format!("{stem}.svg"));
    if let Err(e) = rejecto_core::store::atomic_write(&path, svg.as_bytes()) {
        eprintln!("render_figures: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("results");
    let singles = [
        ("fig09_request_volume", "requests per fake account"),
        ("fig10_half_spammers", "requests per fake account (half spam)"),
        ("fig11_spam_rejection_rate", "rejection rate of spam requests"),
        ("fig12_legit_rejection_rate", "rejection rate of legitimate requests"),
        ("fig13_collusion", "non-attack edges per fake account"),
        ("fig14_self_rejection", "self-rejection rate among fake accounts"),
        ("fig15_rejections_on_legit", "rejections cast on legitimate users"),
    ];
    for (stem, x_label) in singles {
        let Some(rows) = read_rows(&dir.join(format!("{stem}.json"))) else { continue };
        for (key, series) in comparison_series(&rows) {
            let cfg = ChartConfig {
                title: format!("{stem} [{key}]"),
                x_label: x_label.to_string(),
                y_label: "precision / recall".to_string(),
                ..Default::default()
            };
            let suffix = key.replace([':', '/'], "_");
            write_svg(dir, &format!("{stem}_{suffix}"), &cfg, &series);
        }
    }

    // Appendix sweeps: one SVG per (graph, scenario).
    for stem in ["fig17_sensitivity_all_graphs", "fig18_resilience_all_graphs"] {
        let Some(rows) = read_rows(&dir.join(format!("{stem}.json"))) else { continue };
        for (key, series) in comparison_series(&rows) {
            let cfg = ChartConfig {
                title: key.clone(),
                x_label: key.split(':').nth(1).unwrap_or("x").to_string(),
                y_label: "precision / recall".to_string(),
                ..Default::default()
            };
            let suffix = key.replace([':', '/'], "_");
            write_svg(dir, &format!("{stem}_{suffix}"), &cfg, &series);
        }
    }

    // Fig 16: AUC vs removed, one series per graph.
    if let Some(rows) = read_rows(&dir.join("fig16_defense_in_depth.json")) {
        let mut graphs: Vec<String> = Vec::new();
        for r in &rows {
            let g = r["graph"].as_str().unwrap_or("?").to_string();
            if !graphs.contains(&g) {
                graphs.push(g);
            }
        }
        let series: Vec<Series> = graphs
            .iter()
            .map(|g| Series {
                name: g.clone(),
                points: rows
                    .iter()
                    .filter(|r| r["graph"].as_str() == Some(g))
                    .filter_map(|r| Some((num(r, "removed")?, num(r, "auc")?)))
                    .collect(),
            })
            .collect();
        let cfg = ChartConfig {
            title: "Fig 16: SybilRank AUC vs accounts removed by Rejecto".into(),
            x_label: "accounts removed".into(),
            y_label: "area under ROC curve".into(),
            y_range: Some((0.5, 1.0)),
            ..Default::default()
        };
        write_svg(dir, "fig16_defense_in_depth", &cfg, &series);
    }

    // Table II: time vs users (log-ish by plotting raw values).
    if let Some(rows) = read_rows(&dir.join("table2_scalability.json")) {
        let series = vec![Series {
            name: "Rejecto (distributed)".into(),
            points: rows
                .iter()
                .filter_map(|r| Some((num(r, "users")?, num(r, "seconds")?)))
                .collect(),
        }];
        let cfg = ChartConfig {
            title: "Table II: execution time vs graph size".into(),
            x_label: "users".into(),
            y_label: "seconds".into(),
            y_range: None,
            ..Default::default()
        };
        write_svg(dir, "table2_scalability", &cfg, &series);
    }
}
