//! Extension experiment (§VIII related work): Rejecto vs the two
//! rejection-aware per-user baselines — VoteTrust and SybilFence — under
//! increasing collusion.
//!
//! The paper's argument: schemes built on *individual* rejection signals
//! (VoteTrust's per-user rating, SybilFence's per-user edge discounting)
//! are manipulable, because accepted intra-fake requests dilute each fake
//! account's individual rejection load; the aggregate acceptance rate of
//! the cross-region cut cannot be diluted that way. This harness sweeps
//! the collusion axis and scores all three schemes with the same
//! declare-the-fake-count protocol.

use bench::{Harness, PipelineConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto::pipeline;
use serde::Serialize;
use simulator::{sample_seeds, ScenarioConfig};
use socialgraph::surrogates::Surrogate;
use socialgraph::NodeId;
use sybilrank::{SybilFence, SybilFenceConfig};

#[derive(Debug, Clone, Serialize)]
struct Row {
    axis: String,
    x: usize,
    rejecto: f64,
    votetrust: f64,
    sybilfence: f64,
}

fn sybilfence_suspects(
    sim: &simulator::SimOutput,
    cfg: &PipelineConfig,
    budget: usize,
) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (legit, _) = sample_seeds(sim, cfg.num_legit_seeds.max(1), 0, &mut rng);
    let result = SybilFence::new(SybilFenceConfig::default()).rank(&sim.graph, &legit);
    let mut idx: Vec<usize> = (0..sim.graph.num_nodes()).collect();
    idx.sort_by(|&a, &b| {
        result.scores()[a]
            .partial_cmp(&result.scores()[b])
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    idx.into_iter().take(budget).map(NodeId::from_index).collect()
}

fn main() {
    let h = Harness::from_env("ext_baselines");
    let host = h.host(Surrogate::Facebook);
    let cfg = PipelineConfig::default();

    let mut rows = Vec::new();
    let measure = |axis: &str, x: usize, scenario: ScenarioConfig, rows: &mut Vec<Row>| {
        let sim = h.simulate(&host, scenario);
        let budget = sim.fakes.len();
        let rj = pipeline::precision(&pipeline::rejecto_suspects(&sim, &cfg, budget), &sim.is_fake);
        let vt =
            pipeline::precision(&pipeline::votetrust_suspects(&sim, &cfg, budget), &sim.is_fake);
        let sf = pipeline::precision(&sybilfence_suspects(&sim, &cfg, budget), &sim.is_fake);
        eprintln!("  {axis}={x}: rejecto {rj:.4} votetrust {vt:.4} sybilfence {sf:.4}");
        rows.push(Row { axis: axis.to_string(), x, rejecto: rj, votetrust: vt, sybilfence: sf });
    };

    // Axis 1: collusion. Intra-fake edges carry no trust from the seeds,
    // so graph-based rankers are unaffected; VoteTrust's per-user rating
    // dilutes.
    for intra in [0usize, 10, 20, 30, 40] {
        measure(
            "intra_edges",
            intra,
            ScenarioConfig { fake_intra_edges: intra, ..ScenarioConfig::default() },
            &mut rows,
        );
    }
    // Axis 2: attack-edge volume. Spam at a survivable 50% rejection rate:
    // every extra accepted request is an attack edge leaking trust into
    // the Sybil region — the regime where per-user trust propagation
    // drowns and the aggregate acceptance rate still separates cleanly
    // (0.5 vs the legitimate 0.8).
    for requests in [10usize, 20, 40, 80, 160] {
        measure(
            "requests@rej0.5",
            requests,
            ScenarioConfig {
                requests_per_spammer: requests,
                spam_rejection_rate: 0.5,
                ..ScenarioConfig::default()
            },
            &mut rows,
        );
    }

    let mut t = eval::table::Table::new(["axis", "x", "rejecto", "votetrust", "sybilfence"]);
    for r in &rows {
        t.row([
            r.axis.clone(),
            r.x.to_string(),
            eval::table::fnum(r.rejecto),
            eval::table::fnum(r.votetrust),
            eval::table::fnum(r.sybilfence),
        ]);
    }
    h.emit(&t, &rows);
}
