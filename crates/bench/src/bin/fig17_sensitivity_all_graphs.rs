//! Figure 17 (appendix A): the four sensitivity sweeps of §VI-B repeated
//! on the six non-Facebook graphs — per graph: (a) request volume with all
//! fakes spamming, (b) request volume with half spamming, (c) spam
//! rejection rate, (d) legitimate rejection rate.
//!
//! Expected shape (paper): "similar trends" to Figures 9–12 on every
//! graph. This is the long harness; the default point grid is coarser
//! than the single-graph figures (set `REJECTO_POINTS` to densify).

use bench::{comparison_table, sweep, ComparisonRow, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn points(default: usize) -> usize {
    std::env::var("REJECTO_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64).collect()
}

fn main() {
    let h = Harness::from_env("fig17_sensitivity_all_graphs");
    let n = points(5);
    let mut all: Vec<ComparisonRow> = Vec::new();

    for graph in Surrogate::APPENDIX {
        eprintln!("=== {} ===", graph.name());
        // (a) request volume, all fakes spam.
        let xs = grid(5.0, 50.0, n).iter().map(|x| x.round()).collect::<Vec<_>>();
        all.extend(sweep(&h, graph, "requests_all", &xs, |x| ScenarioConfig {
            requests_per_spammer: x as usize,
            ..ScenarioConfig::default()
        }));
        // (b) request volume, half of the fakes spam.
        all.extend(sweep(&h, graph, "requests_half", &xs, |x| ScenarioConfig {
            requests_per_spammer: x as usize,
            spammer_fraction: 0.5,
            ..ScenarioConfig::default()
        }));
        // (c) spam rejection rate.
        let rates = grid(0.1, 0.95, n);
        all.extend(sweep(&h, graph, "spam_rejection", &rates, |x| ScenarioConfig {
            spam_rejection_rate: x,
            ..ScenarioConfig::default()
        }));
        // (d) legitimate rejection rate.
        let rates = grid(0.05, 0.95, n);
        all.extend(sweep(&h, graph, "legit_rejection", &rates, |x| ScenarioConfig {
            legit_rejection_rate: x,
            ..ScenarioConfig::default()
        }));
    }
    h.emit(&comparison_table("x", &all), &all);
}
