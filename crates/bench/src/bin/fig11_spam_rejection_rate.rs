//! Figure 11: precision/recall as a function of the rejection rate of spam
//! requests (0.1–0.95; the paper reads 0.5–0.95 as the meaningful regime).
//!
//! Expected shape (paper): both schemes are weak when legitimate users
//! accept most spam; accuracy improves with the rejection rate, and
//! Rejecto detects almost everything once the rate reaches ≈0.6.

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig11_spam_rejection_rate");
    let xs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let rows = sweep(&h, Surrogate::Facebook, "spam_rejection_rate", &xs, |x| ScenarioConfig {
        spam_rejection_rate: x,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("spam_rejection_rate", &rows), &rows);
}
