//! Serial-vs-parallel wall time of the MAAR `k` sweep.
//!
//! The sweep solves one independent extended-KL run per `k`
//! (§IV-D / Theorem 1), so it parallelizes embarrassingly across the
//! worker pool behind `RejectoConfig::threads`. This harness times the
//! full iterative detection — the pipeline's hot path — at `threads = 1`
//! (the exact serial code path) and at a ladder of pool sizes up to the
//! machine's available parallelism, on the largest bundled scenario
//! (`--scale 1.0` is the 10k-user Facebook surrogate with 10k fakes;
//! `REJECTO_SCALE` shrinks it for quick runs).
//!
//! Every timed run's detection report is checked identical to the serial
//! one before its row is emitted: a speedup that changed the answer would
//! be a bug, not a result. Rows land in `results/sweep_scaling.json`.

use bench::Harness;
use rejecto_core::{Completion, DetectionReport, IterativeDetector, RejectoConfig, Seeds, Termination};
use serde::Serialize;
use simulator::SimOutput;
use socialgraph::surrogates::Surrogate;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct Row {
    users: usize,
    fakes: usize,
    sweep_len: usize,
    threads: usize,
    seconds: f64,
    speedup: f64,
    rounds: usize,
    suspects: usize,
}

fn detect(sim: &SimOutput, threads: usize, budget: usize) -> (DetectionReport, f64) {
    let config = RejectoConfig { threads, ..RejectoConfig::default() };
    let detector = IterativeDetector::new(config);
    let start = Instant::now();
    let report = detector.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(budget));
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let h = Harness::from_env("sweep_scaling");
    let host = h.host(Surrogate::Facebook);
    let sim = h.simulate(&host, simulator::ScenarioConfig::default());
    let budget = sim.fakes.len();
    let sweep_len = RejectoConfig::default().k_sweep().len();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Climb to at least 4 workers even on smaller boxes: oversubscribed
    // pools still exercise the deterministic reduction end-to-end (their
    // speedup column just reads ~1.0x there — the wall-clock claim is for
    // hosts with that many real cores).
    let mut ladder = vec![1usize];
    for t in [2, 4, 8, 16] {
        if t <= cores.max(4) && t <= sweep_len {
            ladder.push(t);
        }
    }
    if !ladder.contains(&cores) && cores <= sweep_len {
        ladder.push(cores);
    }

    let (serial_report, serial_secs) = detect(&sim, 1, budget);
    // A run truncated by a deadline or round budget would make every
    // speedup row meaningless; the default config carries no budgets, so
    // anything but Complete here is a harness bug.
    assert_eq!(
        serial_report.completion,
        Completion::Complete,
        "benchmark baseline returned a partial report: {:?}",
        serial_report.completion
    );
    eprintln!(
        "  users={} fakes={} sweep={} threads=1 time={serial_secs:.2}s (baseline)",
        sim.graph.num_nodes(),
        budget,
        sweep_len
    );

    let mut rows = Vec::new();
    for &threads in &ladder {
        let (report, seconds) = if threads == 1 {
            (serial_report.clone(), serial_secs)
        } else {
            detect(&sim, threads, budget)
        };
        assert_eq!(
            report, serial_report,
            "threads={threads} changed the detection report — determinism bug"
        );
        let speedup = serial_secs / seconds;
        if threads != 1 {
            eprintln!("  threads={threads} time={seconds:.2}s speedup={speedup:.2}x");
        }
        rows.push(Row {
            users: sim.graph.num_nodes(),
            fakes: budget,
            sweep_len,
            threads,
            seconds,
            speedup,
            rounds: report.rounds,
            suspects: report.num_suspects(),
        });
    }

    let mut t = eval::table::Table::new(["threads", "time(s)", "speedup", "rounds", "suspects"]);
    for r in &rows {
        t.row([
            r.threads.to_string(),
            format!("{:.2}", r.seconds),
            format!("{:.2}x", r.speedup),
            r.rounds.to_string(),
            r.suspects.to_string(),
        ]);
    }
    h.emit(&t, &rows);
}
