//! Ablation (§IV-F): random seed sampling vs community-spread seed
//! selection "as in SybilRank".
//!
//! Spurious low-ratio cuts inside the legitimate region become likely when
//! legitimate users carry many rejections (the Fig 12 high-rejection
//! regime). Community-spread seeds anchor every legitimate community, so a
//! cut carving one off conflicts with a pinned seed. This harness compares
//! the two seeding policies across the legit-rejection sweep.

use bench::Harness;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use serde::Serialize;
use simulator::{sample_seeds, sample_seeds_community, ScenarioConfig};
use socialgraph::surrogates::Surrogate;

#[derive(Debug, Clone, Serialize)]
struct Row {
    legit_rejection_rate: f64,
    random_seeds: f64,
    community_seeds: f64,
    no_seeds: f64,
}

fn main() {
    let h = Harness::from_env("ablation_community_seeds");
    let host = h.host(Surrogate::Facebook);
    let detector = IterativeDetector::new(RejectoConfig::default());

    let mut rows = Vec::new();
    for rate in [0.2, 0.4, 0.6, 0.8] {
        let sim = h.simulate(
            &host,
            ScenarioConfig { legit_rejection_rate: rate, ..ScenarioConfig::default() },
        );
        let budget = sim.fakes.len();
        let precision_with = |seeds: Seeds| -> f64 {
            let report = detector.detect(&sim.graph, &seeds, Termination::SuspectBudget(budget));
            let suspects = report.suspects_top(budget, &sim.graph);
            let idx: Vec<usize> = suspects.iter().map(|s| s.index()).collect();
            eval::precision_recall(&idx, &sim.is_fake).precision()
        };

        let mut rng = ChaCha8Rng::seed_from_u64(h.seed);
        let (legit_r, spam_r) = sample_seeds(&sim, 20, 20, &mut rng);
        let random_seeds = precision_with(Seeds { legit: legit_r, spammer: spam_r });

        let mut rng = ChaCha8Rng::seed_from_u64(h.seed);
        let (legit_c, spam_c) = sample_seeds_community(&sim, &host, 20, 20, &mut rng);
        let community_seeds = precision_with(Seeds { legit: legit_c, spammer: spam_c });

        let no_seeds = precision_with(Seeds::default());

        eprintln!(
            "  rate {rate}: random {random_seeds:.4} community {community_seeds:.4} none {no_seeds:.4}"
        );
        rows.push(Row { legit_rejection_rate: rate, random_seeds, community_seeds, no_seeds });
    }

    let mut t = eval::table::Table::new([
        "legit_rejection_rate",
        "random_seeds",
        "community_seeds",
        "no_seeds",
    ]);
    for r in &rows {
        t.row([
            format!("{}", r.legit_rejection_rate),
            eval::table::fnum(r.random_seeds),
            eval::table::fnum(r.community_seeds),
            eval::table::fnum(r.no_seeds),
        ]);
    }
    h.emit(&t, &rows);
}
