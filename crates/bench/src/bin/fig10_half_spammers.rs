//! Figure 10: precision/recall vs requests per fake account when only
//! **half** of the fake accounts send friend spam (the rest hide behind
//! intra-fake friendships).
//!
//! Expected shape (paper): Rejecto stays high — placing the silent fakes in
//! the legitimate region would raise the cut's acceptance ratio, so the
//! MAAR cut keeps them with the spammers. VoteTrust collapses to ≈0.5: its
//! per-user rating cannot implicate fakes that never sent a request.

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig10_half_spammers");
    let xs: Vec<f64> = (1..=10).map(|i| (i * 5) as f64).collect();
    let rows = sweep(&h, Surrogate::Facebook, "requests_per_fake", &xs, |x| ScenarioConfig {
        requests_per_spammer: x as usize,
        spammer_fraction: 0.5,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("requests_per_fake", &rows), &rows);
}
