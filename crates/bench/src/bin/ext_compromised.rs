//! Extension experiment (§VII): detecting compromised accounts with
//! time-sharded Rejecto.
//!
//! Not a paper figure — §VII sketches the deployment in prose; this
//! harness quantifies it. Accounts behave organically for
//! `compromise_at` intervals, then a subset is hijacked for friend spam.
//! Rejecto runs per interval shard; we report per-shard detection plus a
//! persistence filter (flagged in ≥ 2 shards).

use bench::Harness;
use rejecto_core::{IterativeDetector, RejectoConfig, Seeds, Termination};
use serde::Serialize;
use simulator::{Timeline, TimelineConfig};
use socialgraph::surrogates::Surrogate;

#[derive(Debug, Clone, Serialize)]
struct Row {
    interval: usize,
    phase: String,
    flagged: usize,
    true_hits: usize,
    precision: f64,
    recall: f64,
}

fn main() {
    let h = Harness::from_env("ext_compromised");
    let host = h.host(Surrogate::Facebook);
    let config = TimelineConfig {
        intervals: 6,
        compromise_at: 3,
        num_compromised: h.n(750),
        ..TimelineConfig::default()
    };
    let tl = Timeline::simulate(&host, &config, h.seed);
    let truth = tl.is_compromised_mask();
    let compromised = tl.compromised().len();

    let detector = IterativeDetector::new(RejectoConfig::default());
    let mut rows = Vec::new();
    let mut flag_count = vec![0usize; tl.num_nodes()];
    for t in 0..tl.intervals() {
        let shard = tl.interval_graph(t);
        let report =
            detector.detect(&shard, &Seeds::default(), Termination::AcceptanceThreshold(0.5));
        let flagged = report.suspects();
        for n in &flagged {
            flag_count[n.index()] += 1;
        }
        let hits = flagged.iter().filter(|n| truth[n.index()]).count();
        let phase =
            if t < tl.compromise_at() { "pre-compromise" } else { "post-compromise" };
        eprintln!("  interval {t}: flagged {} hits {hits} ({phase})", flagged.len());
        rows.push(Row {
            interval: t,
            phase: phase.to_string(),
            flagged: flagged.len(),
            true_hits: hits,
            precision: hits as f64 / flagged.len().max(1) as f64,
            recall: hits as f64 / compromised as f64,
        });
    }

    let persistent: Vec<usize> = (0..tl.num_nodes()).filter(|&i| flag_count[i] >= 2).collect();
    let hits = persistent.iter().filter(|&&i| truth[i]).count();
    rows.push(Row {
        interval: usize::MAX,
        phase: "persistence>=2".to_string(),
        flagged: persistent.len(),
        true_hits: hits,
        precision: hits as f64 / persistent.len().max(1) as f64,
        recall: hits as f64 / compromised as f64,
    });

    let mut table = eval::table::Table::new([
        "interval", "phase", "flagged", "true_hits", "precision", "recall",
    ]);
    for r in &rows {
        table.row([
            if r.interval == usize::MAX { "-".to_string() } else { r.interval.to_string() },
            r.phase.clone(),
            r.flagged.to_string(),
            r.true_hits.to_string(),
            eval::table::fnum(r.precision),
            eval::table::fnum(r.recall),
        ]);
    }
    h.emit(&table, &rows);
}
