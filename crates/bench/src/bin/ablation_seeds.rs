//! Ablation (§IV-F): how much do ground-truth seeds and the
//! majority-size cut filter contribute to accuracy?
//!
//! Four detector variants run on the same baseline attack:
//! with/without seeds × with/without the `max_suspect_fraction` filter.
//! The paper argues seeds rule out spurious legitimate-region cuts; the
//! size filter handles the complement-shaped degenerate cuts that seed
//! pinning alone cannot block (DESIGN.md §6).

use bench::{Harness, PipelineConfig};
use rejecto::pipeline;
use serde::Serialize;
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

#[derive(Debug, Clone, Serialize)]
struct Row {
    variant: String,
    precision: f64,
}

fn main() {
    let h = Harness::from_env("ablation_seeds");
    let host = h.host(Surrogate::Facebook);
    // Two attack regimes: the baseline, and heavy collusion — the regime
    // where the near-complement degenerate cut (AC below the true spammer
    // cut) actually materializes and the size cap earns its keep.
    let scenarios: Vec<(&str, ScenarioConfig)> = vec![
        ("baseline", ScenarioConfig::default()),
        ("collusion40", ScenarioConfig { fake_intra_edges: 40, ..ScenarioConfig::default() }),
    ];
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("seeds+cap (default)", PipelineConfig::default()),
        ("no-seeds+cap", PipelineConfig {
            num_legit_seeds: 0,
            num_spammer_seeds: 0,
            ..PipelineConfig::default()
        }),
        ("seeds+no-cap", {
            let mut c = PipelineConfig::default();
            c.rejecto.max_suspect_fraction = 1.0;
            c
        }),
        ("no-seeds+no-cap", {
            let mut c = PipelineConfig {
                num_legit_seeds: 0,
                num_spammer_seeds: 0,
                ..PipelineConfig::default()
            };
            c.rejecto.max_suspect_fraction = 1.0;
            c
        }),
    ];

    let mut rows = Vec::new();
    for (scenario_name, scenario) in &scenarios {
        let sim = h.simulate(&host, scenario.clone());
        let budget = sim.fakes.len();
        for (name, cfg) in &variants {
            let suspects = pipeline::rejecto_suspects(&sim, cfg, budget);
            let p = pipeline::precision(&suspects, &sim.is_fake);
            eprintln!("  [{scenario_name}] {name}: {p:.4}");
            rows.push(Row {
                variant: format!("{scenario_name}/{name}"),
                precision: p,
            });
        }
    }

    let mut t = eval::table::Table::new(["variant", "precision"]);
    for r in &rows {
        t.row([r.variant.clone(), eval::table::fnum(r.precision)]);
    }
    h.emit(&t, &rows);
}
