//! Figure 9: precision/recall as a function of the number of requests per
//! fake account (5–50), when **all** fake accounts send friend spam.
//!
//! Expected shape (paper): Rejecto stays ≳0.99 across the whole sweep;
//! VoteTrust starts noticeably lower at small request volumes and climbs
//! with more requests (its PageRank-style vote assignment is sensitive to
//! request volume).

use bench::{comparison_table, sweep, Harness};
use simulator::ScenarioConfig;
use socialgraph::surrogates::Surrogate;

fn main() {
    let h = Harness::from_env("fig09_request_volume");
    let xs: Vec<f64> = (1..=10).map(|i| (i * 5) as f64).collect();
    let rows = sweep(&h, Surrogate::Facebook, "requests_per_fake", &xs, |x| ScenarioConfig {
        requests_per_spammer: x as usize,
        ..ScenarioConfig::default()
    });
    h.emit(&comparison_table("requests_per_fake", &rows), &rows);
}
