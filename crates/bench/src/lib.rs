//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§VI). See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.
//!
//! Every binary:
//!
//! * accepts `--scale <f>` (or env `REJECTO_SCALE`) to shrink the
//!   experiment below paper scale for quick runs — `1.0` is paper scale
//!   (10,000 fakes on the full-size surrogate);
//! * accepts `--seed <u64>` (env `REJECTO_SEED`) for reproducibility;
//! * prints a paper-style text table and writes machine-readable JSON rows
//!   under `results/`.

#![forbid(unsafe_code)]

pub mod plot;

use serde::Serialize;
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;
use socialgraph::Graph;
use std::io::Write as _;
use std::path::PathBuf;

pub use rejecto::pipeline::{self, PipelineConfig};

/// Command-line / environment configuration shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Experiment name (output file stem).
    pub name: String,
    /// Scale factor relative to the paper (host-graph nodes and fake count
    /// both scale linearly).
    pub scale: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Output directory for JSON rows.
    pub out_dir: PathBuf,
    /// Run metrics, written next to the rows by [`Harness::emit`] as
    /// `results/<name>.metrics.json` (rejecto-metrics/v1).
    pub obs: rejecto_obs::Obs,
}

impl Harness {
    /// Builds a harness from `std::env::args` and environment variables.
    ///
    /// # Panics
    ///
    /// Panics on malformed `--scale`/`--seed` values.
    pub fn from_env(name: &str) -> Self {
        let mut scale: f64 = std::env::var("REJECTO_SCALE")
            .ok()
            .map(|s| s.parse().expect("REJECTO_SCALE must be a float"))
            .unwrap_or(1.0);
        let mut seed: u64 = std::env::var("REJECTO_SEED")
            .ok()
            .map(|s| s.parse().expect("REJECTO_SEED must be a u64"))
            .unwrap_or(42);
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a float");
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires a u64");
                }
                "--help" | "-h" => {
                    eprintln!("usage: {name} [--scale <f64>] [--seed <u64>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(scale > 0.0, "scale must be positive");
        Harness {
            name: name.to_string(),
            scale,
            seed,
            out_dir: PathBuf::from("results"),
            obs: rejecto_obs::Obs::default(),
        }
    }

    /// Paper quantity scaled (e.g., `self.n(10_000)` fakes).
    pub fn n(&self, paper_value: usize) -> usize {
        ((paper_value as f64 * self.scale).round() as usize).max(1)
    }

    /// Generates the scaled host surrogate.
    pub fn host(&self, s: Surrogate) -> Graph {
        s.generate_scaled(self.seed, self.scale)
    }

    /// Runs the §VI-A scenario on `host` with the scaled fake count and the
    /// supplied overrides.
    pub fn simulate(&self, host: &Graph, mut cfg: ScenarioConfig) -> SimOutput {
        cfg.num_fakes = self.n(cfg.num_fakes);
        Scenario::new(cfg).run_observed(host, self.seed, &self.obs)
    }

    /// Prints the table and writes `results/<name>.json`; on any write
    /// failure (full disk, bad permissions) it reports the structured
    /// error and exits nonzero instead of panicking. Because every file
    /// goes through the atomic write protocol, a failed emit can never
    /// leave a half-written `results/*.json` for a later report-equality
    /// assertion to read as truth.
    pub fn emit<R: Serialize>(&self, table: &eval::table::Table, rows: &[R]) {
        if let Err(e) = self.try_emit(table, rows) {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }

    /// Fallible core of [`Harness::emit`].
    ///
    /// # Errors
    ///
    /// [`EmitError`] naming the path and the failed step.
    pub fn try_emit<R: Serialize>(
        &self,
        table: &eval::table::Table,
        rows: &[R],
    ) -> Result<(), EmitError> {
        println!("== {} (scale {}, seed {}) ==", self.name, self.scale, self.seed);
        print!("{}", table.render());
        std::fs::create_dir_all(&self.out_dir).map_err(|e| EmitError {
            path: self.out_dir.display().to_string(),
            message: format!("cannot create results dir: {e}"),
        })?;
        let path = self.out_dir.join(format!("{}.json", self.name));
        let mut buf = Vec::new();
        for r in rows {
            let line = serde_json::to_string(r).map_err(|e| EmitError {
                path: path.display().to_string(),
                message: format!("row serialization failed: {e}"),
            })?;
            writeln!(buf, "{line}").map_err(|e| EmitError {
                path: path.display().to_string(),
                message: format!("cannot render results rows: {e}"),
            })?;
        }
        rejecto_core::store::atomic_write(&path, &buf).map_err(|e| EmitError {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        eprintln!("[wrote {}]", path.display());

        let metrics_path = self.out_dir.join(format!("{}.metrics.json", self.name));
        let mut doc = self.obs.to_json();
        doc.push('\n');
        rejecto_core::store::atomic_write(&metrics_path, doc.as_bytes()).map_err(|e| {
            EmitError { path: metrics_path.display().to_string(), message: e.to_string() }
        })?;
        eprintln!("[wrote {}]", metrics_path.display());
        Ok(())
    }
}

/// A structured results-write failure: which artifact, and what went
/// wrong. Replaces the `expect` panics that used to abort the bench
/// binaries mid-run on a full disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitError {
    /// Path of the artifact that could not be written.
    pub path: String,
    /// What failed.
    pub message: String,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for EmitError {}

/// One precision/recall comparison point, the row shape of Figures 9–15,
/// 17, and 18. With `REJECTO_REPLICAS > 1` the point is the mean over
/// independent simulation seeds and the `*_std` fields carry the sample
/// standard deviation.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Host graph name.
    pub graph: String,
    /// Sweep axis label.
    pub x_label: String,
    /// Sweep axis value.
    pub x: f64,
    /// Rejecto precision (= recall under the protocol), mean over replicas.
    pub rejecto: f64,
    /// VoteTrust precision, mean over replicas.
    pub votetrust: f64,
    /// Sample std of the Rejecto precision (0 with one replica).
    pub rejecto_std: f64,
    /// Sample std of the VoteTrust precision (0 with one replica).
    pub votetrust_std: f64,
    /// Replica count.
    pub replicas: usize,
}

/// Runs both detectors under the protocol (each declares exactly the
/// number of injected fakes) and returns `(rejecto, votetrust)` precision.
pub fn compare(sim: &SimOutput, cfg: &PipelineConfig) -> (f64, f64) {
    let budget = sim.fakes.len();
    let rj = pipeline::rejecto_suspects(sim, cfg, budget);
    let vt = pipeline::votetrust_suspects(sim, cfg, budget);
    (
        pipeline::precision(&rj, &sim.is_fake),
        pipeline::precision(&vt, &sim.is_fake),
    )
}

/// Replica count from `REJECTO_REPLICAS` (default 1).
pub fn replicas() -> usize {
    std::env::var("REJECTO_REPLICAS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

/// MAAR k-sweep worker threads from `REJECTO_THREADS` (default 0 = all
/// cores). Purely a wall-clock knob: the sweep's reduction is ordered by
/// sweep index, so every figure and table is byte-identical at any value.
pub fn threads() -> usize {
    std::env::var("REJECTO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs a one-dimensional sweep on one host graph: for each `x`,
/// `make_config(x)` builds the scenario, both detectors run, and a
/// [`ComparisonRow`] is produced. With `REJECTO_REPLICAS > 1` each point
/// averages that many independent simulation seeds (`seed + replica`).
pub fn sweep<F>(
    harness: &Harness,
    graph: Surrogate,
    x_label: &str,
    xs: &[f64],
    make_config: F,
) -> Vec<ComparisonRow>
where
    F: Fn(f64) -> ScenarioConfig,
{
    let host = harness.host(graph);
    let mut cfg = PipelineConfig::default();
    cfg.rejecto.threads = threads();
    let reps = replicas();
    xs.iter()
        .map(|&x| {
            let mut rj = Vec::with_capacity(reps);
            let mut vt = Vec::with_capacity(reps);
            for r in 0..reps {
                let mut scenario = make_config(x);
                scenario.num_fakes = harness.n(scenario.num_fakes);
                let sim =
                    Scenario::new(scenario).run(&host, harness.seed + r as u64);
                let (a, b) = compare(&sim, &cfg);
                rj.push(a);
                vt.push(b);
            }
            let rj = eval::Summary::from_samples(rj).expect("at least one replica");
            let vt = eval::Summary::from_samples(vt).expect("at least one replica");
            eprintln!(
                "  [{}] {x_label}={x}: rejecto {} votetrust {}",
                graph.name(),
                rj.display(),
                vt.display()
            );
            ComparisonRow {
                graph: graph.name().to_string(),
                x_label: x_label.to_string(),
                x,
                rejecto: rj.mean,
                votetrust: vt.mean,
                rejecto_std: rj.std,
                votetrust_std: vt.std,
                replicas: reps,
            }
        })
        .collect()
}

/// Renders comparison rows as a paper-style table.
pub fn comparison_table(x_label: &str, rows: &[ComparisonRow]) -> eval::table::Table {
    let mut t = eval::table::Table::new(["graph", x_label, "rejecto", "votetrust"]);
    for r in rows {
        t.row([
            r.graph.clone(),
            format!("{}", r.x),
            eval::table::fnum(r.rejecto),
            eval::table::fnum(r.votetrust),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_quantities_round_and_floor_at_one() {
        let h = Harness {
            name: "t".into(),
            scale: 0.015,
            seed: 1,
            out_dir: PathBuf::from("/tmp"),
            obs: rejecto_obs::Obs::default(),
        };
        assert_eq!(h.n(10_000), 150);
        assert_eq!(h.n(10), 1);
    }

    #[test]
    fn sweep_produces_one_row_per_x() {
        let h = Harness {
            name: "t".into(),
            scale: 0.02,
            seed: 7,
            out_dir: PathBuf::from("/tmp"),
            obs: rejecto_obs::Obs::default(),
        };
        let rows = sweep(&h, Surrogate::Synthetic, "requests", &[5.0, 10.0], |x| {
            ScenarioConfig {
                requests_per_spammer: x as usize,
                ..ScenarioConfig::default()
            }
        });
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.rejecto));
            assert!((0.0..=1.0).contains(&r.votetrust));
        }
    }

    #[test]
    fn comparison_table_includes_all_rows() {
        let rows = vec![ComparisonRow {
            graph: "g".into(),
            x_label: "x".into(),
            x: 1.0,
            rejecto: 0.5,
            votetrust: 0.25,
            rejecto_std: 0.0,
            votetrust_std: 0.0,
            replicas: 1,
        }];
        let t = comparison_table("x", &rows);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("0.2500"));
    }
}
