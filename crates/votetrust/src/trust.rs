use crate::RequestGraph;
use socialgraph::NodeId;

/// Tunables of the VoteTrust pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoteTrustConfig {
    /// PageRank damping factor of the vote-assignment walk.
    pub damping: f64,
    /// Power-iteration steps for vote assignment.
    pub vote_iterations: usize,
    /// Uniform mass mixed into the restart vector (`0` = restart only at
    /// seeds). A small floor keeps votes strictly positive everywhere, as
    /// in production PageRank deployments, so the rating weights never
    /// degenerate to all-zero.
    pub restart_smoothing: f64,
    /// Fixed-point iterations for the rating aggregation.
    pub rating_iterations: usize,
    /// Rating assigned to users who never sent a request (their rating is
    /// undefined under vote aggregation). Defaulting to 1.0 treats them as
    /// legitimate — the design decision behind VoteTrust's blind spot for
    /// non-spamming fakes (Fig 10).
    pub default_rating: f64,
}

impl Default for VoteTrustConfig {
    fn default() -> Self {
        VoteTrustConfig {
            damping: 0.85,
            vote_iterations: 30,
            restart_smoothing: 0.1,
            rating_iterations: 20,
            default_rating: 1.0,
        }
    }
}

/// Result of [`VoteTrust::rank`].
#[derive(Debug, Clone, PartialEq)]
pub struct VoteTrustRanking {
    votes: Vec<f64>,
    ratings: Vec<f64>,
}

impl VoteTrustRanking {
    /// Per-user votes (trust mass from the seeded walk).
    pub fn votes(&self) -> &[f64] {
        &self.votes
    }

    /// Per-user ratings in `[0, 1]` (weighted acceptance of their
    /// requests); the detection score, lower = more suspicious.
    pub fn ratings(&self) -> &[f64] {
        &self.ratings
    }

    /// The `n` most suspicious users: ascending rating, ties by ascending
    /// votes, then by id (deterministic).
    pub fn bottom(&self, n: usize) -> Vec<NodeId> {
        let mut idx: Vec<usize> = (0..self.ratings.len()).collect();
        idx.sort_by(|&a, &b| {
            self.ratings[a]
                .total_cmp(&self.ratings[b])
                .then(self.votes[a].total_cmp(&self.votes[b]))
                .then(a.cmp(&b))
        });
        idx.into_iter().take(n).map(NodeId::from_index).collect()
    }
}

/// The VoteTrust ranking algorithm; see the crate docs for the model.
#[derive(Debug, Clone)]
pub struct VoteTrust {
    config: VoteTrustConfig,
}

impl VoteTrust {
    /// Creates a ranker.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is outside `(0, 1)`.
    pub fn new(config: VoteTrustConfig) -> Self {
        assert!(
            config.damping > 0.0 && config.damping < 1.0,
            "damping must be in (0, 1), got {}",
            config.damping
        );
        assert!(
            (0.0..=1.0).contains(&config.restart_smoothing),
            "restart_smoothing must be in [0, 1], got {}",
            config.restart_smoothing
        );
        VoteTrust { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VoteTrustConfig {
        &self.config
    }

    /// Vote assignment: PageRank with restart at `trusted_seeds` over the
    /// directed request graph (edges sender → recipient). With no seeds the
    /// restart is uniform. Votes sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range.
    pub fn votes(&self, g: &RequestGraph, trusted_seeds: &[NodeId]) -> Vec<f64> {
        let n = g.num_nodes();
        if n == 0 {
            return Vec::new();
        }
        for s in trusted_seeds {
            assert!(s.index() < n, "seed {s} out of range");
        }
        let eps = self.config.restart_smoothing;
        let restart: Vec<f64> = if trusted_seeds.is_empty() {
            vec![1.0 / n as f64; n] // xtask-allow: lossy-cast: node count < 2^53 converts exactly
        } else {
            let mut r = vec![eps / n as f64; n]; // xtask-allow: lossy-cast: node count < 2^53 converts exactly
            for s in trusted_seeds {
                r[s.index()] += (1.0 - eps) / trusted_seeds.len() as f64; // xtask-allow: lossy-cast: seed count < 2^53 converts exactly
            }
            r
        };
        let d = self.config.damping;
        let mut v = restart.clone();
        for _ in 0..self.config.vote_iterations {
            let mut next = vec![0.0f64; n];
            let mut dangling = 0.0f64;
            for u in g.nodes() {
                let mass = v[u.index()];
                let outs = g.sent(u);
                if outs.is_empty() {
                    dangling += mass;
                } else {
                    let share = mass / outs.len() as f64; // xtask-allow: lossy-cast: out-degree < 2^53 converts exactly
                    for &(t, _) in outs {
                        next[t.index()] += share;
                    }
                }
            }
            for i in 0..n {
                // Dangling mass re-enters through the restart vector.
                next[i] = (1.0 - d) * restart[i] + d * (next[i] + dangling * restart[i]);
            }
            v = next;
        }
        v
    }

    /// Vote aggregation: iterates
    /// `rating(u) = Σ votes(t)·rating(t)·accepted(u→t) / Σ votes(t)·rating(t)`
    /// over `u`'s sent requests. Users with no sent requests (or all-zero
    /// weights) hold `default_rating`.
    ///
    /// # Panics
    ///
    /// Panics if `votes.len() != g.num_nodes()`.
    pub fn ratings(&self, g: &RequestGraph, votes: &[f64]) -> Vec<f64> {
        let n = g.num_nodes();
        assert_eq!(votes.len(), n, "votes vector has wrong length");
        let mut rating = vec![self.config.default_rating; n];
        for _ in 0..self.config.rating_iterations {
            let mut next = rating.clone();
            for u in g.nodes() {
                let sent = g.sent(u);
                if sent.is_empty() {
                    continue;
                }
                let mut num = 0.0f64;
                let mut den = 0.0f64;
                for &(t, accepted) in sent {
                    let w = votes[t.index()] * rating[t.index()];
                    den += w;
                    if accepted {
                        num += w;
                    }
                }
                if den > 0.0 {
                    next[u.index()] = num / den;
                }
            }
            rating = next;
        }
        rating
    }

    /// Runs both steps and returns the full ranking.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range.
    pub fn rank(&self, g: &RequestGraph, trusted_seeds: &[NodeId]) -> VoteTrustRanking {
        let votes = self.votes(g, trusted_seeds);
        let ratings = self.ratings(g, &votes);
        VoteTrustRanking { votes, ratings }
    }
}

impl Default for VoteTrust {
    fn default() -> Self {
        VoteTrust::new(VoteTrustConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 legit users requesting each other (accepted); 2 fakes spamming the
    /// legit users (mostly rejected) and accepting each other.
    fn scenario() -> RequestGraph {
        RequestGraph::from_requests(
            5,
            [
                (NodeId(0), NodeId(1), true),
                (NodeId(1), NodeId(2), true),
                (NodeId(2), NodeId(0), true),
                // Fake 3 spams:
                (NodeId(3), NodeId(0), false),
                (NodeId(3), NodeId(1), false),
                (NodeId(3), NodeId(2), true),
                // Fake 4 spams:
                (NodeId(4), NodeId(0), false),
                (NodeId(4), NodeId(2), false),
                // Collusion:
                (NodeId(3), NodeId(4), true),
                (NodeId(4), NodeId(3), true),
            ],
        )
    }

    #[test]
    fn votes_sum_to_one() {
        let g = scenario();
        let vt = VoteTrust::default();
        let v = vt.votes(&g, &[NodeId(0)]);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "votes sum {sum}");
    }

    #[test]
    fn seeded_votes_favor_the_trusted_side() {
        let g = scenario();
        let vt = VoteTrust::default();
        let v = vt.votes(&g, &[NodeId(0), NodeId(1)]);
        let legit: f64 = v[..3].iter().sum();
        let fake: f64 = v[3..].iter().sum();
        assert!(legit > 2.0 * fake, "legit {legit} vs fake {fake}");
    }

    #[test]
    fn spammers_rate_below_legit_users() {
        let g = scenario();
        let vt = VoteTrust::default();
        let ranking = vt.rank(&g, &[NodeId(0)]);
        let r = ranking.ratings();
        assert!(r[3] < r[0] && r[3] < r[1] && r[3] < r[2], "{r:?}");
        assert!(r[4] < r[0], "{r:?}");
        let bottom = ranking.bottom(2);
        assert!(bottom.contains(&NodeId(3)) && bottom.contains(&NodeId(4)), "{bottom:?}");
    }

    #[test]
    fn silent_users_keep_default_rating() {
        let g = RequestGraph::from_requests(3, [(NodeId(0), NodeId(1), false)]);
        let vt = VoteTrust::default();
        let ranking = vt.rank(&g, &[NodeId(1)]);
        assert_eq!(ranking.ratings()[2], 1.0);
        // Node 0's single request was rejected: rating 0.
        assert!(ranking.ratings()[0] < 1e-9);
    }

    #[test]
    fn ratings_stay_within_unit_interval() {
        let g = scenario();
        let vt = VoteTrust::default();
        let ranking = vt.rank(&g, &[]);
        for &r in ranking.ratings() {
            assert!((0.0..=1.0).contains(&r), "rating {r}");
        }
    }

    #[test]
    fn bottom_is_deterministic_under_ties() {
        let g = RequestGraph::new(4);
        let vt = VoteTrust::default();
        let ranking = vt.rank(&g, &[]);
        // Everyone tied at default rating: ids ascending.
        assert_eq!(ranking.bottom(2), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn collusion_lifts_individual_ratings() {
        // Fake 3 with only rejections vs the same fake plus accepted
        // intra-fake requests: the latter must rate higher — the
        // manipulation Rejecto is immune to but VoteTrust is not.
        let lone = RequestGraph::from_requests(
            4,
            [(NodeId(3), NodeId(0), false), (NodeId(3), NodeId(1), false)],
        );
        let colluding = RequestGraph::from_requests(
            6,
            [
                (NodeId(3), NodeId(0), false),
                (NodeId(3), NodeId(1), false),
                (NodeId(3), NodeId(4), true),
                (NodeId(3), NodeId(5), true),
                (NodeId(4), NodeId(3), true),
                (NodeId(5), NodeId(3), true),
            ],
        );
        let vt = VoteTrust::default();
        let r_lone = vt.rank(&lone, &[NodeId(0)]).ratings()[3];
        let r_colluding = vt.rank(&colluding, &[NodeId(0)]).ratings()[3];
        assert!(r_colluding > r_lone, "{r_colluding} <= {r_lone}");
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = VoteTrust::new(VoteTrustConfig { damping: 1.0, ..Default::default() });
    }
}
