use socialgraph::NodeId;

/// The directed friend-request graph: who asked whom, and the response.
///
/// Parallel requests between the same ordered pair are kept (each carries
/// its own response), matching VoteTrust's per-request vote aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestGraph {
    /// `out[u]` = requests sent by `u`: `(recipient, accepted)`.
    out: Vec<Vec<(NodeId, bool)>>,
    /// `inc[u]` = requests received by `u`: `(sender, accepted)`.
    inc: Vec<Vec<(NodeId, bool)>>,
    num_requests: u64,
}

impl RequestGraph {
    /// An empty request graph over `num_nodes` users.
    pub fn new(num_nodes: usize) -> Self {
        RequestGraph {
            out: vec![Vec::new(); num_nodes],
            inc: vec![Vec::new(); num_nodes],
            num_requests: 0,
        }
    }

    /// Builds from `(sender, recipient, accepted)` triples.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or a request is a self-loop.
    pub fn from_requests<I>(num_nodes: usize, requests: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId, bool)>,
    {
        let mut g = RequestGraph::new(num_nodes);
        for (from, to, accepted) in requests {
            g.add_request(from, to, accepted);
        }
        g
    }

    /// Records one request and its response.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `from == to`.
    pub fn add_request(&mut self, from: NodeId, to: NodeId, accepted: bool) {
        assert!(
            from.index() < self.out.len() && to.index() < self.out.len(),
            "request ({from}, {to}) out of range for {} users",
            self.out.len()
        );
        assert_ne!(from, to, "self-request");
        self.out[from.index()].push((to, accepted));
        self.inc[to.index()].push((from, accepted));
        self.num_requests += 1;
    }

    /// Number of users.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of requests.
    pub fn num_requests(&self) -> u64 {
        self.num_requests
    }

    /// Requests sent by `u` as `(recipient, accepted)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn sent(&self, u: NodeId) -> &[(NodeId, bool)] {
        &self.out[u.index()]
    }

    /// Requests received by `u` as `(sender, accepted)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn received(&self, u: NodeId) -> &[(NodeId, bool)] {
        &self.inc[u.index()]
    }

    /// Out-degree of `u` in requests.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let n = u32::try_from(self.out.len()).expect("node ids fit in u32");
        (0..n).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_both_directions() {
        let g = RequestGraph::from_requests(
            3,
            [(NodeId(0), NodeId(1), true), (NodeId(2), NodeId(1), false)],
        );
        assert_eq!(g.sent(NodeId(0)), &[(NodeId(1), true)]);
        assert_eq!(g.received(NodeId(1)), &[(NodeId(0), true), (NodeId(2), false)]);
        assert_eq!(g.num_requests(), 2);
    }

    #[test]
    fn keeps_parallel_requests() {
        let g = RequestGraph::from_requests(
            2,
            [(NodeId(0), NodeId(1), false), (NodeId(0), NodeId(1), true)],
        );
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "self-request")]
    fn rejects_self_requests() {
        let mut g = RequestGraph::new(1);
        g.add_request(NodeId(0), NodeId(0), true);
    }
}
