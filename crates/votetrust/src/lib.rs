//! VoteTrust (Xue et al., INFOCOM 2013) — the baseline the paper compares
//! against (§VI).
//!
//! VoteTrust ranks users on the **directed friend-request graph** in two
//! cascaded steps:
//!
//! 1. **Vote assignment** ([`VoteTrust::votes`]): a PageRank-like random
//!    walk with restart at trusted seeds, following request edges
//!    `sender → recipient`. A user's *votes* measure how much request
//!    attention flows to them from the trusted part of the network; fakes,
//!    who receive requests almost exclusively from other fakes, get few.
//! 2. **Vote aggregation** ([`VoteTrust::ratings`]): each user's *rating*
//!    is the weighted average of the responses their requests received —
//!    1 for accepted, 0 for rejected — where a request's weight is the
//!    recipient's votes times the recipient's current rating. The
//!    computation iterates to a fixed point.
//!
//! Users are declared suspicious from the bottom of the rating order
//! ([`VoteTrustRanking::bottom`]).
//!
//! The paper identifies (and our Fig 10/13/14 harnesses reproduce) the
//! design's two weaknesses: the rating leans on *individual* acceptance
//! rates, so collusion dilutes it, and fakes that send no requests keep the
//! default rating and are missed entirely.

#![forbid(unsafe_code)]

mod request_graph;
mod trust;

pub use request_graph::RequestGraph;
pub use trust::{VoteTrust, VoteTrustConfig, VoteTrustRanking};
