//! Resource-budget parity between the local and distributed runtimes.
//!
//! The `max_suspect_frac` ceiling is a deterministic budget: its trip is a
//! pure function of the input graph and the configuration, so the
//! distributed detector must roll back the offending round and stop with
//! the exact same partial report as the in-process detector, at any worker
//! count.

use dataflow::{ClusterConfig, DistributedDetector};
use rejecto_core::{
    Completion, InterruptReason, IterativeDetector, RejectoConfig, ResourceBudget, Seeds,
    Termination,
};
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;
use std::time::Duration;

fn simulated_scenario(seed: u64) -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.02);
    let config = ScenarioConfig { num_fakes: 50, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, seed)
}

fn snappy_cluster(workers: usize) -> ClusterConfig {
    ClusterConfig {
        num_workers: workers,
        request_deadline: Duration::from_millis(50),
        backoff_base: Duration::ZERO,
        ..ClusterConfig::default()
    }
}

fn budgeted_config() -> RejectoConfig {
    RejectoConfig {
        resources: ResourceBudget {
            // Far below any real spam group, so the very first admissible
            // cut trips the budget and the run rolls it back.
            max_suspect_frac: Some(0.001),
            ..ResourceBudget::unlimited()
        },
        ..RejectoConfig::default()
    }
}

#[test]
fn suspect_frac_budget_matches_the_local_detector_across_worker_counts() {
    let sim = simulated_scenario(23);
    let local = IterativeDetector::new(budgeted_config()).detect(
        &sim.graph,
        &Seeds::default(),
        Termination::SuspectBudget(50),
    );
    assert!(
        matches!(
            &local.completion,
            Completion::Partial { reason: InterruptReason::ResourceBudget, .. }
        ),
        "fixture must trip the budget locally, got {:?}",
        local.completion
    );

    for workers in [1, 4] {
        let dist = DistributedDetector::new(snappy_cluster(workers), budgeted_config())
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(50))
            .expect("budget trips are rollbacks, not runtime errors");
        assert_eq!(
            dist, local,
            "workers={workers}: distributed budget trip diverged from the local run"
        );
    }
}
