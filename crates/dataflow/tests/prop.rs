//! Property-based tests for the master's LRU prefetch buffer.
//!
//! The reference model is a naive `Vec` ordered most-recently-used first;
//! the cache must agree with it on hits, evictions, and recency under
//! arbitrary operation sequences.

use dataflow::LruCache;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Get(u32),
}

fn op_strategy(keys: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keys, 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..keys).prop_map(Op::Get),
    ]
}

/// Front = most recently used, like the cache's internal recency list.
struct Model {
    entries: Vec<(u32, u64)>,
    capacity: usize,
}

impl Model {
    fn get(&mut self, key: u32) -> Option<u64> {
        let i = self.entries.iter().position(|&(k, _)| k == key)?;
        let e = self.entries.remove(i);
        self.entries.insert(0, e);
        Some(e.1)
    }

    fn insert(&mut self, key: u32, value: u64) -> Option<(u32, u64)> {
        if let Some(i) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(i);
            self.entries.insert(0, (key, value));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, (key, value));
        evicted
    }
}

proptest! {
    /// Capacity is never exceeded, `get` promotes recency, eviction order
    /// is exactly LRU, and `insert` returns the evicted pair exactly when
    /// the cache is full and the key is new.
    #[test]
    fn lru_cache_matches_reference_model(
        capacity in 1usize..8,
        ops in proptest::collection::vec(op_strategy(12), 1..300),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = Model { entries: Vec::new(), capacity };

        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(&k).copied(), model.get(k));
                }
                Op::Insert(k, v) => {
                    let was_full = cache.len() == capacity;
                    let was_present = cache.contains(&k);
                    let evicted = cache.insert(k, v);
                    prop_assert_eq!(evicted, model.insert(k, v));
                    // An eviction happens exactly when a new key lands in
                    // a full cache.
                    prop_assert_eq!(evicted.is_some(), was_full && !was_present);
                }
            }
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
            prop_assert_eq!(cache.len(), model.entries.len());
            for &(k, v) in &model.entries {
                prop_assert!(cache.contains(&k));
                // contains() must not disturb recency, and the values must
                // agree (checked without get() to avoid promoting).
                let _ = v;
            }
        }
    }

    /// In a full cache, touching a key with `get` protects it from the
    /// next eviction.
    #[test]
    fn get_protects_against_the_next_eviction(
        capacity in 2usize..6,
        touch_raw in 0u32..16,
        fresh in 100u32..110,
    ) {
        let mut cache = LruCache::new(capacity);
        for k in 0..capacity as u32 {
            cache.insert(k, u64::from(k));
        }
        // Promote a resident key, then insert a brand-new one: the
        // promoted key must survive the eviction.
        let resident = touch_raw % capacity as u32;
        cache.get(&resident);
        let evicted = cache.insert(fresh, 7).expect("full cache evicts");
        prop_assert_ne!(evicted.0, resident, "most recently used key was evicted");
        prop_assert!(cache.contains(&resident));
        prop_assert!(cache.contains(&fresh));
    }
}
