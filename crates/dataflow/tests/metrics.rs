//! Determinism contract of the observability layer on the cluster
//! runtime (DESIGN.md §13).
//!
//! The distributed detector shares the local detector's counter
//! vocabulary (`kl/*`, `detect/*`), and everything outside `timings`
//! must be byte-identical across worker counts, unchanged when injected
//! worker deaths and hangs are absorbed by respawn — and equal to the
//! metrics of the plain in-process run, because the cluster is supposed
//! to be invisible in every observable output.

use dataflow::{ClusterConfig, DistributedDetector};
use rejecto_core::{
    FaultPlan, IterativeDetector, RejectoConfig, Seeds, Termination,
};
use simulator::{Scenario, ScenarioConfig, SimOutput};
use socialgraph::surrogates::Surrogate;
use std::time::Duration;

fn simulated_scenario(seed: u64) -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(seed, 0.02);
    let config = ScenarioConfig { num_fakes: 50, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, seed)
}

/// Short watchdog deadline and no backoff so absorbed faults cost
/// milliseconds, not the 5 s production deadline.
fn snappy_cluster(workers: usize) -> ClusterConfig {
    ClusterConfig {
        num_workers: workers,
        request_deadline: Duration::from_millis(50),
        backoff_base: Duration::ZERO,
        ..ClusterConfig::default()
    }
}

fn distributed_metrics(sim: &SimOutput, workers: usize, faults: Option<&str>) -> String {
    let mut config = RejectoConfig::default();
    if let Some(spec) = faults {
        config.faults = FaultPlan::parse(spec).expect("valid fault spec");
    }
    let mut det = DistributedDetector::new(snappy_cluster(workers), config);
    let obs = rejecto_obs::Obs::default();
    det.set_obs(obs.clone());
    det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(50))
        .expect("distributed detect succeeds on the clean scenario");
    obs.deterministic_json()
}

#[test]
fn metrics_are_byte_identical_across_worker_counts_and_match_the_local_run() {
    let sim = simulated_scenario(21);
    let one = distributed_metrics(&sim, 1, None);
    let four = distributed_metrics(&sim, 4, None);
    assert!(one.contains("\"kl/moves_committed\""), "{one}");
    assert_eq!(one, four, "metrics must not depend on the worker count");

    let mut local_det = IterativeDetector::new(RejectoConfig::default());
    let obs = rejecto_obs::Obs::default();
    local_det.set_obs(obs.clone());
    local_det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(50));
    assert_eq!(
        one,
        obs.deterministic_json(),
        "the cluster must be invisible in the deterministic metrics"
    );
}

#[test]
fn absorbed_worker_faults_leave_no_trace_in_the_metrics() {
    let sim = simulated_scenario(22);
    let clean = distributed_metrics(&sim, 3, None);
    let faulted = distributed_metrics(
        &sim,
        3,
        Some("worker_death@fetch=3,worker_death@fetch=9:x2,worker_hang@k=2"),
    );
    assert_eq!(clean, faulted, "recovered faults must not leak into the metrics");
}
