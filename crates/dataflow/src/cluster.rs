//! The master/worker deployment of Rejecto (§V).
//!
//! Long-lived worker threads hold contiguous shards of the augmented
//! graph's adjacency; the master holds node status, gains, and the bucket
//! list, and pulls node neighborhoods through a prefetching LRU buffer.
//! Every master↔worker exchange is counted in [`IoStats`], so the Table-II
//! harness can report both wall time and simulated network traffic.
//!
//! # Failure model
//!
//! The cluster keeps the source graph as its **lineage** (the RDD model)
//! and degrades through three tiers before ever failing a request:
//!
//! 1. **Respawn**: a dead worker (broken channel) or a *hung* worker
//!    (no answer within [`ClusterConfig::request_deadline`], detected by
//!    the per-request watchdog) is rebuilt from lineage after a
//!    deterministic exponential backoff, and the in-flight request is
//!    replayed ([`IoStats::worker_restarts`]).
//! 2. **Rebalance**: a worker that keeps dying through the whole
//!    [`ClusterConfig::max_respawns`] budget has its shard merged onto an
//!    adjacent survivor ([`IoStats::shards_rebalanced`]); the algorithm
//!    sees the same data from fewer workers.
//! 3. **Structured failure**: only when no survivor remains does a
//!    [`ClusterError`] surface — never a panic.
//!
//! Because recovery replays requests against byte-identical lineage data,
//! any fault schedule that leaves at least one worker alive yields results
//! byte-identical to the failure-free run.

use crate::error::ClusterError;
use crate::LruCache;
use crossbeam::channel::{unbounded, Receiver, Sender};
use kl::{BucketList, CancelReason, CancelToken, KParam};
use rejection::{AugmentedGraph, NodeId};
use rejecto_core::{
    ClusterFaults, Completion, InitialPlacement, InterruptReason, RejectoConfig, RuntimeError,
};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const LEGIT: u8 = 0;
const SUSPECT: u8 = 1;

/// Never tighten the per-request watchdog below this, even when the run
/// deadline is about to expire: a healthy worker that needs a few
/// milliseconds must not be misdiagnosed as hung and respawned in a loop.
const WATCHDOG_FLOOR: Duration = Duration::from_millis(250);

/// Per-node adjacency shipped from a worker to the master.
#[derive(Debug, Clone, Default)]
struct NodeData {
    friends: Vec<u32>,
    /// Users whose requests this node rejected.
    rejected_by: Vec<u32>,
    /// Users who rejected this node's requests.
    rejectors_of: Vec<u32>,
}

/// Cluster sizing and failure-handling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker threads (graph shards).
    pub num_workers: usize,
    /// Nodes fetched per prefetch batch (top of the bucket list).
    pub prefetch_batch: usize,
    /// Capacity of the master's LRU prefetch buffer, in nodes.
    pub buffer_capacity: usize,
    /// Watchdog deadline for one master↔worker request: a worker that has
    /// not answered within this window is declared hung and respawned from
    /// lineage. Generous by default — it only has to beat a genuine hang,
    /// not a slow shard.
    pub request_deadline: Duration,
    /// Respawn attempts per request before the worker is declared
    /// persistently failed and its shard is rebalanced onto a survivor.
    pub max_respawns: usize,
    /// Base of the deterministic exponential backoff between respawn
    /// attempts (`backoff_base * 2^attempt`, saturating).
    pub backoff_base: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_workers: 4,
            prefetch_batch: 256,
            buffer_capacity: 1 << 16,
            request_deadline: Duration::from_secs(5),
            max_respawns: 3,
            backoff_base: Duration::from_millis(1),
        }
    }
}

impl ClusterConfig {
    /// Validates the graph-independent knobs.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] for zero workers, a zero prefetch
    /// batch, a zero-capacity prefetch buffer, or a zero request deadline
    /// — each would panic or silently hang deeper in the runtime.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let reject = |message: &str| {
            Err(ClusterError::InvalidConfig { message: message.to_string() })
        };
        if self.num_workers == 0 {
            return reject("num_workers must be at least 1");
        }
        if self.prefetch_batch == 0 {
            return reject("prefetch_batch must be at least 1");
        }
        if self.buffer_capacity == 0 {
            return reject("buffer_capacity must be at least 1");
        }
        if self.request_deadline.is_zero() {
            return reject("request_deadline must be non-zero");
        }
        Ok(())
    }
}

/// Simulated master↔worker traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Fetch round trips (one request fan-out counts once).
    pub fetch_batches: u64,
    /// Node neighborhoods shipped to the master.
    pub nodes_fetched: u64,
    /// Adjacency lookups served from the prefetch buffer.
    pub buffer_hits: u64,
    /// Adjacency lookups that had to trigger a fetch.
    pub buffer_misses: u64,
    /// Parallel gain/stat initialization jobs dispatched.
    pub init_jobs: u64,
    /// Workers respawned from lineage after a failure (§V: Spark's
    /// "automated fault tolerance").
    pub worker_restarts: u64,
    /// Shards merged onto a survivor after a worker failed persistently
    /// (graceful degradation past the respawn budget).
    pub shards_rebalanced: u64,
    /// Injected or real hangs the watchdog timed out and recovered from
    /// (each one burned a deadline budget before the respawn ladder ran).
    pub hangs_absorbed: u64,
}

impl IoStats {
    /// Accumulates `other` into `self`, field by field.
    ///
    /// The exhaustive destructuring is deliberate: adding a field to
    /// [`IoStats`] without extending this merge is a compile error, not a
    /// silently dropped counter.
    pub fn merge(&mut self, other: &IoStats) {
        let IoStats {
            fetch_batches,
            nodes_fetched,
            buffer_hits,
            buffer_misses,
            init_jobs,
            worker_restarts,
            shards_rebalanced,
            hangs_absorbed,
        } = *other;
        self.fetch_batches += fetch_batches;
        self.nodes_fetched += nodes_fetched;
        self.buffer_hits += buffer_hits;
        self.buffer_misses += buffer_misses;
        self.init_jobs += init_jobs;
        self.worker_restarts += worker_restarts;
        self.shards_rebalanced += shards_rebalanced;
        self.hangs_absorbed += hangs_absorbed;
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        self.merge(&other);
    }
}

enum Request {
    /// Ship the adjacency of these owned nodes.
    Fetch(Vec<u32>),
    /// Compute initial switching gains for the owned range under the given
    /// region assignment and rational `k = num/den`.
    InitGains { regions: Arc<Vec<u8>>, num: i64, den: i64 },
    /// Compute `(friend_degree, rejections_received)` for the owned range.
    Stats,
    /// Count cross-cut friendships and rejections for the owned range.
    CutCounts { regions: Arc<Vec<u8>> },
    Shutdown,
}

/// Worker answers. Range-spanning responses carry the shard base so the
/// master can place results even when a rebalance has merged shards since
/// the request went out.
enum Response {
    Nodes(Vec<(u32, NodeData)>),
    /// Gains for the owned range, in id order.
    Gains { base: u32, gains: Vec<i64> },
    /// `(friend_degree, rejections_received)` for the owned range.
    Stats { base: u32, stats: Vec<(u32, u32)> },
    /// `(cross_friendships_counted_once, cross_rejections)`.
    CutCounts { base: u32, len: u32, friends: u64, rejections: u64 },
}

impl Response {
    /// The contiguous `[base, end)` node span this response covers, when
    /// the variant spans one (broadcast collection walks these spans).
    fn span(&self) -> Option<(u32, u32)> {
        match self {
            Response::Nodes(_) => None,
            Response::Gains { base, gains } => Some((*base, base + gains.len() as u32)),
            Response::Stats { base, stats } => Some((*base, base + stats.len() as u32)),
            Response::CutCounts { base, len, .. } => Some((*base, base + len)),
        }
    }
}

struct Worker {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    handle: Option<JoinHandle<()>>,
    range: (u32, u32),
    /// A request was sent (by the broadcast fan-out) and its response has
    /// not been collected yet.
    pending: bool,
}

/// A running worker pool holding the sharded augmented graph.
///
/// See the [module docs](self) for the failure model: respawn from
/// lineage, then rebalance onto survivors, then a structured
/// [`ClusterError`] — never a panic.
pub struct Cluster {
    graph: Arc<AugmentedGraph>,
    workers: RefCell<Vec<Worker>>,
    restarts: Cell<u64>,
    rebalances: Cell<u64>,
    num_nodes: usize,
    /// Current per-request watchdog deadline (monotonically tightened).
    watchdog: Cell<Duration>,
    max_respawns: usize,
    backoff_base: Duration,
    /// Armed distributed fault schedules (empty by default).
    faults: RefCell<ClusterFaults>,
    /// 1-based fetch batch counter, the clock injected deaths key on.
    fetch_seq: Cell<u64>,
    /// Injected deaths left to fire (kill-before-send), armed by a
    /// `worker_death@fetch=<n>[:x<m>]` schedule reaching its fetch.
    pending_deaths: Cell<u32>,
    /// Injected hangs left to fire (the next request is swallowed).
    pending_hangs: Cell<u32>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("num_workers", &self.workers.borrow().len())
            .field("num_nodes", &self.num_nodes)
            .field("restarts", &self.restarts.get())
            .field("rebalances", &self.rebalances.get())
            .finish()
    }
}

struct Shard {
    base: u32,
    nodes: Vec<NodeData>,
}

impl Shard {
    fn data(&self, id: u32) -> &NodeData {
        &self.nodes[(id - self.base) as usize]
    }

    fn serve(self, rx: Receiver<Request>, tx: Sender<Response>) {
        while let Ok(req) = rx.recv() { // xtask-allow: channel-discipline: shard serve loop parks until the owner sends a request; shutdown arrives as Request::Shutdown or a hangup, so blocking cannot wedge the cluster
            match req {
                Request::Shutdown => break,
                Request::Fetch(ids) => {
                    let out =
                        ids.into_iter().map(|id| (id, self.data(id).clone())).collect();
                    let _ = tx.send(Response::Nodes(out));
                }
                Request::Stats => {
                    let out = self
                        .nodes
                        .iter()
                        .map(|n| (n.friends.len() as u32, n.rejectors_of.len() as u32))
                        .collect();
                    let _ = tx.send(Response::Stats { base: self.base, stats: out });
                }
                Request::CutCounts { regions } => {
                    let mut cf = 0u64;
                    let mut cr = 0u64;
                    for (i, n) in self.nodes.iter().enumerate() {
                        let u = self.base + i as u32;
                        let ru = regions[u as usize];
                        for &v in &n.friends {
                            if u < v && ru != regions[v as usize] {
                                cf += 1;
                            }
                        }
                        if ru == LEGIT {
                            for &s in &n.rejected_by {
                                if regions[s as usize] == SUSPECT {
                                    cr += 1;
                                }
                            }
                        }
                    }
                    let _ = tx.send(Response::CutCounts {
                        base: self.base,
                        len: self.nodes.len() as u32,
                        friends: cf,
                        rejections: cr,
                    });
                }
                Request::InitGains { regions, num, den } => {
                    let gains = self
                        .nodes
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            let u = self.base + i as u32;
                            let (df, dr) = switch_delta(n, u, &regions);
                            num * dr - den * df
                        })
                        .collect();
                    let _ = tx.send(Response::Gains { base: self.base, gains });
                }
            }
        }
    }
}

/// `(Δcross_friendships, Δcross_rejections)` if `u` switched regions —
/// the same arithmetic as `rejection::Partition::switch_delta`, expressed
/// over shipped [`NodeData`].
fn switch_delta(n: &NodeData, u: u32, regions: &[u8]) -> (i64, i64) {
    let from = regions[u as usize];
    let mut df = 0i64;
    for &v in &n.friends {
        if regions[v as usize] == from {
            df += 1;
        } else {
            df -= 1;
        }
    }
    let mut dr = 0i64;
    if from == LEGIT {
        for &r in &n.rejectors_of {
            if regions[r as usize] == LEGIT {
                dr += 1;
            }
        }
        for &s in &n.rejected_by {
            if regions[s as usize] == SUSPECT {
                dr -= 1;
            }
        }
    } else {
        for &r in &n.rejectors_of {
            if regions[r as usize] == LEGIT {
                dr -= 1;
            }
        }
        for &s in &n.rejected_by {
            if regions[s as usize] == SUSPECT {
                dr += 1;
            }
        }
    }
    (df, dr)
}

fn spawn_worker(
    graph: &Arc<AugmentedGraph>,
    lo: u32,
    hi: u32,
    wi: usize,
) -> Result<Worker, ClusterError> {
    let (req_tx, req_rx) = unbounded::<Request>();
    let (resp_tx, resp_rx) = unbounded::<Response>();
    let lineage = Arc::clone(graph);
    let handle = std::thread::Builder::new()
        .name(format!("rejecto-worker-{wi}"))
        .spawn(move || {
            // The shard is (re)built from the lineage inside the worker.
            let nodes: Vec<NodeData> = (lo..hi)
                .map(|id| {
                    let id = NodeId(id);
                    NodeData {
                        friends: lineage.friends(id).iter().map(|v| v.0).collect(),
                        rejected_by: lineage.rejected_by(id).iter().map(|v| v.0).collect(),
                        rejectors_of: lineage.rejectors_of(id).iter().map(|v| v.0).collect(),
                    }
                })
                .collect();
            Shard { base: lo, nodes }.serve(req_rx, resp_tx)
        })
        .map_err(|e| ClusterError::SpawnFailed { worker: wi, message: e.to_string() })?;
    Ok(Worker { tx: req_tx, rx: resp_rx, handle: Some(handle), range: (lo, hi), pending: false })
}

/// Shuts a worker down and reclaims its thread. Channels are dropped
/// *before* the join so a hung worker (blocked with no shutdown pending)
/// observes its request channel closing and exits instead of deadlocking
/// the master.
fn reap(worker: Worker) {
    let Worker { tx, rx, handle, .. } = worker;
    let _ = tx.send(Request::Shutdown);
    drop(tx);
    drop(rx);
    if let Some(h) = handle {
        let _ = h.join();
    }
}

impl Cluster {
    /// Shards `g` across `config.num_workers` worker threads. The graph is
    /// retained on the master as the recovery lineage.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] when the config fails
    /// [`ClusterConfig::validate`] or asks for more workers (shards) than
    /// the graph has nodes; [`ClusterError::SpawnFailed`] when the OS
    /// refuses a worker thread.
    pub fn new(g: &AugmentedGraph, config: &ClusterConfig) -> Result<Self, ClusterError> {
        Cluster::from_arc(Arc::new(g.clone()), config)
    }

    /// Shards an already-shared graph (avoids the clone in
    /// [`Cluster::new`]).
    ///
    /// # Errors
    ///
    /// As [`Cluster::new`].
    pub fn from_arc(
        graph: Arc<AugmentedGraph>,
        config: &ClusterConfig,
    ) -> Result<Self, ClusterError> {
        config.validate()?;
        let n = graph.num_nodes();
        let w = config.num_workers;
        if w > n.max(1) {
            return Err(ClusterError::InvalidConfig {
                message: format!("num_workers ({w}) exceeds the graph's {n} node(s)"),
            });
        }
        // Balanced contiguous shards: every shard non-empty for n > 0.
        let workers = (0..w)
            .map(|wi| {
                let lo = (wi * n / w) as u32;
                let hi = ((wi + 1) * n / w) as u32;
                spawn_worker(&graph, lo, hi, wi)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Cluster {
            graph,
            workers: RefCell::new(workers),
            restarts: Cell::new(0),
            rebalances: Cell::new(0),
            num_nodes: n,
            watchdog: Cell::new(config.request_deadline),
            max_respawns: config.max_respawns,
            backoff_base: config.backoff_base,
            faults: RefCell::new(ClusterFaults::default()),
            fetch_seq: Cell::new(0),
            pending_deaths: Cell::new(0),
            pending_hangs: Cell::new(0),
        })
    }

    /// Number of users the cluster holds.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of worker shards (shrinks when shards are rebalanced).
    pub fn num_workers(&self) -> usize {
        self.workers.borrow().len()
    }

    /// Total workers respawned from lineage so far.
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.get()
    }

    /// Total shards merged onto a survivor so far.
    pub fn shards_rebalanced(&self) -> u64 {
        self.rebalances.get()
    }

    /// Arms the distributed fault schedules of a plan on this cluster
    /// (probes are free when the schedule is empty). Clones of one
    /// [`ClusterFaults`] share consumption state, so a schedule armed on
    /// successive per-round clusters still fires exactly once per run.
    pub fn arm_faults(&self, faults: ClusterFaults) {
        *self.faults.borrow_mut() = faults;
    }

    /// A shared handle to the armed fault schedules.
    pub(crate) fn faults_handle(&self) -> ClusterFaults {
        self.faults.borrow().clone()
    }

    /// Arms `n` injected hangs: each swallows one request so only the
    /// watchdog can notice that no answer is coming.
    pub(crate) fn arm_hang(&self, n: u32) {
        self.pending_hangs.set(self.pending_hangs.get() + n);
    }

    /// Tightens the per-request watchdog (floored so a near-expired run
    /// deadline cannot misdiagnose healthy workers as hung).
    pub fn tighten_watchdog(&self, limit: Duration) {
        let floored = limit.max(WATCHDOG_FLOOR);
        self.watchdog.set(self.watchdog.get().min(floored));
    }

    /// Kills worker `wi` (test hook simulating a crash). The next request
    /// routed to it triggers a lineage respawn.
    ///
    /// # Panics
    ///
    /// Panics if `wi` is out of range.
    pub fn fail_worker(&self, wi: usize) {
        let mut workers = self.workers.borrow_mut();
        let w = &mut workers[wi];
        let _ = w.tx.send(Request::Shutdown);
        if let Some(h) = w.handle.take() {
            let _ = h.join();
        }
    }

    fn owner(&self, id: u32) -> usize {
        // Shard ranges are sorted, disjoint, and contiguous — and stay so
        // across rebalances (a dead shard merges into an adjacent one) —
        // so binary search stays valid for the cluster's whole life.
        let workers = self.workers.borrow();
        workers
            .partition_point(|w| w.range.1 <= id)
            .min(workers.len() - 1)
    }

    /// Replaces worker `wi` with a fresh spawn of the same shard range.
    fn respawn(&self, wi: usize) -> Result<(), ClusterError> {
        let old = {
            let mut workers = self.workers.borrow_mut();
            let (lo, hi) = workers[wi].range;
            let fresh = spawn_worker(&self.graph, lo, hi, wi)?;
            std::mem::replace(&mut workers[wi], fresh)
        };
        self.restarts.set(self.restarts.get() + 1);
        reap(old);
        Ok(())
    }

    /// Merges the persistently failing worker `wi`'s shard onto an
    /// adjacent survivor and returns the index now owning the merged
    /// range.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerLost`] when `wi` is the last worker.
    fn rebalance(
        &self,
        wi: usize,
        attempts: usize,
        io: &mut IoStats,
    ) -> Result<usize, ClusterError> {
        let (dead, old) = {
            let mut workers = self.workers.borrow_mut();
            if workers.len() <= 1 {
                return Err(ClusterError::WorkerLost { worker: wi, attempts });
            }
            // Merge left, except for the first shard which merges right;
            // either way the union is contiguous and range order holds.
            let neighbor = if wi > 0 { wi - 1 } else { wi + 1 };
            let (lo, hi) = workers[wi].range;
            let (nlo, nhi) = workers[neighbor].range;
            let fresh =
                spawn_worker(&self.graph, lo.min(nlo), hi.max(nhi), neighbor.min(wi))?;
            let dead = workers.remove(wi);
            let target = if wi > 0 { wi - 1 } else { 0 };
            let old = std::mem::replace(&mut workers[target], fresh);
            (dead, old)
        };
        self.rebalances.set(self.rebalances.get() + 1);
        io.shards_rebalanced += 1;
        reap(dead);
        reap(old);
        Ok(if wi > 0 { wi - 1 } else { 0 })
    }

    /// Sends `make_req` to worker `wi` and awaits the response through the
    /// full recovery ladder: watchdog-bounded receive, bounded respawns
    /// with deterministic backoff, then shard rebalancing.
    fn exchange(
        &self,
        mut wi: usize,
        make_req: &dyn Fn() -> Request,
        io: &mut IoStats,
    ) -> Result<Response, ClusterError> {
        let mut attempt: usize = 0;
        loop {
            // Every attempt gets ONE watchdog interval as its total
            // blocking budget. Draining a stale in-flight response and
            // waiting for the fresh one draw from the same budget — the
            // waits used to each burn a full interval, stacking past
            // `ClusterConfig::request_deadline` when recovering a hang.
            let budget = self.watchdog.get();
            let clock = rejecto_obs::Stopwatch::start();
            let left = || budget.saturating_sub(clock.elapsed());
            // Injected death: the target dies before it can see the
            // request (and keeps dying on respawn while the schedule has
            // deaths left).
            if self.pending_deaths.get() > 0 {
                self.pending_deaths.set(self.pending_deaths.get() - 1);
                self.fail_worker(wi);
            }
            let hang = self.pending_hangs.get() > 0;
            if hang {
                self.pending_hangs.set(self.pending_hangs.get() - 1);
                io.hangs_absorbed += 1;
            }
            let outcome = {
                let mut workers = self.workers.borrow_mut();
                let w = &mut workers[wi];
                let sent = if hang {
                    // The request (or the in-flight response) is lost in
                    // the simulated network; nothing will come back and
                    // only the watchdog below can tell.
                    if w.pending {
                        let _ = w.rx.recv_timeout(left());
                        w.pending = false;
                    }
                    true
                } else if w.pending {
                    true
                } else {
                    match w.tx.send(make_req()) {
                        Ok(()) => {
                            w.pending = true;
                            true
                        }
                        Err(_) => false,
                    }
                };
                if sent && !hang {
                    match w.rx.recv_timeout(left()) {
                        Ok(resp) => {
                            w.pending = false;
                            Some(resp)
                        }
                        Err(_) => None,
                    }
                } else if sent {
                    // The swallowed request: wait out whatever is left of
                    // this attempt's watchdog budget.
                    match w.rx.recv_timeout(left()) {
                        Ok(_) | Err(_) => None,
                    }
                } else {
                    None
                }
            };
            if let Some(resp) = outcome {
                return Ok(resp);
            }
            if attempt < self.max_respawns {
                // Deterministic exponential backoff before the respawn,
                // never longer than one watchdog interval.
                let pause =
                    self.backoff_base.saturating_mul(1u32 << attempt.min(16)).min(budget);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
                self.respawn(wi)?;
                io.worker_restarts += 1;
            } else {
                wi = self.rebalance(wi, attempt, io)?;
                attempt = 0;
            }
        }
    }

    /// Broadcasts a request to every worker and collects the responses in
    /// shard order, recovering failed workers along the way.
    fn broadcast(
        &self,
        make_req: &dyn Fn() -> Request,
        io: &mut IoStats,
    ) -> Result<Vec<Response>, ClusterError> {
        // Optimistic fan-out: send to every live worker up front so the
        // shards compute in parallel; failures fall back to the
        // recovering exchange below.
        {
            let mut workers = self.workers.borrow_mut();
            for w in workers.iter_mut() {
                if !w.pending && w.range.0 < w.range.1 && w.tx.send(make_req()).is_ok() {
                    w.pending = true;
                }
            }
        }
        // Collect by node-id coverage rather than worker index: if a
        // mid-collection rebalance merges shards, the merged worker's
        // recomputed response covers the union span. When that span starts
        // before `next`, it supersedes already-collected responses (the
        // merge absorbed a survivor's shard); those are discarded — the
        // recomputation is deterministic over immutable lineage, so the
        // superseding response is byte-identical on the overlap.
        let n = self.num_nodes as u32;
        let mut out: Vec<Response> = Vec::with_capacity(self.num_workers());
        let mut next: u32 = 0;
        while next < n {
            let wi = self.owner(next);
            let resp = self.exchange(wi, make_req, io)?;
            match resp.span() {
                Some((base, end)) if base <= next && end > next => {
                    while out
                        .last()
                        .and_then(Response::span)
                        .is_some_and(|(b, _)| b >= base)
                    {
                        out.pop();
                    }
                    out.push(resp);
                    next = end;
                }
                _ => {
                    return Err(ClusterError::ProtocolViolation {
                        message: format!(
                            "broadcast response from worker {wi} does not cover \
                             nodes starting at {next}"
                        ),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Fetches adjacency for `ids` (grouped by owner; one fan-out counts as
    /// one batch in the stats).
    fn fetch(&self, ids: &[u32], io: &mut IoStats) -> Result<Vec<(u32, NodeData)>, ClusterError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        // Injected death schedules are keyed on this 1-based fetch clock.
        self.fetch_seq.set(self.fetch_seq.get() + 1);
        let due = self.faults.borrow().deaths_at(self.fetch_seq.get());
        if due > 0 {
            self.pending_deaths.set(self.pending_deaths.get() + due);
        }
        let mut per_worker: Vec<Vec<u32>> = vec![Vec::new(); self.num_workers()];
        for &id in ids {
            per_worker[self.owner(id)].push(id);
        }
        io.fetch_batches += 1;
        io.nodes_fetched += ids.len() as u64;
        let mut out = Vec::with_capacity(ids.len());
        for batch in per_worker.into_iter().filter(|b| !b.is_empty()) {
            // Re-resolve the owner per batch: a rebalance while serving an
            // earlier batch shifts worker indices.
            let wi = self.owner(batch[0]);
            match self.exchange(wi, &|| Request::Fetch(batch.clone()), io)? {
                Response::Nodes(nodes) => out.extend(nodes),
                _ => {
                    return Err(ClusterError::ProtocolViolation {
                        message: format!("worker {wi} answered a fetch with a non-Nodes response"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Parallel per-node `(friend_degree, rejections_received)`.
    fn stats(&self, io: &mut IoStats) -> Result<Vec<(u32, u32)>, ClusterError> {
        io.init_jobs += 1;
        let mut out = vec![(0u32, 0u32); self.num_nodes];
        for resp in self.broadcast(&|| Request::Stats, io)? {
            match resp {
                Response::Stats { base, stats } => {
                    for (i, v) in stats.into_iter().enumerate() {
                        out[base as usize + i] = v;
                    }
                }
                _ => {
                    return Err(ClusterError::ProtocolViolation {
                        message: "stats broadcast yielded a non-Stats response".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Parallel initial gains for all nodes under `regions`.
    fn init_gains(
        &self,
        regions: &Arc<Vec<u8>>,
        k: KParam,
        io: &mut IoStats,
    ) -> Result<Vec<i64>, ClusterError> {
        io.init_jobs += 1;
        let mut out = vec![0i64; self.num_nodes];
        let make = || Request::InitGains {
            regions: Arc::clone(regions),
            num: k.num() as i64,
            den: k.den() as i64,
        };
        for resp in self.broadcast(&make, io)? {
            match resp {
                Response::Gains { base, gains } => {
                    for (i, v) in gains.into_iter().enumerate() {
                        out[base as usize + i] = v;
                    }
                }
                _ => {
                    return Err(ClusterError::ProtocolViolation {
                        message: "init-gains broadcast yielded a non-Gains response".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Parallel cross-cut counts under `regions`.
    fn cut_counts(
        &self,
        regions: &Arc<Vec<u8>>,
        io: &mut IoStats,
    ) -> Result<(u64, u64), ClusterError> {
        io.init_jobs += 1;
        let mut cf = 0u64;
        let mut cr = 0u64;
        let make = || Request::CutCounts { regions: Arc::clone(regions) };
        for resp in self.broadcast(&make, io)? {
            match resp {
                Response::CutCounts { friends, rejections, .. } => {
                    cf += friends;
                    cr += rejections;
                }
                _ => {
                    return Err(ClusterError::ProtocolViolation {
                        message: "cut-counts broadcast yielded a non-CutCounts response"
                            .to_string(),
                    })
                }
            }
        }
        Ok((cf, cr))
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let mut workers = self.workers.borrow_mut();
        for w in workers.iter() {
            let _ = w.tx.send(Request::Shutdown);
        }
        for w in workers.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Result of a distributed MAAR solve.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The suspect region of the winning cut, ascending.
    pub suspects: Vec<NodeId>,
    /// Aggregate acceptance rate of the winning cut (`None` if no
    /// non-degenerate cut was found).
    pub acceptance_rate: Option<f64>,
    /// The winning sweep `k`.
    pub k: Option<f64>,
    /// The winning sweep `k` as the exact rational it was solved with.
    pub k_exact: Option<KParam>,
    /// Simulated traffic counters.
    pub io: IoStats,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Whether the sweep ran every `k` ([`Completion::Complete`]) or a
    /// budget tripped mid-sweep; the half-finished `k` is rolled back and
    /// the completed sweep indices are reported in the `Partial` payload.
    pub completion: Completion,
    /// Degraded-operation diagnostics surfaced through the run. Worker
    /// respawns and shard rebalances are *not* failures (their replays are
    /// byte-identical) — they are counted in [`IoStats`] instead.
    pub failures: Vec<RuntimeError>,
}

/// Distributed MAAR solver: the same geometric-`k` sweep of extended KL as
/// `rejecto_core::MaarSolver`, executed against a [`Cluster`] with the §V
/// data layout (status + bucket list on the master, adjacency on the
/// workers, prefetch through an LRU buffer).
#[derive(Debug, Clone)]
pub struct DistributedMaar {
    cluster_config: ClusterConfig,
    rejecto: RejectoConfig,
    obs: Option<rejecto_obs::Obs>,
}

impl DistributedMaar {
    /// Creates a solver.
    pub fn new(cluster_config: ClusterConfig, rejecto: RejectoConfig) -> Self {
        DistributedMaar { cluster_config, rejecto, obs: None }
    }

    /// Attaches a metrics registry. The distributed sweep records the same
    /// deterministic span/counter vocabulary as the single-process solver
    /// (`detect/round/sweep/...`, `kl/passes`, `kl/moves_committed`,
    /// `kl/bucket_adjusts`), so worker count is invisible outside the
    /// `timings` section.
    pub fn set_obs(&mut self, obs: rejecto_obs::Obs) {
        self.obs = Some(obs);
    }

    /// The cluster sizing this solver spawns with.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster_config
    }

    /// Solves MAAR on `g` using a freshly spawned cluster.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ClusterFailed`] when the cluster cannot be built or
    /// loses every worker.
    pub fn solve(&self, g: &AugmentedGraph) -> Result<DistributedOutcome, RuntimeError> {
        let cluster = Cluster::new(g, &self.cluster_config)?;
        self.solve_on(&cluster, g.num_nodes())
    }

    /// Solves MAAR against an existing cluster (graph already sharded),
    /// arming the configured budgets and fault plan for this one solve.
    ///
    /// # Errors
    ///
    /// As [`DistributedMaar::solve`].
    pub fn solve_on(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
    ) -> Result<DistributedOutcome, RuntimeError> {
        let token = CancelToken::new();
        if let Some(deadline) = self.rejecto.budget.deadline {
            token.set_deadline_in(deadline);
        }
        if let Some(passes) = self.rejecto.budget.max_kl_passes {
            token.set_pass_budget(passes);
        }
        let faults = ClusterFaults::new(&self.rejecto.faults);
        if let Some(deadline) = faults.deadline() {
            // The token keeps the tighter of the two deadlines.
            token.set_deadline_in(deadline);
        }
        cluster.arm_faults(faults);
        self.solve_monitored_on(cluster, num_nodes, &[], &[], &token)
    }

    /// The monitored solve the distributed detector drives round by round:
    /// budgets arrive through a shared `token` (armed by the caller) and
    /// fault schedules through the cluster. Seed ids are in the cluster's
    /// (residual) id space.
    pub(crate) fn solve_monitored_on(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
        legit: &[NodeId],
        spammer: &[NodeId],
        token: &CancelToken,
    ) -> Result<DistributedOutcome, RuntimeError> {
        let out = self.solve_with_placement(
            cluster,
            num_nodes,
            legit,
            spammer,
            self.rejecto.initial_placement,
            token,
        )?;
        if !out.suspects.is_empty()
            || matches!(out.completion, Completion::Partial { .. })
            || self.rejecto.initial_placement == InitialPlacement::AllLegit
        {
            return Ok(out);
        }
        // Same fallback as the single-process solver: if the warm start
        // steered every k past the admissible cut size, retry all-legit.
        let mut retry = self.solve_with_placement(
            cluster,
            num_nodes,
            legit,
            spammer,
            InitialPlacement::AllLegit,
            token,
        )?;
        retry.io.merge(&out.io);
        retry.elapsed += out.elapsed;
        let mut failures = out.failures;
        failures.extend(std::mem::take(&mut retry.failures));
        retry.failures = failures;
        Ok(retry)
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_with_placement(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
        legit: &[NodeId],
        spammer: &[NodeId],
        placement: InitialPlacement,
        token: &CancelToken,
    ) -> Result<DistributedOutcome, RuntimeError> {
        let start = rejecto_obs::Stopwatch::start();
        let mut io = IoStats::default();
        let faults = cluster.faults_handle();
        let _sweep_span = self.obs.as_ref().map(|o| o.span("detect/round/sweep"));

        // Warm start needs per-node (degree, rejections) — an RDD job. As
        // in the single-process solver, the warm suspect set is capped at
        // the admissible region size (highest rejection ratios first) and
        // seeds override the placement afterwards.
        let stats = cluster.stats(&mut io)?;
        let warm_cap =
            (self.rejecto.max_suspect_fraction * num_nodes as f64).floor() as usize;
        let mut warm: Vec<u8> = match placement {
            InitialPlacement::AllLegit => vec![LEGIT; num_nodes],
            InitialPlacement::RejectionRatio(t) => {
                let mut candidates: Vec<(f64, usize)> = stats
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &(f, r))| {
                        let total = f as f64 + r as f64;
                        let ratio = if total > 0.0 { r as f64 / total } else { return None };
                        (ratio >= t).then_some((ratio, i))
                    })
                    .collect();
                candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut warm = vec![LEGIT; num_nodes];
                for (_, i) in candidates.into_iter().take(warm_cap) {
                    warm[i] = SUSPECT;
                }
                warm
            }
            #[allow(unreachable_patterns)]
            _ => vec![LEGIT; num_nodes],
        };
        // Seeds are pinned: pre-placed in their region and locked out of
        // the bucket list so KL can never switch them (§IV-F).
        let mut locked = vec![false; num_nodes];
        for s in legit {
            warm[s.index()] = LEGIT;
            locked[s.index()] = true;
        }
        for s in spammer {
            warm[s.index()] = SUSPECT;
            locked[s.index()] = true;
        }
        let gain_bound = {
            let mut b = 1i64;
            let max_num = (self.rejecto.k_max * self.rejecto.k_denominator as f64).ceil() as i64 + 1;
            for &(f, r) in &stats {
                // rejectors + rejectees both bounded by total incident
                // rejections; use a safe overestimate.
                b = b.max(
                    self.rejecto.k_denominator as i64 * f as i64 + max_num * 2 * r as i64 + max_num,
                );
            }
            b
        };

        let mut best: Option<(Vec<u8>, f64, KParam)> = None;
        let cap = (self.rejecto.max_suspect_fraction * num_nodes as f64).floor() as usize;
        // The buffer persists across the whole k sweep — the graph data it
        // caches is k-independent ("we cache intermediate data sets and
        // results in memory, reducing the cost of their future reuse").
        let mut buffer: LruCache<NodeData> = LruCache::new(self.cluster_config.buffer_capacity);
        let mut completed: Vec<usize> = Vec::new();
        let mut interrupted = false;
        for (idx, k) in self.rejecto.k_sweep().into_iter().enumerate() {
            if token.is_cancelled() {
                interrupted = true;
                break;
            }
            // Bound a potential hang by the remaining run budget, and arm
            // any injected hang scheduled for this sweep index.
            if let Some(remaining) = token.time_remaining() {
                cluster.tighten_watchdog(remaining);
            }
            if faults.take_hang(idx) {
                cluster.arm_hang(1);
            }
            let _k_span = self.obs.as_ref().map(|o| o.span("detect/round/sweep/k_index"));
            let Some((regions, cf, cr)) =
                self.run_kl(cluster, num_nodes, &warm, &locked, k, gain_bound, &mut buffer, token, &mut io)?
            else {
                // A budget tripped mid-k: the half-finished k is rolled
                // back (its tentative regions are discarded wholesale).
                interrupted = true;
                break;
            };
            completed.push(idx);
            let suspects = regions.iter().filter(|&&r| r == SUSPECT).count();
            if suspects == 0 || suspects > cap || cf + cr == 0 {
                continue;
            }
            let ac = cf as f64 / (cf + cr) as f64;
            if best.as_ref().is_none_or(|(_, b, _)| ac < *b) {
                best = Some((regions, ac, k));
            }
        }

        let completion = if interrupted {
            Completion::Partial {
                completed_rounds: 0,
                completed_k_indices: completed,
                reason: interrupt_reason(token),
            }
        } else {
            Completion::Complete
        };
        let elapsed = start.elapsed();
        // An interrupted sweep reports no cut, like the single-process
        // solver: a partial sweep's best-so-far is not the MAAR cut.
        let best = if interrupted { None } else { best };
        Ok(match best {
            Some((regions, ac, k)) => DistributedOutcome {
                suspects: regions
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r == SUSPECT)
                    .map(|(i, _)| NodeId::from_index(i))
                    .collect(),
                acceptance_rate: Some(ac),
                k: Some(k.value()),
                k_exact: Some(k),
                io,
                elapsed,
                completion,
                failures: Vec::new(),
            },
            None => DistributedOutcome {
                suspects: Vec::new(),
                acceptance_rate: None,
                k: None,
                k_exact: None,
                io,
                elapsed,
                completion,
                failures: Vec::new(),
            },
        })
    }

    /// One extended-KL optimization for a fixed `k` on the cluster.
    /// Returns the final regions and cross-cut counts, or `None` when the
    /// run budget tripped at a pass boundary (the k is rolled back).
    #[allow(clippy::too_many_arguments)]
    fn run_kl(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
        warm: &[u8],
        locked: &[bool],
        k: KParam,
        gain_bound: i64,
        buffer: &mut LruCache<NodeData>,
        token: &CancelToken,
        io: &mut IoStats,
    ) -> Result<Option<(Vec<u8>, u64, u64)>, RuntimeError> {
        let num = k.num() as i64;
        let den = k.den() as i64;
        let mut regions = Arc::new(warm.to_vec());
        let (mut cf, mut cr) = cluster.cut_counts(&regions, io)?;
        let mut passes_run = 0u64;
        let mut moves_committed = 0u64;
        let mut bucket_adjusts = 0u64;

        for _pass in 0..self.rejecto.max_kl_passes {
            if !token.consume_pass() {
                return Ok(None);
            }
            passes_run += 1;
            let _pass_span =
                self.obs.as_ref().map(|o| o.span("detect/round/sweep/k_index/kl_pass"));
            // Tentative state for this pass.
            let mut tmp: Vec<u8> = regions.as_ref().clone();
            let gains = cluster.init_gains(&regions, k, io)?;
            let mut bucket = BucketList::new(num_nodes, -gain_bound, gain_bound);
            for (i, &g) in gains.iter().enumerate() {
                if !locked[i] {
                    bucket.insert(i as u32, g);
                }
            }

            let mut seq: Vec<(u32, i64, i64, i64)> = Vec::with_capacity(num_nodes);
            while !bucket.is_empty() {
                // Ensure the next pops are resident: prefetch top-gain ids.
                let top = bucket.peek_top(self.cluster_config.prefetch_batch);
                let missing: Vec<u32> =
                    top.iter().copied().filter(|id| !buffer.contains(id)).collect();
                if !missing.is_empty() {
                    io.buffer_misses += missing.len() as u64;
                    for (id, data) in cluster.fetch(&missing, io)? {
                        buffer.insert(id, data);
                    }
                }
                for _ in 0..top.len() {
                    let Some((u, gain)) = bucket.pop_max() else { break };
                    if !buffer.contains(&u) {
                        // Gain updates reorder the bucket between pops, so
                        // the max can fall outside the prefetched set.
                        io.buffer_misses += 1;
                        let fetched = cluster.fetch(&[u], io)?;
                        let d = fetched.into_iter().next().expect("owner must return node").1;
                        buffer.insert(u, d);
                    } else {
                        io.buffer_hits += 1;
                    }
                    let data = buffer.get(&u).expect("just ensured present");
                    let from = tmp[u as usize];
                    let (df, dr) = switch_delta(data, u, &tmp);
                    debug_assert_eq!(gain, num * dr - den * df, "stale distributed gain");
                    tmp[u as usize] = 1 - from;
                    let now_in = tmp[u as usize];
                    seq.push((u, gain, df, dr));

                    for &v in &data.friends {
                        if bucket.contains(v) {
                            let t = if tmp[v as usize] == from { 1 } else { -1 };
                            bucket.adjust(v, 2 * den * t);
                            bucket_adjusts += 1;
                        }
                    }
                    for &v in &data.rejected_by {
                        if bucket.contains(v) {
                            let da = if now_in == LEGIT { 1 } else { -1 };
                            let s_v = if tmp[v as usize] == LEGIT { 1 } else { -1 };
                            bucket.adjust(v, num * s_v * da);
                            bucket_adjusts += 1;
                        }
                    }
                    for &v in &data.rejectors_of {
                        if bucket.contains(v) {
                            let db = if now_in == SUSPECT { 1 } else { -1 };
                            let s_v = if tmp[v as usize] == LEGIT { 1 } else { -1 };
                            bucket.adjust(v, -num * s_v * db);
                            bucket_adjusts += 1;
                        }
                    }
                }
            }

            // Best strictly positive prefix.
            let mut best: Option<usize> = None;
            let mut best_gain = 0i64;
            let mut cum = 0i64;
            for (i, &(_, gain, _, _)) in seq.iter().enumerate() {
                cum += gain;
                if cum > best_gain {
                    best_gain = cum;
                    best = Some(i);
                }
            }
            let Some(end) = best else { break };
            let mut committed: Vec<u8> = regions.as_ref().clone();
            for &(u, _, df, dr) in &seq[..=end] {
                committed[u as usize] = 1 - committed[u as usize];
                cf = cf.checked_add_signed(df).expect("cut counter underflow");
                cr = cr.checked_add_signed(dr).expect("cut counter underflow");
                moves_committed += 1;
            }
            regions = Arc::new(committed);
        }
        // Flushed only for a k that ran to convergence: a budget-tripped k
        // is rolled back wholesale (the early return above), so its partial
        // work must not leak into the deterministic counters either.
        if let Some(obs) = &self.obs {
            obs.incr("kl/passes", passes_run);
            obs.incr("kl/moves_committed", moves_committed);
            obs.incr("kl/bucket_adjusts", bucket_adjusts);
        }
        Ok(Some((
            Arc::try_unwrap(regions).unwrap_or_else(|a| a.as_ref().clone()),
            cf,
            cr,
        )))
    }
}

/// Maps the token's trip cause onto the report vocabulary.
pub(crate) fn interrupt_reason(token: &CancelToken) -> InterruptReason {
    match token.reason() {
        Some(CancelReason::Deadline) => InterruptReason::Deadline,
        Some(CancelReason::PassBudget) => InterruptReason::PassBudget,
        _ => InterruptReason::Cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rejecto_core::MaarSolver;
    use simulator::{Scenario, ScenarioConfig};
    use socialgraph::generators::BarabasiAlbert;

    fn sim_graph() -> AugmentedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = BarabasiAlbert::new(300, 4).generate(&mut rng);
        Scenario::new(ScenarioConfig {
            num_fakes: 40,
            requests_per_spammer: 12,
            ..ScenarioConfig::default()
        })
        .run(&host, 11)
        .graph
    }

    #[test]
    fn cluster_shards_cover_all_nodes() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        assert_eq!(cluster.num_nodes(), 340);
        assert_eq!(cluster.num_workers(), 4);
        let mut io = IoStats::default();
        let stats = cluster.stats(&mut io).expect("healthy cluster serves stats");
        for u in g.nodes() {
            assert_eq!(stats[u.index()].0 as usize, g.friend_degree(u));
            assert_eq!(stats[u.index()].1 as usize, g.rejections_received(u));
        }
    }

    #[test]
    fn fetch_returns_correct_adjacency() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        let mut io = IoStats::default();
        let ids = [0u32, 150, 339];
        let fetched = cluster.fetch(&ids, &mut io).expect("healthy cluster serves fetches");
        assert_eq!(fetched.len(), 3);
        for (id, data) in fetched {
            let expect: Vec<u32> = g.friends(NodeId(id)).iter().map(|v| v.0).collect();
            assert_eq!(data.friends, expect, "node {id}");
        }
        assert_eq!(io.fetch_batches, 1);
        assert_eq!(io.nodes_fetched, 3);
    }

    #[test]
    fn distributed_solve_matches_single_node_solver() {
        let g = sim_graph();
        let config = RejectoConfig::default();
        let local = MaarSolver::new(config.clone()).solve(&g, &[], &[]).expect("local cut");
        let dist = DistributedMaar::new(ClusterConfig::default(), config)
            .solve(&g)
            .expect("distributed solve succeeds");
        assert_eq!(dist.suspects, local.suspects(), "partitions diverged");
        let ac = dist.acceptance_rate.expect("distributed cut");
        assert!((ac - local.acceptance_rate).abs() < 1e-12);
        assert_eq!(dist.completion, Completion::Complete);
        assert!(dist.failures.is_empty());
    }

    #[test]
    fn prefetching_served_most_lookups_from_buffer() {
        let g = sim_graph();
        let dist = DistributedMaar::new(ClusterConfig::default(), RejectoConfig::default());
        let out = dist.solve(&g).expect("distributed solve succeeds");
        assert!(out.io.buffer_hits > 0);
        // With batch prefetch, fetch round trips must be far fewer than
        // node lookups.
        assert!(
            out.io.fetch_batches * 8 < out.io.buffer_hits + out.io.buffer_misses,
            "batches {} vs lookups {}",
            out.io.fetch_batches,
            out.io.buffer_hits + out.io.buffer_misses
        );
    }

    #[test]
    fn tiny_buffer_forces_more_fetches_than_large_buffer() {
        let g = sim_graph();
        let rejecto = RejectoConfig::default();
        let small = DistributedMaar::new(
            ClusterConfig { buffer_capacity: 8, prefetch_batch: 4, ..Default::default() },
            rejecto.clone(),
        )
        .solve(&g)
        .expect("distributed solve succeeds");
        let large = DistributedMaar::new(ClusterConfig::default(), rejecto)
            .solve(&g)
            .expect("distributed solve succeeds");
        assert!(small.io.nodes_fetched > large.io.nodes_fetched);
        assert_eq!(small.suspects, large.suspects, "buffering must not change the cut");
    }

    #[test]
    fn single_worker_cluster_works() {
        let g = sim_graph();
        let dist = DistributedMaar::new(
            ClusterConfig { num_workers: 1, ..Default::default() },
            RejectoConfig::default(),
        )
        .solve(&g)
        .expect("distributed solve succeeds");
        assert!(!dist.suspects.is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected_structurally() {
        let g = sim_graph();
        for (config, needle) in [
            (ClusterConfig { num_workers: 0, ..Default::default() }, "num_workers"),
            (ClusterConfig { prefetch_batch: 0, ..Default::default() }, "prefetch_batch"),
            (ClusterConfig { buffer_capacity: 0, ..Default::default() }, "buffer_capacity"),
            (
                ClusterConfig { request_deadline: Duration::ZERO, ..Default::default() },
                "request_deadline",
            ),
            (ClusterConfig { num_workers: 100_000, ..Default::default() }, "exceeds"),
        ] {
            match Cluster::new(&g, &config) {
                Err(ClusterError::InvalidConfig { message }) => {
                    assert!(message.contains(needle), "{needle} not in: {message}");
                }
                other => panic!("{needle}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn iostats_merge_accumulates_every_field() {
        // All-distinct values so a swapped or dropped field shows up.
        let a = IoStats {
            fetch_batches: 1,
            nodes_fetched: 2,
            buffer_hits: 3,
            buffer_misses: 4,
            init_jobs: 5,
            worker_restarts: 6,
            shards_rebalanced: 7,
            hangs_absorbed: 8,
        };
        let mut b = IoStats {
            fetch_batches: 10,
            nodes_fetched: 20,
            buffer_hits: 30,
            buffer_misses: 40,
            init_jobs: 50,
            worker_restarts: 60,
            shards_rebalanced: 70,
            hangs_absorbed: 80,
        };
        b.merge(&a);
        assert_eq!(
            b,
            IoStats {
                fetch_batches: 11,
                nodes_fetched: 22,
                buffer_hits: 33,
                buffer_misses: 44,
                init_jobs: 55,
                worker_restarts: 66,
                shards_rebalanced: 77,
                hangs_absorbed: 88,
            }
        );
        let mut c = IoStats::default();
        c += a;
        assert_eq!(c, a, "AddAssign must route through the same merge");
    }

    #[test]
    fn all_legit_retry_path_keeps_every_io_counter() {
        // A rejection-free graph has no cut under either placement, so the
        // warm-started primary sweep finds nothing and the solver retries
        // all-legit; the primary sweep's counters must survive the merge.
        let mut b = rejection::AugmentedGraphBuilder::new(12);
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                b.add_friendship(NodeId(u), NodeId(v));
            }
        }
        let g = b.build();
        let single = DistributedMaar::new(
            ClusterConfig::default(),
            RejectoConfig {
                initial_placement: InitialPlacement::AllLegit,
                ..RejectoConfig::default()
            },
        )
        .solve(&g)
        .expect("distributed solve succeeds");

        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        // Crash a worker so the *primary* sweep records a restart: a merge
        // that drops a field (the original bug dropped worker_restarts)
        // fails this test.
        cluster.fail_worker(1);
        let out = DistributedMaar::new(ClusterConfig::default(), RejectoConfig::default())
            .solve_on(&cluster, g.num_nodes())
            .expect("distributed solve succeeds");
        assert!(out.suspects.is_empty(), "a rejection-free graph has no cut");
        assert!(
            out.io.worker_restarts >= 1,
            "the restart from the primary sweep must not be dropped by the merge"
        );
        // On this graph the warm start degenerates to all-legit, so the
        // merged counters must be exactly two single sweeps' worth.
        assert_eq!(out.io.init_jobs, 2 * single.io.init_jobs);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use std::time::Instant;

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rejecto_core::{FaultPlan, MaarSolver, RejectoConfig, RunBudget};
    use simulator::{Scenario, ScenarioConfig};
    use socialgraph::generators::BarabasiAlbert;

    fn sim_graph() -> AugmentedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = BarabasiAlbert::new(300, 4).generate(&mut rng);
        Scenario::new(ScenarioConfig {
            num_fakes: 40,
            requests_per_spammer: 12,
            ..ScenarioConfig::default()
        })
        .run(&host, 11)
        .graph
    }

    /// A config whose watchdog and backoff are tuned for fast tests.
    fn snappy() -> ClusterConfig {
        ClusterConfig {
            request_deadline: Duration::from_millis(50),
            backoff_base: Duration::ZERO,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn killed_worker_is_respawned_transparently() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        let mut io = IoStats::default();
        let before = cluster.stats(&mut io).expect("healthy cluster serves stats");
        cluster.fail_worker(2);
        let after = cluster.stats(&mut io).expect("crash is recovered");
        assert_eq!(before, after, "stats must survive a worker crash");
        assert_eq!(cluster.worker_restarts(), 1);
        assert_eq!(io.worker_restarts, 1);
    }

    #[test]
    fn fetch_recovers_from_mid_run_failure() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        let mut io = IoStats::default();
        cluster.fail_worker(0);
        cluster.fail_worker(3);
        let fetched = cluster.fetch(&[0, 170, 339], &mut io).expect("crashes are recovered");
        assert_eq!(fetched.len(), 3);
        for (id, data) in fetched {
            let expect: Vec<u32> = g.friends(NodeId(id)).iter().map(|v| v.0).collect();
            assert_eq!(data.friends, expect, "node {id} after recovery");
        }
        assert!(cluster.worker_restarts() >= 1);
    }

    #[test]
    fn solve_result_is_identical_after_worker_crash() {
        let g = sim_graph();
        let config = RejectoConfig::default();
        let local =
            MaarSolver::new(config.clone()).solve(&g, &[], &[]).expect("scenario admits a cut");

        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        // Crash two workers before the solve even starts.
        cluster.fail_worker(1);
        cluster.fail_worker(2);
        let dist = DistributedMaar::new(ClusterConfig::default(), config);
        let out = dist.solve_on(&cluster, g.num_nodes()).expect("crashes are recovered");
        assert_eq!(out.suspects, local.suspects(), "crash changed the cut");
        assert!(out.io.worker_restarts >= 2);
    }

    #[test]
    fn repeated_failures_of_same_worker_are_survivable() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default()).expect("valid default config");
        let mut io = IoStats::default();
        for _ in 0..3 {
            cluster.fail_worker(1);
            let s = cluster.stats(&mut io).expect("each crash is recovered");
            assert_eq!(s.len(), g.num_nodes());
        }
        assert_eq!(cluster.worker_restarts(), 3);
    }

    #[test]
    fn injected_death_schedule_is_invisible_to_the_result() {
        let g = sim_graph();
        let clean = DistributedMaar::new(snappy(), RejectoConfig::default())
            .solve(&g)
            .expect("clean solve succeeds");
        let faulted_config = RejectoConfig {
            faults: FaultPlan::parse("worker_death@fetch=1,worker_death@fetch=4")
                .expect("plan is well-formed"),
            ..RejectoConfig::default()
        };
        let faulted = DistributedMaar::new(snappy(), faulted_config)
            .solve(&g)
            .expect("deaths are recovered");
        assert_eq!(faulted.suspects, clean.suspects, "injected deaths changed the cut");
        assert_eq!(faulted.acceptance_rate, clean.acceptance_rate);
        assert!(faulted.io.worker_restarts >= 2, "both scheduled deaths must fire");
        assert_eq!(faulted.completion, Completion::Complete);
    }

    #[test]
    fn repeated_death_schedule_forces_a_rebalance() {
        let g = sim_graph();
        let clean = DistributedMaar::new(snappy(), RejectoConfig::default())
            .solve(&g)
            .expect("clean solve succeeds");
        // One respawn allowed per request; five consecutive deaths burn
        // through two whole budgets (2 × (1 try + 1 respawn)) and one more
        // try, forcing two rebalances before the request finally lands.
        let cluster_config = ClusterConfig { max_respawns: 1, ..snappy() };
        let faulted_config = RejectoConfig {
            faults: FaultPlan::parse("worker_death@fetch=2:x5").expect("plan is well-formed"),
            ..RejectoConfig::default()
        };
        let faulted = DistributedMaar::new(cluster_config, faulted_config)
            .solve(&g)
            .expect("persistent deaths degrade to rebalancing, not failure");
        assert_eq!(faulted.suspects, clean.suspects, "rebalancing changed the cut");
        assert_eq!(faulted.acceptance_rate, clean.acceptance_rate);
        assert_eq!(faulted.io.shards_rebalanced, 2, "five deaths at budget 1 = two merges");
        assert!(faulted.io.worker_restarts >= 2);
    }

    #[test]
    fn hung_worker_is_detected_by_the_watchdog() {
        let g = sim_graph();
        let clean = DistributedMaar::new(snappy(), RejectoConfig::default())
            .solve(&g)
            .expect("clean solve succeeds");
        let faulted_config = RejectoConfig {
            faults: FaultPlan::parse("worker_hang@k=2").expect("plan is well-formed"),
            ..RejectoConfig::default()
        };
        let faulted = DistributedMaar::new(snappy(), faulted_config)
            .solve(&g)
            .expect("the hang is recovered");
        assert_eq!(faulted.suspects, clean.suspects, "the hang changed the cut");
        assert_eq!(faulted.acceptance_rate, clean.acceptance_rate);
        assert!(faulted.io.worker_restarts >= 1, "the watchdog must respawn the hung worker");
    }

    /// Regression test: the hang path of `exchange` used to wait out the
    /// watchdog twice in one attempt (a full interval draining the stale
    /// pending response, then another full interval on the swallowed
    /// request), so a single hang could block the master for 2×
    /// `request_deadline`. Both waits must draw from one per-attempt
    /// budget: recovery from one hang may not block much longer than the
    /// deadline itself.
    #[test]
    fn hang_recovery_blocks_at_most_one_request_deadline() {
        let g = sim_graph();
        let config = ClusterConfig {
            request_deadline: Duration::from_millis(200),
            backoff_base: Duration::ZERO,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(&g, &config).expect("valid test config");
        // The mid-broadcast shape: the request is already in flight
        // (pending) when the injected hang swallows its response.
        cluster.workers.borrow_mut()[0].pending = true;
        cluster.arm_hang(1);
        let mut io = IoStats::default();
        let start = Instant::now();
        let resp = cluster
            .exchange(0, &|| Request::Stats, &mut io)
            .expect("one hang is recovered by respawn");
        let elapsed = start.elapsed();
        assert!(matches!(resp, Response::Stats { .. }), "recovered request must be served");
        assert!(io.worker_restarts >= 1, "the watchdog must respawn the hung worker");
        assert!(
            elapsed < Duration::from_millis(320),
            "recovering one hang blocked {elapsed:?}; the waits must share the \
             200ms per-attempt deadline instead of stacking it"
        );
    }

    #[test]
    fn losing_every_worker_is_a_structured_error() {
        let g = sim_graph();
        let cluster_config = ClusterConfig { num_workers: 2, max_respawns: 0, ..snappy() };
        // Enough deaths to chew through both workers at respawn budget 0.
        let faulted_config = RejectoConfig {
            faults: FaultPlan::parse("worker_death@fetch=1:x8").expect("plan is well-formed"),
            ..RejectoConfig::default()
        };
        let err = DistributedMaar::new(cluster_config, faulted_config)
            .solve(&g)
            .expect_err("no survivor must be a structured failure");
        match err {
            RuntimeError::ClusterFailed { message } => {
                assert!(message.contains("no survivor"), "unexpected message: {message}");
            }
            other => panic!("expected ClusterFailed, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_yields_a_partial_outcome_with_rollback() {
        let g = sim_graph();
        let config = RejectoConfig {
            budget: RunBudget { deadline: Some(Duration::ZERO), ..RunBudget::unlimited() },
            ..RejectoConfig::default()
        };
        let out = DistributedMaar::new(ClusterConfig::default(), config)
            .solve(&g)
            .expect("a tripped budget degrades, not fails");
        assert!(out.suspects.is_empty(), "an interrupted sweep reports no cut");
        match out.completion {
            Completion::Partial { completed_rounds, completed_k_indices, reason } => {
                assert_eq!(completed_rounds, 0);
                assert!(completed_k_indices.is_empty(), "nothing completed under a zero deadline");
                assert_eq!(reason, InterruptReason::Deadline);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    }

    #[test]
    fn pass_budget_interrupts_the_sweep_midway() {
        let g = sim_graph();
        let config = RejectoConfig {
            budget: RunBudget { max_kl_passes: Some(3), ..RunBudget::unlimited() },
            ..RejectoConfig::default()
        };
        let sweep_len = config.k_sweep().len();
        let out = DistributedMaar::new(ClusterConfig::default(), config)
            .solve(&g)
            .expect("a tripped budget degrades, not fails");
        assert!(out.suspects.is_empty(), "an interrupted sweep reports no cut");
        match out.completion {
            Completion::Partial { completed_k_indices, reason, .. } => {
                assert_eq!(reason, InterruptReason::PassBudget);
                assert!(
                    completed_k_indices.len() < sweep_len,
                    "three global passes cannot complete a {sweep_len}-k sweep"
                );
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    }
}
