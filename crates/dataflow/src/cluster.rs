//! The master/worker deployment of Rejecto (§V).
//!
//! Long-lived worker threads hold contiguous shards of the augmented
//! graph's adjacency; the master holds node status, gains, and the bucket
//! list, and pulls node neighborhoods through a prefetching LRU buffer.
//! Every master↔worker exchange is counted in [`IoStats`], so the Table-II
//! harness can report both wall time and simulated network traffic.

use crate::LruCache;
use crossbeam::channel::{unbounded, Receiver, Sender};
use kl::{BucketList, KParam};
use rejection::{AugmentedGraph, NodeId};
use rejecto_core::{InitialPlacement, RejectoConfig};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LEGIT: u8 = 0;
const SUSPECT: u8 = 1;

/// Per-node adjacency shipped from a worker to the master.
#[derive(Debug, Clone, Default)]
struct NodeData {
    friends: Vec<u32>,
    /// Users whose requests this node rejected.
    rejected_by: Vec<u32>,
    /// Users who rejected this node's requests.
    rejectors_of: Vec<u32>,
}

/// Cluster sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker threads (graph shards).
    pub num_workers: usize,
    /// Nodes fetched per prefetch batch (top of the bucket list).
    pub prefetch_batch: usize,
    /// Capacity of the master's LRU prefetch buffer, in nodes.
    pub buffer_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { num_workers: 4, prefetch_batch: 256, buffer_capacity: 1 << 16 }
    }
}

/// Simulated master↔worker traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Fetch round trips (one request fan-out counts once).
    pub fetch_batches: u64,
    /// Node neighborhoods shipped to the master.
    pub nodes_fetched: u64,
    /// Adjacency lookups served from the prefetch buffer.
    pub buffer_hits: u64,
    /// Adjacency lookups that had to trigger a fetch.
    pub buffer_misses: u64,
    /// Parallel gain/stat initialization jobs dispatched.
    pub init_jobs: u64,
    /// Workers respawned from lineage after a failure (§V: Spark's
    /// "automated fault tolerance").
    pub worker_restarts: u64,
}

enum Request {
    /// Ship the adjacency of these owned nodes.
    Fetch(Vec<u32>),
    /// Compute initial switching gains for the owned range under the given
    /// region assignment and rational `k = num/den`.
    InitGains { regions: Arc<Vec<u8>>, num: i64, den: i64 },
    /// Compute `(friend_degree, rejections_received)` for the owned range.
    Stats,
    /// Count cross-cut friendships and rejections for the owned range.
    CutCounts { regions: Arc<Vec<u8>> },
    Shutdown,
}

enum Response {
    Nodes(Vec<(u32, NodeData)>),
    /// Gains for the owned range, in id order.
    Gains(Vec<i64>),
    /// `(friend_degree, rejections_received)` for the owned range.
    Stats(Vec<(u32, u32)>),
    /// `(cross_friendships_counted_once, cross_rejections)`.
    CutCounts(u64, u64),
}

struct Worker {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    handle: Option<JoinHandle<()>>,
    range: (u32, u32),
}

/// A running worker pool holding the sharded augmented graph.
///
/// The cluster keeps the source graph as its **lineage** (the RDD model):
/// when a worker dies mid-query, the master detects the broken channel,
/// respawns the shard from the lineage, replays the in-flight request,
/// and counts the event in [`IoStats::worker_restarts`]. Failures are
/// therefore invisible to the algorithm — the §V property inherited from
/// Spark's fault tolerance.
pub struct Cluster {
    graph: std::sync::Arc<AugmentedGraph>,
    workers: std::cell::RefCell<Vec<Worker>>,
    restarts: std::cell::Cell<u64>,
    num_nodes: usize,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("num_workers", &self.workers.borrow().len())
            .field("num_nodes", &self.num_nodes)
            .field("restarts", &self.restarts.get())
            .finish()
    }
}

struct Shard {
    base: u32,
    nodes: Vec<NodeData>,
}

impl Shard {
    fn data(&self, id: u32) -> &NodeData {
        &self.nodes[(id - self.base) as usize]
    }

    fn serve(self, rx: Receiver<Request>, tx: Sender<Response>) {
        while let Ok(req) = rx.recv() {
            match req {
                Request::Shutdown => break,
                Request::Fetch(ids) => {
                    let out =
                        ids.into_iter().map(|id| (id, self.data(id).clone())).collect();
                    let _ = tx.send(Response::Nodes(out));
                }
                Request::Stats => {
                    let out = self
                        .nodes
                        .iter()
                        .map(|n| (n.friends.len() as u32, n.rejectors_of.len() as u32))
                        .collect();
                    let _ = tx.send(Response::Stats(out));
                }
                Request::CutCounts { regions } => {
                    let mut cf = 0u64;
                    let mut cr = 0u64;
                    for (i, n) in self.nodes.iter().enumerate() {
                        let u = self.base + i as u32;
                        let ru = regions[u as usize];
                        for &v in &n.friends {
                            if u < v && ru != regions[v as usize] {
                                cf += 1;
                            }
                        }
                        if ru == LEGIT {
                            for &s in &n.rejected_by {
                                if regions[s as usize] == SUSPECT {
                                    cr += 1;
                                }
                            }
                        }
                    }
                    let _ = tx.send(Response::CutCounts(cf, cr));
                }
                Request::InitGains { regions, num, den } => {
                    let gains = self
                        .nodes
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            let u = self.base + i as u32;
                            let (df, dr) = switch_delta(n, u, &regions);
                            num * dr - den * df
                        })
                        .collect();
                    let _ = tx.send(Response::Gains(gains));
                }
            }
        }
    }
}

/// `(Δcross_friendships, Δcross_rejections)` if `u` switched regions —
/// the same arithmetic as `rejection::Partition::switch_delta`, expressed
/// over shipped [`NodeData`].
fn switch_delta(n: &NodeData, u: u32, regions: &[u8]) -> (i64, i64) {
    let from = regions[u as usize];
    let mut df = 0i64;
    for &v in &n.friends {
        if regions[v as usize] == from {
            df += 1;
        } else {
            df -= 1;
        }
    }
    let mut dr = 0i64;
    if from == LEGIT {
        for &r in &n.rejectors_of {
            if regions[r as usize] == LEGIT {
                dr += 1;
            }
        }
        for &s in &n.rejected_by {
            if regions[s as usize] == SUSPECT {
                dr -= 1;
            }
        }
    } else {
        for &r in &n.rejectors_of {
            if regions[r as usize] == LEGIT {
                dr -= 1;
            }
        }
        for &s in &n.rejected_by {
            if regions[s as usize] == SUSPECT {
                dr += 1;
            }
        }
    }
    (df, dr)
}

fn spawn_worker(graph: &std::sync::Arc<AugmentedGraph>, lo: u32, hi: u32, wi: usize) -> Worker {
    let (req_tx, req_rx) = unbounded::<Request>();
    let (resp_tx, resp_rx) = unbounded::<Response>();
    let lineage = std::sync::Arc::clone(graph);
    let handle = std::thread::Builder::new()
        .name(format!("rejecto-worker-{wi}"))
        .spawn(move || {
            // The shard is (re)built from the lineage inside the worker.
            let nodes: Vec<NodeData> = (lo..hi)
                .map(|id| {
                    let id = NodeId(id);
                    NodeData {
                        friends: lineage.friends(id).iter().map(|v| v.0).collect(),
                        rejected_by: lineage.rejected_by(id).iter().map(|v| v.0).collect(),
                        rejectors_of: lineage.rejectors_of(id).iter().map(|v| v.0).collect(),
                    }
                })
                .collect();
            Shard { base: lo, nodes }.serve(req_rx, resp_tx)
        })
        .expect("failed to spawn worker thread");
    Worker { tx: req_tx, rx: resp_rx, handle: Some(handle), range: (lo, hi) }
}

impl Cluster {
    /// Shards `g` across `config.num_workers` worker threads. The graph is
    /// retained on the master as the recovery lineage.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(g: &AugmentedGraph, config: &ClusterConfig) -> Self {
        Cluster::from_arc(std::sync::Arc::new(g.clone()), config)
    }

    /// Shards an already-shared graph (avoids the clone in
    /// [`Cluster::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn from_arc(graph: std::sync::Arc<AugmentedGraph>, config: &ClusterConfig) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        let n = graph.num_nodes();
        let w = config.num_workers.min(n.max(1));
        let chunk = n.div_ceil(w);
        let workers = (0..w)
            .map(|wi| {
                let lo = (wi * chunk).min(n) as u32;
                let hi = ((wi + 1) * chunk).min(n) as u32;
                spawn_worker(&graph, lo, hi, wi)
            })
            .collect();
        Cluster {
            graph,
            workers: std::cell::RefCell::new(workers),
            restarts: std::cell::Cell::new(0),
            num_nodes: n,
        }
    }

    /// Number of users the cluster holds.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of worker shards.
    pub fn num_workers(&self) -> usize {
        self.workers.borrow().len()
    }

    /// Total workers respawned from lineage so far.
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.get()
    }

    /// Kills worker `wi` (test hook simulating a crash). The next request
    /// routed to it triggers a lineage respawn.
    ///
    /// # Panics
    ///
    /// Panics if `wi` is out of range.
    pub fn fail_worker(&self, wi: usize) {
        let mut workers = self.workers.borrow_mut();
        let w = &mut workers[wi];
        let _ = w.tx.send(Request::Shutdown);
        if let Some(h) = w.handle.take() {
            let _ = h.join();
        }
    }

    fn owner(&self, id: u32) -> usize {
        // Ranges are equal-sized except the last; binary search is robust
        // to the final short shard.
        let workers = self.workers.borrow();
        workers
            .partition_point(|w| w.range.1 <= id)
            .min(workers.len() - 1)
    }

    fn respawn(&self, wi: usize) {
        let mut workers = self.workers.borrow_mut();
        let (lo, hi) = workers[wi].range;
        if let Some(h) = workers[wi].handle.take() {
            let _ = h.join();
        }
        workers[wi] = spawn_worker(&self.graph, lo, hi, wi);
        self.restarts.set(self.restarts.get() + 1);
    }

    /// Sends `req` to worker `wi` and awaits the response, recovering a
    /// dead worker from lineage (retry once).
    fn call(&self, wi: usize, make_req: &dyn Fn() -> Request, io: &mut IoStats) -> Response {
        for attempt in 0..2 {
            let result = {
                let workers = self.workers.borrow();
                let w = &workers[wi];
                match w.tx.send(make_req()) {
                    Err(_) => Err(()),
                    Ok(()) => w.rx.recv().map_err(|_| ()),
                }
            };
            match result {
                Ok(resp) => return resp,
                Err(()) => {
                    assert!(attempt == 0, "worker {wi} failed twice in a row");
                    self.respawn(wi);
                    io.worker_restarts += 1;
                }
            }
        }
        unreachable!("retry loop returns or panics")
    }

    /// Broadcasts a request to every worker and collects responses in
    /// worker order, recovering failed workers from lineage.
    fn broadcast(
        &self,
        make_req: &dyn Fn() -> Request,
        io: &mut IoStats,
    ) -> Vec<((u32, u32), Response)> {
        let num = self.num_workers();
        // Optimistic fan-out: send to all, then collect; failures fall
        // back to the recovering per-worker call.
        let sent: Vec<bool> = {
            let workers = self.workers.borrow();
            workers.iter().map(|w| w.tx.send(make_req()).is_ok()).collect()
        };
        let mut out = Vec::with_capacity(num);
        for wi in 0..num {
            let range = self.workers.borrow()[wi].range;
            let resp = if sent[wi] {
                let received = {
                    let workers = self.workers.borrow();
                    workers[wi].rx.recv()
                };
                match received {
                    Ok(r) => r,
                    Err(_) => {
                        self.respawn(wi);
                        io.worker_restarts += 1;
                        self.call(wi, make_req, io)
                    }
                }
            } else {
                self.respawn(wi);
                io.worker_restarts += 1;
                self.call(wi, make_req, io)
            };
            out.push((range, resp));
        }
        out
    }

    /// Fetches adjacency for `ids` (grouped by owner; one fan-out counts as
    /// one batch in the stats).
    fn fetch(&self, ids: &[u32], io: &mut IoStats) -> Vec<(u32, NodeData)> {
        if ids.is_empty() {
            return Vec::new();
        }
        let mut per_worker: Vec<Vec<u32>> = vec![Vec::new(); self.num_workers()];
        for &id in ids {
            per_worker[self.owner(id)].push(id);
        }
        io.fetch_batches += 1;
        io.nodes_fetched += ids.len() as u64;
        let mut out = Vec::with_capacity(ids.len());
        for (wi, batch) in per_worker.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match self.call(wi, &|| Request::Fetch(batch.clone()), io) {
                Response::Nodes(nodes) => out.extend(nodes),
                _ => unreachable!("protocol violation"),
            }
        }
        out
    }

    /// Parallel per-node `(friend_degree, rejections_received)`.
    fn stats(&self, io: &mut IoStats) -> Vec<(u32, u32)> {
        io.init_jobs += 1;
        let mut out = vec![(0u32, 0u32); self.num_nodes];
        for (range, resp) in self.broadcast(&|| Request::Stats, io) {
            match resp {
                Response::Stats(s) => {
                    for (i, v) in s.into_iter().enumerate() {
                        out[range.0 as usize + i] = v;
                    }
                }
                _ => unreachable!("protocol violation"),
            }
        }
        out
    }

    /// Parallel initial gains for all nodes under `regions`.
    fn init_gains(&self, regions: &Arc<Vec<u8>>, k: KParam, io: &mut IoStats) -> Vec<i64> {
        io.init_jobs += 1;
        let mut out = vec![0i64; self.num_nodes];
        let make = || Request::InitGains {
            regions: Arc::clone(regions),
            num: k.num() as i64,
            den: k.den() as i64,
        };
        for (range, resp) in self.broadcast(&make, io) {
            match resp {
                Response::Gains(g) => {
                    for (i, v) in g.into_iter().enumerate() {
                        out[range.0 as usize + i] = v;
                    }
                }
                _ => unreachable!("protocol violation"),
            }
        }
        out
    }

    /// Parallel cross-cut counts under `regions`.
    fn cut_counts(&self, regions: &Arc<Vec<u8>>, io: &mut IoStats) -> (u64, u64) {
        io.init_jobs += 1;
        let mut cf = 0u64;
        let mut cr = 0u64;
        let make = || Request::CutCounts { regions: Arc::clone(regions) };
        for (_, resp) in self.broadcast(&make, io) {
            match resp {
                Response::CutCounts(f, r) => {
                    cf += f;
                    cr += r;
                }
                _ => unreachable!("protocol violation"),
            }
        }
        (cf, cr)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let mut workers = self.workers.borrow_mut();
        for w in workers.iter() {
            let _ = w.tx.send(Request::Shutdown);
        }
        for w in workers.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Result of a distributed MAAR solve.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The suspect region of the winning cut, ascending.
    pub suspects: Vec<NodeId>,
    /// Aggregate acceptance rate of the winning cut (`None` if no
    /// non-degenerate cut was found).
    pub acceptance_rate: Option<f64>,
    /// The winning sweep `k`.
    pub k: Option<f64>,
    /// Simulated traffic counters.
    pub io: IoStats,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// Distributed MAAR solver: the same geometric-`k` sweep of extended KL as
/// `rejecto_core::MaarSolver`, executed against a [`Cluster`] with the §V
/// data layout (status + bucket list on the master, adjacency on the
/// workers, prefetch through an LRU buffer).
#[derive(Debug, Clone)]
pub struct DistributedMaar {
    cluster_config: ClusterConfig,
    rejecto: RejectoConfig,
}

impl DistributedMaar {
    /// Creates a solver.
    pub fn new(cluster_config: ClusterConfig, rejecto: RejectoConfig) -> Self {
        DistributedMaar { cluster_config, rejecto }
    }

    /// Solves MAAR on `g` using a freshly spawned cluster.
    pub fn solve(&self, g: &AugmentedGraph) -> DistributedOutcome {
        let cluster = Cluster::new(g, &self.cluster_config);
        self.solve_on(&cluster, g.num_nodes())
    }

    /// Solves MAAR against an existing cluster (graph already sharded).
    pub fn solve_on(&self, cluster: &Cluster, num_nodes: usize) -> DistributedOutcome {
        let out = self.solve_with_placement(cluster, num_nodes, self.rejecto.initial_placement);
        if !out.suspects.is_empty()
            || self.rejecto.initial_placement == InitialPlacement::AllLegit
        {
            return out;
        }
        // Same fallback as the single-process solver: if the warm start
        // steered every k past the admissible cut size, retry all-legit.
        let mut retry = self.solve_with_placement(cluster, num_nodes, InitialPlacement::AllLegit);
        retry.io.fetch_batches += out.io.fetch_batches;
        retry.io.nodes_fetched += out.io.nodes_fetched;
        retry.io.buffer_hits += out.io.buffer_hits;
        retry.io.buffer_misses += out.io.buffer_misses;
        retry.io.init_jobs += out.io.init_jobs;
        retry.elapsed += out.elapsed;
        retry
    }

    fn solve_with_placement(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
        placement: InitialPlacement,
    ) -> DistributedOutcome {
        let start = Instant::now();
        let mut io = IoStats::default();

        // Warm start needs per-node (degree, rejections) — an RDD job. As
        // in the single-process solver, the warm suspect set is capped at
        // the admissible region size (highest rejection ratios first).
        let stats = cluster.stats(&mut io);
        let warm_cap =
            (self.rejecto.max_suspect_fraction * num_nodes as f64).floor() as usize;
        let warm: Vec<u8> = match placement {
            InitialPlacement::AllLegit => vec![LEGIT; num_nodes],
            InitialPlacement::RejectionRatio(t) => {
                let mut candidates: Vec<(f64, usize)> = stats
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &(f, r))| {
                        let total = f as f64 + r as f64;
                        let ratio = if total > 0.0 { r as f64 / total } else { return None };
                        (ratio >= t).then_some((ratio, i))
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("finite ratios").then(a.1.cmp(&b.1))
                });
                let mut warm = vec![LEGIT; num_nodes];
                for (_, i) in candidates.into_iter().take(warm_cap) {
                    warm[i] = SUSPECT;
                }
                warm
            }
            #[allow(unreachable_patterns)]
            _ => vec![LEGIT; num_nodes],
        };
        let gain_bound = {
            let mut b = 1i64;
            let max_num = (self.rejecto.k_max * self.rejecto.k_denominator as f64).ceil() as i64 + 1;
            for &(f, r) in &stats {
                // rejectors + rejectees both bounded by total incident
                // rejections; use a safe overestimate.
                b = b.max(
                    self.rejecto.k_denominator as i64 * f as i64 + max_num * 2 * r as i64 + max_num,
                );
            }
            b
        };

        let mut best: Option<(Vec<u8>, f64, KParam)> = None;
        let cap = (self.rejecto.max_suspect_fraction * num_nodes as f64).floor() as usize;
        // The buffer persists across the whole k sweep — the graph data it
        // caches is k-independent ("we cache intermediate data sets and
        // results in memory, reducing the cost of their future reuse").
        let mut buffer: LruCache<NodeData> = LruCache::new(self.cluster_config.buffer_capacity);
        for k in self.rejecto.k_sweep() {
            let (regions, cf, cr) =
                self.run_kl(cluster, num_nodes, &warm, k, gain_bound, &mut buffer, &mut io);
            let suspects = regions.iter().filter(|&&r| r == SUSPECT).count();
            if suspects == 0 || suspects > cap || cf + cr == 0 {
                continue;
            }
            let ac = cf as f64 / (cf + cr) as f64;
            if best.as_ref().is_none_or(|(_, b, _)| ac < *b) {
                best = Some((regions, ac, k));
            }
        }

        let elapsed = start.elapsed();
        match best {
            Some((regions, ac, k)) => DistributedOutcome {
                suspects: regions
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r == SUSPECT)
                    .map(|(i, _)| NodeId::from_index(i))
                    .collect(),
                acceptance_rate: Some(ac),
                k: Some(k.value()),
                io,
                elapsed,
            },
            None => DistributedOutcome {
                suspects: Vec::new(),
                acceptance_rate: None,
                k: None,
                io,
                elapsed,
            },
        }
    }

    /// One extended-KL optimization for a fixed `k` on the cluster.
    /// Returns the final regions and cross-cut counts.
    #[allow(clippy::too_many_arguments)]
    fn run_kl(
        &self,
        cluster: &Cluster,
        num_nodes: usize,
        warm: &[u8],
        k: KParam,
        gain_bound: i64,
        buffer: &mut LruCache<NodeData>,
        io: &mut IoStats,
    ) -> (Vec<u8>, u64, u64) {
        let num = k.num() as i64;
        let den = k.den() as i64;
        let mut regions = Arc::new(warm.to_vec());
        let (mut cf, mut cr) = cluster.cut_counts(&regions, io);

        for _pass in 0..self.rejecto.max_kl_passes {
            // Tentative state for this pass.
            let mut tmp: Vec<u8> = regions.as_ref().clone();
            let gains = cluster.init_gains(&regions, k, io);
            let mut bucket = BucketList::new(num_nodes, -gain_bound, gain_bound);
            for (i, &g) in gains.iter().enumerate() {
                bucket.insert(i as u32, g);
            }

            let mut seq: Vec<(u32, i64, i64, i64)> = Vec::with_capacity(num_nodes);
            while !bucket.is_empty() {
                // Ensure the next pops are resident: prefetch top-gain ids.
                let top = bucket.peek_top(self.cluster_config.prefetch_batch);
                let missing: Vec<u32> =
                    top.iter().copied().filter(|id| !buffer.contains(id)).collect();
                if !missing.is_empty() {
                    io.buffer_misses += missing.len() as u64;
                    for (id, data) in cluster.fetch(&missing, io) {
                        buffer.insert(id, data);
                    }
                }
                for _ in 0..top.len() {
                    let Some((u, gain)) = bucket.pop_max() else { break };
                    if !buffer.contains(&u) {
                        // Gain updates reorder the bucket between pops, so
                        // the max can fall outside the prefetched set.
                        io.buffer_misses += 1;
                        let fetched = cluster.fetch(&[u], io);
                        let d = fetched.into_iter().next().expect("owner must return node").1;
                        buffer.insert(u, d);
                    } else {
                        io.buffer_hits += 1;
                    }
                    let data = buffer.get(&u).expect("just ensured present");
                    let from = tmp[u as usize];
                    let (df, dr) = switch_delta(data, u, &tmp);
                    debug_assert_eq!(gain, num * dr - den * df, "stale distributed gain");
                    tmp[u as usize] = 1 - from;
                    let now_in = tmp[u as usize];
                    seq.push((u, gain, df, dr));

                    for &v in &data.friends {
                        if bucket.contains(v) {
                            let t = if tmp[v as usize] == from { 1 } else { -1 };
                            bucket.adjust(v, 2 * den * t);
                        }
                    }
                    for &v in &data.rejected_by {
                        if bucket.contains(v) {
                            let da = if now_in == LEGIT { 1 } else { -1 };
                            let s_v = if tmp[v as usize] == LEGIT { 1 } else { -1 };
                            bucket.adjust(v, num * s_v * da);
                        }
                    }
                    for &v in &data.rejectors_of {
                        if bucket.contains(v) {
                            let db = if now_in == SUSPECT { 1 } else { -1 };
                            let s_v = if tmp[v as usize] == LEGIT { 1 } else { -1 };
                            bucket.adjust(v, -num * s_v * db);
                        }
                    }
                }
            }

            // Best strictly positive prefix.
            let mut best: Option<usize> = None;
            let mut best_gain = 0i64;
            let mut cum = 0i64;
            for (i, &(_, gain, _, _)) in seq.iter().enumerate() {
                cum += gain;
                if cum > best_gain {
                    best_gain = cum;
                    best = Some(i);
                }
            }
            let Some(end) = best else { break };
            let mut committed: Vec<u8> = regions.as_ref().clone();
            for &(u, _, df, dr) in &seq[..=end] {
                committed[u as usize] = 1 - committed[u as usize];
                cf = cf.checked_add_signed(df).expect("cut counter underflow");
                cr = cr.checked_add_signed(dr).expect("cut counter underflow");
            }
            regions = Arc::new(committed);
        }
        (Arc::try_unwrap(regions).unwrap_or_else(|a| a.as_ref().clone()), cf, cr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rejecto_core::MaarSolver;
    use simulator::{Scenario, ScenarioConfig};
    use socialgraph::generators::BarabasiAlbert;

    fn sim_graph() -> AugmentedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = BarabasiAlbert::new(300, 4).generate(&mut rng);
        Scenario::new(ScenarioConfig {
            num_fakes: 40,
            requests_per_spammer: 12,
            ..ScenarioConfig::default()
        })
        .run(&host, 11)
        .graph
    }

    #[test]
    fn cluster_shards_cover_all_nodes() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default());
        assert_eq!(cluster.num_nodes(), 340);
        assert_eq!(cluster.num_workers(), 4);
        let mut io = IoStats::default();
        let stats = cluster.stats(&mut io);
        for u in g.nodes() {
            assert_eq!(stats[u.index()].0 as usize, g.friend_degree(u));
            assert_eq!(stats[u.index()].1 as usize, g.rejections_received(u));
        }
    }

    #[test]
    fn fetch_returns_correct_adjacency() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default());
        let mut io = IoStats::default();
        let ids = [0u32, 150, 339];
        let fetched = cluster.fetch(&ids, &mut io);
        assert_eq!(fetched.len(), 3);
        for (id, data) in fetched {
            let expect: Vec<u32> = g.friends(NodeId(id)).iter().map(|v| v.0).collect();
            assert_eq!(data.friends, expect, "node {id}");
        }
        assert_eq!(io.fetch_batches, 1);
        assert_eq!(io.nodes_fetched, 3);
    }

    #[test]
    fn distributed_solve_matches_single_node_solver() {
        let g = sim_graph();
        let config = RejectoConfig::default();
        let local = MaarSolver::new(config.clone()).solve(&g, &[], &[]).expect("local cut");
        let dist = DistributedMaar::new(ClusterConfig::default(), config).solve(&g);
        assert_eq!(dist.suspects, local.suspects(), "partitions diverged");
        let ac = dist.acceptance_rate.expect("distributed cut");
        assert!((ac - local.acceptance_rate).abs() < 1e-12);
    }

    #[test]
    fn prefetching_served_most_lookups_from_buffer() {
        let g = sim_graph();
        let dist = DistributedMaar::new(ClusterConfig::default(), RejectoConfig::default());
        let out = dist.solve(&g);
        assert!(out.io.buffer_hits > 0);
        // With batch prefetch, fetch round trips must be far fewer than
        // node lookups.
        assert!(
            out.io.fetch_batches * 8 < out.io.buffer_hits + out.io.buffer_misses,
            "batches {} vs lookups {}",
            out.io.fetch_batches,
            out.io.buffer_hits + out.io.buffer_misses
        );
    }

    #[test]
    fn tiny_buffer_forces_more_fetches_than_large_buffer() {
        let g = sim_graph();
        let rejecto = RejectoConfig::default();
        let small = DistributedMaar::new(
            ClusterConfig { buffer_capacity: 8, prefetch_batch: 4, ..Default::default() },
            rejecto.clone(),
        )
        .solve(&g);
        let large = DistributedMaar::new(ClusterConfig::default(), rejecto).solve(&g);
        assert!(small.io.nodes_fetched > large.io.nodes_fetched);
        assert_eq!(small.suspects, large.suspects, "buffering must not change the cut");
    }

    #[test]
    fn single_worker_cluster_works() {
        let g = sim_graph();
        let dist = DistributedMaar::new(
            ClusterConfig { num_workers: 1, ..Default::default() },
            RejectoConfig::default(),
        )
        .solve(&g);
        assert!(!dist.suspects.is_empty());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rejecto_core::{MaarSolver, RejectoConfig};
    use simulator::{Scenario, ScenarioConfig};
    use socialgraph::generators::BarabasiAlbert;

    fn sim_graph() -> AugmentedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = BarabasiAlbert::new(300, 4).generate(&mut rng);
        Scenario::new(ScenarioConfig {
            num_fakes: 40,
            requests_per_spammer: 12,
            ..ScenarioConfig::default()
        })
        .run(&host, 11)
        .graph
    }

    #[test]
    fn killed_worker_is_respawned_transparently() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default());
        let mut io = IoStats::default();
        let before = cluster.stats(&mut io);
        cluster.fail_worker(2);
        let after = cluster.stats(&mut io);
        assert_eq!(before, after, "stats must survive a worker crash");
        assert_eq!(cluster.worker_restarts(), 1);
        assert_eq!(io.worker_restarts, 1);
    }

    #[test]
    fn fetch_recovers_from_mid_run_failure() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default());
        let mut io = IoStats::default();
        cluster.fail_worker(0);
        cluster.fail_worker(3);
        let fetched = cluster.fetch(&[0, 170, 339], &mut io);
        assert_eq!(fetched.len(), 3);
        for (id, data) in fetched {
            let expect: Vec<u32> = g.friends(NodeId(id)).iter().map(|v| v.0).collect();
            assert_eq!(data.friends, expect, "node {id} after recovery");
        }
        assert!(cluster.worker_restarts() >= 1);
    }

    #[test]
    fn solve_result_is_identical_after_worker_crash() {
        let g = sim_graph();
        let config = RejectoConfig::default();
        let local = MaarSolver::new(config.clone()).solve(&g, &[], &[]).expect("scenario admits a cut");

        let cluster = Cluster::new(&g, &ClusterConfig::default());
        // Crash two workers before the solve even starts.
        cluster.fail_worker(1);
        cluster.fail_worker(2);
        let dist = DistributedMaar::new(ClusterConfig::default(), config);
        let out = dist.solve_on(&cluster, g.num_nodes());
        assert_eq!(out.suspects, local.suspects(), "crash changed the cut");
        assert!(out.io.worker_restarts >= 2);
    }

    #[test]
    fn repeated_failures_of_same_worker_are_survivable() {
        let g = sim_graph();
        let cluster = Cluster::new(&g, &ClusterConfig::default());
        let mut io = IoStats::default();
        for _ in 0..3 {
            cluster.fail_worker(1);
            let s = cluster.stats(&mut io);
            assert_eq!(s.len(), g.num_nodes());
        }
        assert_eq!(cluster.worker_restarts(), 3);
    }
}
