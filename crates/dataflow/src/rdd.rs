//! A minimal RDD-like partitioned in-memory dataset.

use std::num::NonZeroUsize;

/// An immutable dataset split into partitions, with data-parallel
/// operations executed on scoped threads (one per partition).
///
/// This is the "set of operations on RDDs" layer the paper uses to
/// initialize the algorithm (computing initial cross-region counts and
/// per-node gains) — reduced to what Rejecto needs: `map`, `filter`,
/// `map_partitions`, `reduce`, and `collect`.
///
/// ```
/// use dataflow::Partitioned;
/// let data = Partitioned::from_vec((0..100).collect(), 4);
/// let doubled = data.map(|x| x * 2);
/// assert_eq!(doubled.reduce(0i32, |a, b| a + b, |a, b| a + b), 9900);
/// assert_eq!(data.num_partitions(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioned<T> {
    parts: Vec<Vec<T>>,
}

impl<T: Send + Sync> Partitioned<T> {
    /// Splits `data` into `partitions` nearly equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        let partitions = NonZeroUsize::new(partitions).expect("need at least one partition");
        let n = data.len();
        let p = partitions.get().min(n.max(1));
        let chunk = n.div_ceil(p);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut iter = data.into_iter();
        for _ in 0..p {
            parts.push(iter.by_ref().take(chunk).collect());
        }
        Partitioned { parts }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Applies `f` to every element in parallel (one thread per partition).
    pub fn map<U, F>(&self, f: F) -> Partitioned<U>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Send + Sync,
    {
        self.map_partitions(|part| part.iter().map(&f).collect())
    }

    /// Keeps elements matching `pred`, in parallel.
    pub fn filter<F>(&self, pred: F) -> Partitioned<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.map_partitions(|part| part.iter().filter(|x| pred(x)).cloned().collect())
    }

    /// Applies `f` to each whole partition in parallel.
    ///
    /// A panicking partition task is retried serially on the driver from
    /// the immutable input partition (lineage recompute) — a transient
    /// panic costs one serial recomputation; a deterministic panic
    /// resurfaces on the driver with its original payload.
    pub fn map_partitions<U, F>(&self, f: F) -> Partitioned<U>
    where
        U: Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Send + Sync,
    {
        let parts: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                self.parts.iter().map(|part| scope.spawn(|| f(part))).collect();
            handles
                .into_iter()
                .zip(&self.parts)
                .map(|(h, part)| h.join().unwrap_or_else(|_| f(part)))
                .collect()
        });
        Partitioned { parts }
    }

    /// Two-level reduce: folds each partition with `fold` from `identity`,
    /// then combines the per-partition results with `combine` on the
    /// driver.
    ///
    /// Panicking partition tasks are recomputed serially on the driver,
    /// as in [`Partitioned::map_partitions`].
    pub fn reduce<U, F, C>(&self, identity: U, fold: F, combine: C) -> U
    where
        U: Clone + Send + Sync,
        F: Fn(U, &T) -> U + Send + Sync,
        C: Fn(U, U) -> U,
    {
        let partials: Vec<U> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .parts
                .iter()
                .map(|part| {
                    let identity = identity.clone();
                    let fold = &fold;
                    scope.spawn(move || part.iter().fold(identity, fold))
                })
                .collect();
            handles
                .into_iter()
                .zip(&self.parts)
                .map(|(h, part)| {
                    h.join()
                        .unwrap_or_else(|_| part.iter().fold(identity.clone(), &fold))
                })
                .collect()
        });
        partials.into_iter().fold(identity, combine)
    }

    /// Gathers all elements to the driver, partition order preserved.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.parts.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_into_requested_partitions() {
        let d = Partitioned::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(d.num_partitions(), 3);
        assert_eq!(d.len(), 10);
        assert_eq!(d.collect(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn handles_more_partitions_than_elements() {
        let d = Partitioned::from_vec(vec![1, 2], 8);
        assert!(d.num_partitions() <= 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn map_preserves_order() {
        let d = Partitioned::from_vec((0..20).collect::<Vec<i32>>(), 4);
        assert_eq!(d.map(|x| x + 1).collect(), (1..21).collect::<Vec<i32>>());
    }

    #[test]
    fn filter_drops_elements() {
        let d = Partitioned::from_vec((0..20).collect::<Vec<i32>>(), 4);
        let even = d.filter(|x| x % 2 == 0);
        assert_eq!(even.len(), 10);
    }

    #[test]
    fn reduce_sums_across_partitions() {
        let d = Partitioned::from_vec((1..=100).collect::<Vec<i64>>(), 7);
        let sum = d.reduce(0i64, |a, b| a + *b, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn empty_dataset_is_well_behaved() {
        let d = Partitioned::from_vec(Vec::<i32>::new(), 4);
        assert!(d.is_empty());
        assert_eq!(d.reduce(0, |a, b| a + *b, |a, b| a + b), 0);
        assert!(d.collect().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_zero_partitions() {
        let _ = Partitioned::from_vec(vec![1], 0);
    }

    #[test]
    fn transient_map_panic_is_recomputed_from_lineage() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let d = Partitioned::from_vec((0..40).collect::<Vec<i32>>(), 4);
        let tripped = AtomicBool::new(false);
        // The first task to run panics once; its partition must be
        // recomputed on the driver and the result stay exact.
        let out = d.map_partitions(|part| {
            if !tripped.swap(true, Ordering::SeqCst) {
                panic!("injected transient partition panic");
            }
            part.iter().map(|x| x * 2).collect()
        });
        assert_eq!(out.collect(), (0..40).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn transient_reduce_panic_is_recomputed_from_lineage() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let d = Partitioned::from_vec((1..=100).collect::<Vec<i64>>(), 5);
        let tripped = AtomicBool::new(false);
        let sum = d.reduce(
            0i64,
            |a, b| {
                if !tripped.swap(true, Ordering::SeqCst) {
                    panic!("injected transient fold panic");
                }
                a + *b
            },
            |a, b| a + b,
        );
        assert_eq!(sum, 5050);
    }
}
