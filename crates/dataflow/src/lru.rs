//! The master's prefetch buffer (§V): a fixed-capacity LRU cache.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u32,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache from `u32` keys (node ids) to values.
///
/// Implemented as a slab of slots threaded on an intrusive doubly-linked
/// recency list plus a key → slot map: `get`, `insert`, and eviction are
/// all `O(1)`. This is the buffer the master dedicates to prefetched node
/// neighborhoods, "using an LRU replacement strategy to evict nodes".
///
/// ```
/// use dataflow::LruCache;
/// let mut c = LruCache::new(2);
/// c.insert(1, "a");
/// c.insert(2, "b");
/// c.get(&1);          // 1 is now most recently used
/// c.insert(3, "c");   // evicts 2
/// assert!(c.get(&2).is_none());
/// assert_eq!(c.get(&1), Some(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    slots: Vec<Slot<V>>,
    index: HashMap<u32, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        // Constructor contract, unreachable from cluster paths: ClusterConfig
        // validation rejects zero buffer capacities before a cache is built.
        assert!(capacity > 0, "capacity must be positive"); // xtask-allow: no-panic
        LruCache {
            slots: Vec::with_capacity(capacity.min(4096)),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is cached (does not touch recency).
    pub fn contains(&self, key: &u32) -> bool {
        self.index.contains_key(key)
    }

    fn detach(&mut self, slot: usize) {
        let (p, n) = (self.slots[slot].prev, self.slots[slot].next);
        if p != NIL {
            self.slots[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &u32) -> Option<&V> {
        let slot = *self.index.get(key)?;
        if slot != self.head {
            self.detach(slot);
            self.push_front(slot);
        }
        Some(&self.slots[slot].value)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when full. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: u32, value: V) -> Option<(u32, V)> {
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot].value = value;
            if slot != self.head {
                self.detach(slot);
                self.push_front(slot);
            }
            return None;
        }
        if self.index.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Slot { key, value, prev: NIL, next: NIL });
            self.index.insert(key, slot);
            self.push_front(slot);
            return None;
        }
        // Recycle the LRU slot.
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "full cache must have a tail");
        self.detach(victim);
        let old_key = self.slots[victim].key;
        self.index.remove(&old_key);
        let old_value = std::mem::replace(&mut self.slots[victim].value, value);
        self.slots[victim].key = key;
        self.index.insert(key, victim);
        self.push_front(victim);
        Some((old_key, old_value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, 'a').is_none());
        assert!(c.insert(2, 'b').is_none());
        let evicted = c.insert(3, 'c').expect("full cache evicts");
        assert_eq!(evicted, (1, 'a'));
        assert!(!c.contains(&1));
        assert!(c.contains(&2) && c.contains(&3));
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        assert_eq!(c.get(&1), Some(&'a'));
        let evicted = c.insert(3, 'c').expect("full cache evicts");
        assert_eq!(evicted.0, 2, "2 was least recently used");
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, 'a');
        c.insert(2, 'b');
        assert!(c.insert(1, 'z').is_none());
        assert_eq!(c.get(&1), Some(&'z'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let mut c = LruCache::new(1);
        c.insert(1, 1);
        assert_eq!(c.insert(2, 2), Some((1, 1)));
        assert_eq!(c.insert(3, 3), Some((2, 2)));
        assert_eq!(c.get(&3), Some(&3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn long_mixed_workload_matches_reference_model() {
        // Compare against a naive Vec-based LRU model.
        let mut c = LruCache::new(4);
        let mut model: Vec<(u32, u64)> = Vec::new(); // front = MRU
        let mut x: u64 = 12345;
        for step in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 10) as u32;
            if step % 3 == 0 {
                // get
                let hit = c.get(&key).copied();
                let model_hit = model.iter().position(|&(k, _)| k == key).map(|i| {
                    let e = model.remove(i);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(hit, model_hit, "step {step} key {key}");
            } else {
                c.insert(key, step);
                if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(i);
                } else if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, (key, step));
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = LruCache::<u8>::new(0);
    }
}
