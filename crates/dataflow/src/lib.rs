//! In-memory distributed-dataflow substrate — the Spark substitute for the
//! paper's §V prototype and Table-II scalability experiment.
//!
//! The paper layers Rejecto on Spark with a specific data layout:
//!
//! * the **master** keeps what must be touched on every move — node status
//!   (region), potential switching gains, and the bucket list;
//! * the **workers** hold the sharded social-graph structure (friend and
//!   rejection adjacency) as resilient distributed datasets;
//! * moving a node requires its adjacency, so the master **prefetches**
//!   the top-gain nodes from the bucket list in batches into an LRU buffer,
//!   turning per-move network round trips into one round trip per batch.
//!
//! This crate reproduces that architecture in-process:
//!
//! * [`Partitioned`] — a minimal RDD-like partitioned dataset with parallel
//!   `map`/`filter`/`reduce` over a thread pool;
//! * [`LruCache`] — the prefetch buffer with LRU eviction;
//! * [`Cluster`] / [`DistributedMaar`] — long-lived worker threads holding
//!   graph shards, a master running the extended-KL sweep against them, and
//!   [`IoStats`] counting simulated master↔worker traffic. The Table-II
//!   harness measures wall time against graph size on this runtime.
//! * [`DistributedDetector`] — the iterative cut-and-prune pipeline on the
//!   cluster, with checkpoint/resume and a [`ClusterError`]-based failure
//!   model (respawn from lineage, watchdog for hung workers, shard
//!   rebalancing onto survivors) instead of panics.

#![forbid(unsafe_code)]

mod cluster;
mod detect;
mod error;
mod lru;
mod rdd;

pub use cluster::{Cluster, ClusterConfig, DistributedMaar, DistributedOutcome, IoStats};
pub use detect::{CheckpointSink, DistributedDetector};
pub use error::ClusterError;
pub use lru::LruCache;
pub use rdd::Partitioned;
