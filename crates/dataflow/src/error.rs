//! Structured failures of the distributed runtime.
//!
//! The cluster's posture mirrors the single-process runtime (*degrade,
//! don't abort*): a dead worker is respawned from lineage, a hung worker
//! is detected by the per-request watchdog and respawned, a persistently
//! failing worker has its shard rebalanced onto a survivor — and only
//! when none of that can serve the request does a [`ClusterError`]
//! surface. It converts into [`rejecto_core::RuntimeError::ClusterFailed`]
//! so distributed outcomes flow through the same failure taxonomy as the
//! rest of the pipeline.

use std::error::Error;
use std::fmt;

/// A structured failure of the distributed cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// [`crate::ClusterConfig`] validation failed at construction.
    InvalidConfig {
        /// Which knob was rejected and why.
        message: String,
    },
    /// The OS refused to spawn a worker thread.
    SpawnFailed {
        /// Worker index that could not be (re)spawned.
        worker: usize,
        /// The underlying spawn error, rendered.
        message: String,
    },
    /// A worker kept failing through the whole respawn budget and no
    /// survivor was left to rebalance its shard onto.
    WorkerLost {
        /// Worker index (at the time of loss) that could not be recovered.
        worker: usize,
        /// Respawn attempts made before giving up.
        attempts: usize,
    },
    /// A worker answered a request with the wrong response kind — a bug,
    /// reported as data rather than a panic so a long-lived master
    /// degrades instead of aborting.
    ProtocolViolation {
        /// What was expected and what arrived instead.
        message: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { message } => {
                write!(f, "invalid cluster config: {message}")
            }
            ClusterError::SpawnFailed { worker, message } => {
                write!(f, "could not spawn worker {worker}: {message}")
            }
            ClusterError::WorkerLost { worker, attempts } => write!(
                f,
                "worker {worker} lost after {attempts} respawn attempt(s) with no \
                 survivor to rebalance onto"
            ),
            ClusterError::ProtocolViolation { message } => {
                write!(f, "request/response protocol violated: {message}")
            }
        }
    }
}

impl Error for ClusterError {}

impl From<ClusterError> for rejecto_core::RuntimeError {
    fn from(e: ClusterError) -> Self {
        rejecto_core::RuntimeError::ClusterFailed { message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position_context() {
        let e = ClusterError::WorkerLost { worker: 3, attempts: 4 };
        let s = e.to_string();
        assert!(s.contains("worker 3"), "missing worker in: {s}");
        assert!(s.contains("4 respawn"), "missing attempts in: {s}");
    }

    #[test]
    fn converts_into_the_core_failure_taxonomy() {
        let e = ClusterError::InvalidConfig { message: "zero workers".to_string() };
        let rt: rejecto_core::RuntimeError = e.into();
        match rt {
            rejecto_core::RuntimeError::ClusterFailed { message } => {
                assert!(message.contains("zero workers"), "{message}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
