//! Iterative detection on the distributed runtime (§IV-E on §V).
//!
//! [`DistributedDetector`] is the cluster-backed twin of
//! `rejecto_core::IterativeDetector`: the same cut-and-prune loop, with
//! every MAAR solve executed by [`DistributedMaar`] against a fresh
//! per-round [`Cluster`] sharding the residual graph. Its statement order
//! deliberately mirrors the single-process loop so that:
//!
//! * a run is **worker-count invariant** — the master's sweep is
//!   sequential and placement-independent, so 1 worker and 16 workers
//!   produce byte-identical reports;
//! * a run under any injected fault plan that leaves a survivor is
//!   byte-identical to the failure-free run (recovery replays requests
//!   against immutable lineage);
//! * a run resumed from a PR-4 checkpoint is byte-identical to the
//!   uninterrupted run (same [`Checkpoint`] rebuild as the core
//!   detector).
//!
//! Unlike the core detector, every entry point returns a `Result`: losing
//! all workers is a [`RuntimeError::ClusterFailed`], not a panic.

use crate::cluster::interrupt_reason;
use crate::{Cluster, ClusterConfig, DistributedMaar, IoStats};
use kl::CancelToken;
use rejection::{AugmentedGraph, NodeId};
use rejecto_core::checkpoint::Checkpoint;
use rejecto_core::{
    ClusterFaults, Completion, DetectedGroup, DetectionReport, InterruptReason, RejectoConfig,
    RuntimeError, Seeds, Termination,
};
use std::io;
use std::sync::Arc;

/// A checkpoint consumer, as in the core detector: called after every
/// completed pruning round; errors are recorded on the report as
/// [`RuntimeError::CheckpointIo`] and never stop the detection.
pub type CheckpointSink<'a> = &'a mut dyn FnMut(&Checkpoint) -> io::Result<()>;

/// Mid-run loop state (report so far, residual graph, mapping back to
/// original ids) — fresh or rebuilt from a [`Checkpoint`].
struct LoopState {
    report: DetectionReport,
    current: AugmentedGraph,
    to_original: Vec<NodeId>,
}

impl LoopState {
    fn fresh(g: &AugmentedGraph) -> LoopState {
        LoopState {
            report: DetectionReport::default(),
            current: g.clone(),
            to_original: g.nodes().collect(),
        }
    }

    /// Rebuilds the state the uninterrupted run had after the checkpointed
    /// round (one induction over the survivor set composes with the run's
    /// per-round inductions — same argument as the core detector).
    fn from_checkpoint(g: &AugmentedGraph, ckpt: &Checkpoint) -> LoopState {
        let mut keep = vec![false; g.num_nodes()];
        for &u in &ckpt.remaining {
            keep[u as usize] = true;
        }
        let (current, to_original) = g.induced_subgraph(&keep);
        LoopState { report: ckpt.report(), current, to_original }
    }
}

/// The iterative MAAR-cut detector running on the Spark-substitute
/// cluster.
#[derive(Debug, Clone)]
pub struct DistributedDetector {
    solver: DistributedMaar,
    cluster_config: ClusterConfig,
    config: RejectoConfig,
    obs: Option<rejecto_obs::Obs>,
}

impl DistributedDetector {
    /// Creates a detector; each pruning round spawns a cluster sized by
    /// `cluster_config` (capped at the residual graph's node count as the
    /// graph shrinks).
    pub fn new(cluster_config: ClusterConfig, config: RejectoConfig) -> Self {
        DistributedDetector {
            solver: DistributedMaar::new(cluster_config, config.clone()),
            cluster_config,
            config,
            obs: None,
        }
    }

    /// Attaches a metrics registry, shared with the underlying
    /// [`DistributedMaar`] sweeps. Deterministic spans and counters match
    /// the single-process detector's vocabulary; the run's aggregate
    /// [`IoStats`] and cancellation polls are absorbed into the volatile
    /// `timings` section when the loop returns (they vary with worker
    /// count and fault schedules, exactly like the `detect_with_io`
    /// counters).
    pub fn set_obs(&mut self, obs: rejecto_obs::Obs) {
        self.solver.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Runs the full pipeline on `g`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ClusterFailed`] when the cluster configuration is
    /// invalid or every worker is lost beyond recovery.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
    ) -> Result<DetectionReport, RuntimeError> {
        Ok(self.run_loop(g, seeds, termination, LoopState::fresh(g), None)?.0)
    }

    /// [`DistributedDetector::detect`], also returning the aggregate
    /// traffic counters of the whole run. The counters live outside the
    /// report on purpose: they vary with worker count and fault schedules
    /// while the report must stay byte-identical across both.
    ///
    /// # Errors
    ///
    /// As [`DistributedDetector::detect`].
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect_with_io(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
    ) -> Result<(DetectionReport, IoStats), RuntimeError> {
        self.run_loop(g, seeds, termination, LoopState::fresh(g), None)
    }

    /// [`DistributedDetector::detect`], calling `sink` with a
    /// [`Checkpoint`] after every completed pruning round.
    ///
    /// # Errors
    ///
    /// As [`DistributedDetector::detect`].
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect_with_checkpoints(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        sink: CheckpointSink<'_>,
    ) -> Result<DetectionReport, RuntimeError> {
        Ok(self.run_loop(g, seeds, termination, LoopState::fresh(g), Some(sink))?.0)
    }

    /// Continues a run from `checkpoint` exactly as if the original run
    /// had never stopped. Checkpoints written by the single-process
    /// detector resume distributed runs and vice versa — the format
    /// records algorithm state, not deployment.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CheckpointMismatch`] (and friends) when the
    /// checkpoint does not describe `g`;
    /// [`RuntimeError::ClusterFailed`] as in
    /// [`DistributedDetector::detect`].
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn resume(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        checkpoint: &Checkpoint,
    ) -> Result<DetectionReport, RuntimeError> {
        checkpoint.validate_against(g)?;
        Ok(self
            .run_loop(g, seeds, termination, LoopState::from_checkpoint(g, checkpoint), None)?
            .0)
    }

    /// [`DistributedDetector::resume`] with checkpointing of the continued
    /// rounds.
    ///
    /// # Errors
    ///
    /// As [`DistributedDetector::resume`].
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn resume_with_checkpoints(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        checkpoint: &Checkpoint,
        sink: CheckpointSink<'_>,
    ) -> Result<DetectionReport, RuntimeError> {
        checkpoint.validate_against(g)?;
        Ok(self
            .run_loop(
                g,
                seeds,
                termination,
                LoopState::from_checkpoint(g, checkpoint),
                Some(sink),
            )?
            .0)
    }

    /// The pruning loop — the same statement order as the core detector's
    /// `run_loop`, with the MAAR solve delegated to the cluster. Budgets
    /// are armed once on a shared token; fault schedules are armed once
    /// and shared across per-round clusters so each schedule fires exactly
    /// once per run.
    fn run_loop(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        state: LoopState,
        mut sink: Option<CheckpointSink<'_>>,
    ) -> Result<(DetectionReport, IoStats), RuntimeError> {
        let LoopState { mut report, mut current, mut to_original } = state;
        let config = &self.config;
        let max_rounds = config.max_rounds;

        let budget = match termination {
            Termination::SuspectBudget(b) => Some(b),
            Termination::AcceptanceThreshold(_) => None,
            Termination::BudgetOrThreshold { budget, .. } => Some(budget),
            #[allow(unreachable_patterns)]
            _ => None,
        };
        let threshold = match termination {
            Termination::SuspectBudget(_) => None,
            Termination::AcceptanceThreshold(t) => Some(t),
            Termination::BudgetOrThreshold { threshold, .. } => Some(threshold),
            #[allow(unreachable_patterns)]
            _ => None,
        };

        let token = CancelToken::new();
        let faults = ClusterFaults::new(&config.faults);
        if let Some(deadline) = config.budget.deadline {
            token.set_deadline_in(deadline);
        }
        if let Some(deadline) = faults.deadline() {
            // The token keeps the tighter of the two deadlines.
            token.set_deadline_in(deadline);
        }
        if let Some(passes) = config.budget.max_kl_passes {
            token.set_pass_budget(passes);
        }
        let mut completion = Completion::Complete;
        let mut total_io = IoStats::default();
        let _detect_span = self.obs.as_ref().map(|o| o.span("detect"));

        while report.rounds < max_rounds {
            if let Some(limit) = config.budget.max_rounds {
                if report.rounds >= limit {
                    completion = Completion::Partial {
                        completed_rounds: report.rounds,
                        completed_k_indices: Vec::new(),
                        reason: InterruptReason::RoundBudget,
                    };
                    break;
                }
            }
            if token.is_cancelled() {
                completion = Completion::Partial {
                    completed_rounds: report.rounds,
                    completed_k_indices: Vec::new(),
                    reason: interrupt_reason(&token),
                };
                break;
            }
            report.rounds += 1;
            if let Some(b) = budget {
                if report.num_suspects() >= b {
                    break;
                }
            }

            // Map seeds into residual-graph ids (pruned seeds drop out).
            let mut current_index = vec![u32::MAX; g.num_nodes()];
            for (i, &orig) in to_original.iter().enumerate() {
                current_index[orig.index()] = i as u32;
            }
            let map = |ids: &[NodeId]| -> Vec<NodeId> {
                ids.iter()
                    .filter_map(|s| {
                        let m = current_index[s.index()];
                        (m != u32::MAX).then_some(NodeId(m))
                    })
                    .collect()
            };
            let legit = map(&seeds.legit);
            let spammer = map(&seeds.spammer);

            // A fresh cluster shards the residual graph each round — the
            // distributed analogue of re-deriving the RDDs after a prune.
            // Worker count is capped by the shrinking graph.
            let round_config = ClusterConfig {
                num_workers: self.cluster_config.num_workers.min(current.num_nodes().max(1)),
                ..self.cluster_config
            };
            let cluster = Cluster::from_arc(Arc::new(current.clone()), &round_config)?;
            cluster.arm_faults(faults.clone());
            let _round_span = self.obs.as_ref().map(|o| o.span("detect/round"));
            let outcome = self.solver.solve_monitored_on(
                &cluster,
                current.num_nodes(),
                &legit,
                &spammer,
                &token,
            )?;
            total_io.merge(&outcome.io);
            report.failures.extend(outcome.failures);
            if let Completion::Partial { completed_k_indices, .. } = outcome.completion {
                // The round did not finish; it does not count, and the
                // sweep progress becomes the partial-report diagnostic.
                report.rounds -= 1;
                completion = Completion::Partial {
                    completed_rounds: report.rounds,
                    completed_k_indices,
                    reason: interrupt_reason(&token),
                };
                break;
            }
            // Resource budget — statement-for-statement mirror of the core
            // detector's check: would accepting this round's cut condemn
            // more of the *original* graph than `max_suspect_frac` allows?
            // Checked before the round is counted so the rollback leaves no
            // trace in the report, and skipped for cuts the threshold would
            // discard anyway (the run stops Complete there, not Partial).
            // The trip is a pure function of input and configuration, so it
            // is deterministic across worker counts.
            if let (Some(frac), Some(ac)) =
                (config.resources.max_suspect_frac, outcome.acceptance_rate)
            {
                let admissible = threshold.is_none_or(|t| ac <= t);
                let after = report
                    .num_suspects()
                    .checked_add(outcome.suspects.len())
                    .expect("suspect count fits in usize");
                let cap = frac * g.num_nodes() as f64;
                if admissible && after as f64 > cap {
                    report.rounds -= 1;
                    if let Some(obs) = &self.obs {
                        obs.incr("res/suspect_frac_trips", 1);
                    }
                    completion = Completion::Partial {
                        completed_rounds: report.rounds,
                        completed_k_indices: Vec::new(),
                        reason: InterruptReason::ResourceBudget,
                    };
                    break;
                }
            }
            // Only completed rounds count — same rule as the core
            // detector, so interrupted (scheduling-dependent) rounds never
            // reach the deterministic counters.
            if let Some(obs) = &self.obs {
                obs.incr("detect/rounds", 1);
            }
            let (Some(ac), Some(k)) = (outcome.acceptance_rate, outcome.k_exact) else {
                break;
            };
            if let Some(t) = threshold {
                if ac > t {
                    break;
                }
            }

            let local = outcome.suspects;
            let mut nodes: Vec<NodeId> = local.iter().map(|u| to_original[u.index()]).collect();
            nodes.sort_unstable();
            report.groups.push(DetectedGroup {
                nodes,
                acceptance_rate: ac,
                k,
                round: report.rounds,
            });

            // Prune the group with its links and rejections.
            let mut keep = vec![true; current.num_nodes()];
            for u in &local {
                keep[u.index()] = false;
            }
            let (next, original_of_next) = current.induced_subgraph(&keep);
            to_original = original_of_next.iter().map(|u| to_original[u.index()]).collect();
            current = next;

            if let Some(write) = sink.as_mut() {
                let ckpt = Checkpoint::capture(g, &report);
                if let Some(obs) = &self.obs {
                    let bytes = u64::try_from(ckpt.to_json().len())
                        .expect("checkpoint size fits in u64");
                    obs.record("detect/checkpoint_bytes", bytes);
                }
                if let Err(e) = write(&ckpt) {
                    report.failures.push(RuntimeError::CheckpointIo {
                        round: report.rounds,
                        message: e.to_string(),
                    });
                }
            }
        }
        if let Some(obs) = &self.obs {
            absorb_io(obs, &total_io);
            obs.volatile_incr("cancel/polls", token.polls());
        }
        report.completion = completion;
        Ok((report, total_io))
    }
}

/// Feeds a run's aggregate [`IoStats`] into the **volatile** section of the
/// metrics document — every one of these counters varies with worker count
/// and fault schedules, so none may land next to the byte-compared
/// counters. The exhaustive destructuring mirrors [`IoStats::merge`]:
/// adding a field without deciding its metrics path is a compile error.
fn absorb_io(obs: &rejecto_obs::Obs, io: &IoStats) {
    let IoStats {
        fetch_batches,
        nodes_fetched,
        buffer_hits,
        buffer_misses,
        init_jobs,
        worker_restarts,
        shards_rebalanced,
        hangs_absorbed,
    } = *io;
    obs.volatile_incr("io/fetch_batches", fetch_batches);
    obs.volatile_incr("io/nodes_fetched", nodes_fetched);
    obs.volatile_incr("io/buffer_hits", buffer_hits);
    obs.volatile_incr("io/buffer_misses", buffer_misses);
    obs.volatile_incr("io/init_jobs", init_jobs);
    obs.volatile_incr("io/worker_restarts", worker_restarts);
    obs.volatile_incr("io/shards_rebalanced", shards_rebalanced);
    obs.volatile_incr("io/hangs_absorbed", hangs_absorbed);
}
