//! Property-based tests of the §VI-A scenario generator.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulator::{Scenario, ScenarioConfig};
use socialgraph::generators::BarabasiAlbert;
use socialgraph::Graph;

fn host(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    BarabasiAlbert::new(n.max(10), 3).generate(&mut rng)
}

fn small_config() -> impl Strategy<Value = ScenarioConfig> {
    (
        5usize..60,    // fakes
        0usize..10,    // intra edges
        0.0f64..=1.0,  // spammer fraction
        1usize..15,    // requests per spammer
        0.0f64..=1.0,  // spam rejection
        0.0f64..0.9,   // legit rejection
        0.0f64..=1.0,  // careless fraction
    )
        .prop_map(|(fakes, intra, frac, reqs, srej, lrej, careless)| ScenarioConfig {
            num_fakes: fakes,
            fake_intra_edges: intra,
            spammer_fraction: frac,
            requests_per_spammer: reqs,
            spam_rejection_rate: srej,
            legit_rejection_rate: lrej,
            careless_fraction: careless,
            ..ScenarioConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulation is a pure function of (host, config, seed).
    #[test]
    fn simulation_is_deterministic(cfg in small_config(), seed in 0u64..1000) {
        let h = host(80, 1);
        let a = Scenario::new(cfg.clone()).run(&h, seed);
        let b = Scenario::new(cfg).run(&h, seed);
        prop_assert_eq!(a.graph, b.graph);
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(a.spammers, b.spammers);
    }

    /// The augmented graph is exactly the projection of the request log:
    /// same friendship count, and every rejection edge has a rejected
    /// request behind it.
    #[test]
    fn graph_is_projection_of_log(cfg in small_config(), seed in 0u64..1000) {
        let h = host(60, 2);
        let sim = Scenario::new(cfg).run(&h, seed);
        let rebuilt = sim.log.to_augmented_graph();
        prop_assert_eq!(&sim.graph, &rebuilt);
        for u in sim.graph.nodes() {
            for &v in sim.graph.rejected_by(u) {
                let backing = sim
                    .log
                    .requests()
                    .iter()
                    .any(|r| r.from == v && r.to == u && !r.accepted);
                prop_assert!(backing, "rejection ⟨{u}, {v}⟩ without a rejected request");
            }
        }
    }

    /// Ground-truth layout: legit users first, fakes after; spammers are
    /// fakes; counts line up with the config.
    #[test]
    fn ground_truth_is_consistent(cfg in small_config(), seed in 0u64..1000) {
        let h = host(60, 3);
        let sim = Scenario::new(cfg.clone()).run(&h, seed);
        prop_assert_eq!(sim.num_legit, h.num_nodes());
        prop_assert_eq!(sim.fakes.len(), cfg.num_fakes);
        prop_assert_eq!(
            sim.is_fake.iter().filter(|&&f| f).count(),
            cfg.num_fakes
        );
        for (i, &f) in sim.is_fake.iter().enumerate() {
            prop_assert_eq!(f, i >= sim.num_legit);
        }
        for s in &sim.spammers {
            prop_assert!(sim.is_fake[s.index()], "spammer {s} not a fake");
        }
        // With no self-rejection, spammer count follows the fraction.
        let expect = (cfg.num_fakes as f64 * cfg.spammer_fraction).round() as usize;
        prop_assert_eq!(sim.spammers.len(), expect);
    }

    /// Attack edges equal the accepted cross-boundary requests
    /// (spam accepted by legit + careless accepted by fakes), up to
    /// duplicate collapsing.
    #[test]
    fn attack_edges_match_accepted_cross_requests(cfg in small_config(), seed in 0u64..1000) {
        let h = host(60, 4);
        let sim = Scenario::new(cfg).run(&h, seed);
        let accepted_cross = sim
            .log
            .requests()
            .iter()
            .filter(|r| {
                r.accepted && (sim.is_fake[r.from.index()] != sim.is_fake[r.to.index()])
            })
            .count() as u64;
        let attack = sim.attack_edges();
        prop_assert!(attack <= accepted_cross, "{attack} > {accepted_cross}");
        // Duplicates are rare at this scale; the counts stay close.
        prop_assert!(
            attack as f64 >= 0.9 * accepted_cross as f64,
            "attack {attack} vs accepted cross {accepted_cross}"
        );
    }

    /// Host friendships always survive into the simulated graph.
    #[test]
    fn host_graph_is_preserved(cfg in small_config(), seed in 0u64..1000) {
        let h = host(50, 5);
        let sim = Scenario::new(cfg).run(&h, seed);
        for (u, v) in h.edges() {
            prop_assert!(sim.graph.are_friends(u, v), "lost host edge ({u}, {v})");
        }
    }
}
