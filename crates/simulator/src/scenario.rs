use crate::RequestLog;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejection::AugmentedGraph;
use socialgraph::{Graph, NodeId};

/// The self-rejection whitewashing strategy (§IV-E, Fig 14).
///
/// The attacker wants to protect `whitewashed` of his *spamming* accounts.
/// He sacrifices the remaining fakes: they stop spamming legitimate users
/// and instead send `requests_per_sender` requests each to the whitewashed
/// accounts, who **reject** them at `rejection_rate`. Rejecting requests is
/// what legitimate users do to spam, so the whitewashed accounts now look
/// legitimate — and the crafted intra-fake cut around the sacrificed
/// senders can have a lower friends-to-rejections ratio than the global
/// spammer/legitimate cut, luring a single-cut detector away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfRejectionConfig {
    /// How many fakes the attacker whitewashes. These accounts keep
    /// sending friend spam to legitimate users, but additionally reject
    /// the internal requests.
    pub whitewashed: usize,
    /// Requests each sacrificed fake sends to the whitewashed set
    /// (sacrificed fakes send no spam to legitimate users).
    pub requests_per_sender: usize,
    /// Rejection rate of those internal requests (the Fig 14 sweep axis).
    pub rejection_rate: f64,
}

/// Parameters of the §VI-A simulation protocol. Defaults are the paper's
/// baseline; the experiment harnesses sweep one field at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of injected fake accounts (paper: 10,000).
    pub num_fakes: usize,
    /// Accepted intra-fake requests per arriving fake (paper: 6;
    /// Fig 13 sweeps this as the collusion axis, 0–40).
    pub fake_intra_edges: usize,
    /// Fraction of fakes that send spam to legitimate users (Fig 10: 0.5).
    pub spammer_fraction: f64,
    /// Spam requests per spamming fake (paper: 20; Fig 9 sweeps 5–50).
    pub requests_per_spammer: usize,
    /// Rejection rate of spam requests by legitimate users (paper: 0.70,
    /// from the RenRen measurement; Fig 11 sweeps it).
    pub spam_rejection_rate: f64,
    /// Rejection rate among legitimate users (paper: 0.20; Fig 12 sweeps).
    pub legit_rejection_rate: f64,
    /// Fraction of legitimate users that carelessly send one accepted
    /// request into the Sybil region (paper: 0.15).
    pub careless_fraction: f64,
    /// Optional self-rejection strategy (Fig 14).
    pub self_rejection: Option<SelfRejectionConfig>,
    /// Requests from random legitimate users to fakes that the fakes
    /// reject, i.e. rejections cast **on** legitimate users (Fig 15 sweeps
    /// 16K–160K at paper scale).
    pub legit_requests_rejected_by_fakes: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            num_fakes: 10_000,
            fake_intra_edges: 6,
            spammer_fraction: 1.0,
            requests_per_spammer: 20,
            spam_rejection_rate: 0.70,
            legit_rejection_rate: 0.20,
            careless_fraction: 0.15,
            self_rejection: None,
            legit_requests_rejected_by_fakes: 0,
        }
    }
}

impl ScenarioConfig {
    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.spammer_fraction), "spammer_fraction out of [0,1]");
        assert!(
            (0.0..=1.0).contains(&self.spam_rejection_rate),
            "spam_rejection_rate out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.legit_rejection_rate) && self.legit_rejection_rate < 1.0,
            "legit_rejection_rate out of [0,1)"
        );
        assert!((0.0..=1.0).contains(&self.careless_fraction), "careless_fraction out of [0,1]");
        if let Some(sr) = &self.self_rejection {
            assert!(sr.whitewashed <= self.num_fakes, "whitewashed exceeds num_fakes");
            assert!(
                (0.0..=1.0).contains(&sr.rejection_rate),
                "self-rejection rate out of [0,1]"
            );
        }
    }
}

/// The simulated OSN produced by [`Scenario::run`].
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The rejection-augmented social graph (host graph + Sybil region +
    /// all request outcomes).
    pub graph: AugmentedGraph,
    /// The directed friend-request log (VoteTrust's input). Pre-existing
    /// host friendships are logged as accepted requests with a random
    /// historical direction.
    pub log: RequestLog,
    /// Ground truth: `is_fake[u]`.
    pub is_fake: Vec<bool>,
    /// Ids of the fakes that sent spam to legitimate users.
    pub spammers: Vec<NodeId>,
    /// Ids of all fakes (`num_legit..num_legit + num_fakes`).
    pub fakes: Vec<NodeId>,
    /// Number of legitimate users (the host-graph nodes, `0..num_legit`).
    pub num_legit: usize,
}

impl SimOutput {
    /// Ground-truth mask sliced as `&[bool]` (indexed by node id).
    pub fn is_fake_mask(&self) -> &[bool] {
        &self.is_fake
    }

    /// Number of attack edges (friendships straddling the fake/legit
    /// boundary).
    pub fn attack_edges(&self) -> u64 {
        let mut n = 0u64;
        for u in self.graph.nodes() {
            if !self.is_fake[u.index()] {
                continue;
            }
            for &v in self.graph.friends(u) {
                if !self.is_fake[v.index()] {
                    n += 1;
                }
            }
        }
        n
    }
}

/// Deterministic scenario runner; see [`ScenarioConfig`] for the knobs.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (rates outside `[0, 1]`,
    /// whitewashed count exceeding `num_fakes`).
    pub fn new(config: ScenarioConfig) -> Self {
        config.validate();
        Scenario { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Simulates the attack on `host` (its nodes are the legitimate users),
    /// deterministically from `seed`.
    pub fn run(&self, host: &Graph, seed: u64) -> SimOutput {
        self.run_impl(host, seed, None)
    }

    /// [`Scenario::run`], recording the attack generator's volumes
    /// (`sim/spam_requests`, `sim/intra_fake_edges`, ...) into `obs`. The
    /// simulation is single-threaded and seed-deterministic, so every
    /// counter is deterministic and lands in the byte-compared section.
    pub fn run_observed(&self, host: &Graph, seed: u64, obs: &rejecto_obs::Obs) -> SimOutput {
        self.run_impl(host, seed, Some(obs))
    }

    fn run_impl(&self, host: &Graph, seed: u64, obs: Option<&rejecto_obs::Obs>) -> SimOutput {
        let _sim_span = obs.map(|o| o.span("simulate"));
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let num_legit = host.num_nodes();
        let total = num_legit + cfg.num_fakes;
        let mut log = RequestLog::new(total);

        // Host friendships as historical accepted requests. Directions are
        // balanced per user (whoever has sent fewer so far initiates, ties
        // random) — over time both parties of a friendship circle initiate,
        // and this keeps every user's sent-request count near deg/2 instead
        // of leaving a Binomial tail of users who "never sent anything".
        let mut host_accepted_edges = 0u64;
        let mut sent_count = vec![0u32; total];
        for (u, v) in host.edges() {
            let u_first = match sent_count[u.index()].cmp(&sent_count[v.index()]) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => rng.gen_bool(0.5),
            };
            let (from, to) = if u_first { (u, v) } else { (v, u) };
            sent_count[from.index()] += 1;
            log.push(from, to, true);
            host_accepted_edges += 1;
        }

        let fakes: Vec<NodeId> =
            (num_legit..total).map(NodeId::from_index).collect();

        // Under self-rejection, split fakes into the whitewashed (who keep
        // spamming legitimate users) and the sacrificed internal senders
        // (who do not).
        let whitewashed_count = cfg.self_rejection.map_or(0, |sr| sr.whitewashed);
        let (whitewashed, sacrificed): (Vec<NodeId>, Vec<NodeId>) = {
            let mut shuffled = fakes.clone();
            shuffled.shuffle(&mut rng);
            let w = shuffled[..whitewashed_count].to_vec();
            let r = shuffled[whitewashed_count..].to_vec();
            (w, r)
        };

        // Attack-generator volume counters, flushed into `obs` at the end.
        let mut intra_fake_edges = 0u64;
        let mut spam_requests = 0u64;
        let mut careless_accepts = 0u64;
        let mut legit_rejections = 0u64;
        let mut self_rejection_requests = 0u64;
        let mut fig15_rejections = 0u64;

        // Sybil-region topology: each arriving fake sends accepted requests
        // to `fake_intra_edges` random earlier fakes.
        for (i, &f) in fakes.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let want = cfg.fake_intra_edges.min(i);
            let mut targets: Vec<usize> = (0..i).collect();
            targets.shuffle(&mut rng);
            for &t in targets.iter().take(want) {
                log.push(f, fakes[t], true);
                intra_fake_edges += 1;
            }
        }

        // Spamming subset. With self-rejection active, only the
        // whitewashed accounts spam legitimate users (the sacrificed fakes
        // spend their requests internally); otherwise all fakes are in the
        // pool.
        let spam_pool: &[NodeId] =
            if cfg.self_rejection.is_some() { &whitewashed } else { &fakes };
        let spam_count = (spam_pool.len() as f64 * cfg.spammer_fraction).round() as usize;
        let mut spammers: Vec<NodeId> = {
            let mut pool = spam_pool.to_vec();
            pool.shuffle(&mut rng);
            pool.truncate(spam_count.min(pool.len()));
            pool
        };
        spammers.sort_unstable();

        // Friend spam toward legitimate users.
        if num_legit > 0 {
            for &s in &spammers {
                let mut sent: Vec<NodeId> = Vec::with_capacity(cfg.requests_per_spammer);
                while sent.len() < cfg.requests_per_spammer.min(num_legit) {
                    let t = NodeId(rng.gen_range(0..num_legit as u32));
                    if sent.contains(&t) {
                        continue;
                    }
                    sent.push(t);
                    let accepted = !rng.gen_bool(cfg.spam_rejection_rate);
                    log.push(s, t, accepted);
                    spam_requests += 1;
                }
            }
        }

        // Careless legitimate users: one accepted request into the region.
        if !fakes.is_empty() {
            let careless = (num_legit as f64 * cfg.careless_fraction).round() as usize;
            let mut legit_ids: Vec<u32> = (0..num_legit as u32).collect();
            legit_ids.shuffle(&mut rng);
            for &u in legit_ids.iter().take(careless) {
                let f = fakes[rng.gen_range(0..fakes.len())];
                log.push(NodeId(u), f, true);
                careless_accepts += 1;
            }
        }

        // Rejections among legitimate users: user u's rejected-request count
        // is derived from the requests he sent (≈ his accepted friendships
        // he initiated) and the legit rejection rate: r/(r + sent) = ρ ⇒
        // r = sent·ρ/(1−ρ). Origins are random non-friend legitimate users.
        let rho = cfg.legit_rejection_rate;
        if rho > 0.0 && num_legit > 1 {
            let scale = rho / (1.0 - rho);
            for u in host.nodes() {
                let expected = sent_count[u.index()] as f64 * scale;
                let mut count = expected.floor() as usize;
                if rng.gen_bool(expected - count as f64) {
                    count += 1;
                }
                let mut placed = 0usize;
                let mut guard = 0usize;
                while placed < count && guard < 20 * count + 20 {
                    guard += 1;
                    let x = NodeId(rng.gen_range(0..num_legit as u32));
                    if x == u || host.has_edge(u, x) {
                        continue;
                    }
                    log.push(u, x, false);
                    placed += 1;
                    legit_rejections += 1;
                }
            }
        }

        // Self-rejection whitewashing (Fig 14): sacrificed fakes send
        // internal requests; whitewashed fakes reject them at the crafted
        // rate, mimicking how legitimate users treat spam.
        if let Some(sr) = cfg.self_rejection {
            if !whitewashed.is_empty() {
                for &s in &sacrificed {
                    for _ in 0..sr.requests_per_sender {
                        let t = whitewashed[rng.gen_range(0..whitewashed.len())];
                        let accepted = !rng.gen_bool(sr.rejection_rate);
                        log.push(s, t, accepted);
                        self_rejection_requests += 1;
                    }
                }
            }
        }

        // Fakes rejecting legitimate users' requests (Fig 15). Requests
        // are spread round-robin over a shuffled legit population so every
        // legitimate user carries a near-equal share (no artificial
        // high-rejection subgroup).
        if !fakes.is_empty() && num_legit > 0 && cfg.legit_requests_rejected_by_fakes > 0 {
            let mut order: Vec<u32> = (0..num_legit as u32).collect();
            order.shuffle(&mut rng);
            for i in 0..cfg.legit_requests_rejected_by_fakes {
                let u = NodeId(order[(i % num_legit as u64) as usize]);
                let f = fakes[rng.gen_range(0..fakes.len())];
                log.push(u, f, false);
                fig15_rejections += 1;
            }
        }

        let mut is_fake = vec![false; total];
        for &f in &fakes {
            is_fake[f.index()] = true;
        }
        if let Some(obs) = obs {
            obs.incr("sim/host_accepted_edges", host_accepted_edges);
            obs.incr("sim/intra_fake_edges", intra_fake_edges);
            obs.incr("sim/spam_requests", spam_requests);
            obs.incr("sim/careless_accepts", careless_accepts);
            obs.incr("sim/legit_rejections", legit_rejections);
            obs.incr("sim/self_rejection_requests", self_rejection_requests);
            obs.incr("sim/fig15_rejections", fig15_rejections);
        }
        let graph = log.to_augmented_graph();
        SimOutput { graph, log, is_fake, spammers, fakes, num_legit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialgraph::generators::BarabasiAlbert;

    fn host(n: usize) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        BarabasiAlbert::new(n, 4).generate(&mut rng)
    }

    fn small_config() -> ScenarioConfig {
        ScenarioConfig { num_fakes: 40, requests_per_spammer: 10, ..ScenarioConfig::default() }
    }

    #[test]
    fn ground_truth_matches_layout() {
        let sim = Scenario::new(small_config()).run(&host(300), 1);
        assert_eq!(sim.num_legit, 300);
        assert_eq!(sim.fakes.len(), 40);
        assert!(sim.is_fake[300] && sim.is_fake[339]);
        assert!(!sim.is_fake[0] && !sim.is_fake[299]);
    }

    #[test]
    fn observed_run_matches_unobserved_and_reconciles_with_the_log() {
        let h = host(200);
        let cfg = ScenarioConfig {
            legit_requests_rejected_by_fakes: 50,
            self_rejection: Some(SelfRejectionConfig {
                whitewashed: 10,
                requests_per_sender: 5,
                rejection_rate: 0.5,
            }),
            ..small_config()
        };
        let plain = Scenario::new(cfg.clone()).run(&h, 7);
        let obs = rejecto_obs::Obs::default();
        let observed = Scenario::new(cfg).run_observed(&h, 7, &obs);
        assert_eq!(plain.graph, observed.graph);
        assert_eq!(plain.log, observed.log);
        assert_eq!(obs.span_count("simulate"), 1);

        // Every logged request is claimed by exactly one counter.
        let total: u64 = [
            "sim/host_accepted_edges",
            "sim/intra_fake_edges",
            "sim/spam_requests",
            "sim/careless_accepts",
            "sim/legit_rejections",
            "sim/self_rejection_requests",
            "sim/fig15_rejections",
        ]
        .iter()
        .map(|k| obs.counter(k))
        .sum();
        let logged = u64::try_from(observed.log.requests().len()).expect("log fits in u64");
        assert_eq!(total, logged);
        assert_eq!(obs.counter("sim/fig15_rejections"), 50);
        assert!(obs.counter("sim/spam_requests") > 0);
        assert!(obs.counter("sim/self_rejection_requests") > 0);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let h = host(200);
        let a = Scenario::new(small_config()).run(&h, 7);
        let b = Scenario::new(small_config()).run(&h, 7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.log, b.log);
        let c = Scenario::new(small_config()).run(&h, 8);
        assert_ne!(a.log, c.log);
    }

    #[test]
    fn spam_rejection_rate_is_respected_in_aggregate() {
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 100,
            requests_per_spammer: 20,
            spam_rejection_rate: 0.7,
            careless_fraction: 0.0,
            legit_rejection_rate: 0.0,
            ..ScenarioConfig::default()
        })
        .run(&host(500), 3);
        // Rejections received by fakes from legit ÷ spam volume ≈ 0.7.
        let mut rejected = 0usize;
        let mut total = 0usize;
        for r in sim.log.requests() {
            if sim.is_fake[r.from.index()] && !sim.is_fake[r.to.index()] {
                total += 1;
                if !r.accepted {
                    rejected += 1;
                }
            }
        }
        assert_eq!(total, 100 * 20);
        let rate = rejected as f64 / total as f64;
        assert!((rate - 0.7).abs() < 0.05, "empirical spam rejection rate {rate}");
    }

    #[test]
    fn half_spammer_fraction_halves_senders() {
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 100,
            spammer_fraction: 0.5,
            ..ScenarioConfig::default()
        })
        .run(&host(300), 4);
        assert_eq!(sim.spammers.len(), 50);
        // Non-spamming fakes still have intra-fake friendships.
        let silent = sim.fakes.iter().find(|f| !sim.spammers.contains(f)).unwrap();
        assert!(sim.graph.friend_degree(*silent) > 0);
    }

    #[test]
    fn collusion_densifies_the_fake_region() {
        let base = Scenario::new(ScenarioConfig {
            num_fakes: 60,
            fake_intra_edges: 4,
            ..ScenarioConfig::default()
        })
        .run(&host(200), 5);
        let dense = Scenario::new(ScenarioConfig {
            num_fakes: 60,
            fake_intra_edges: 30,
            ..ScenarioConfig::default()
        })
        .run(&host(200), 5);
        let intra = |sim: &SimOutput| -> u64 {
            sim.fakes
                .iter()
                .map(|&f| {
                    sim.graph.friends(f).iter().filter(|v| sim.is_fake[v.index()]).count() as u64
                })
                .sum::<u64>()
                / 2
        };
        assert!(intra(&dense) > 3 * intra(&base));
    }

    #[test]
    fn self_rejection_sacrifices_internal_senders() {
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 60,
            self_rejection: Some(SelfRejectionConfig {
                whitewashed: 30,
                requests_per_sender: 10,
                rejection_rate: 0.8,
            }),
            ..ScenarioConfig::default()
        })
        .run(&host(200), 6);
        // Only the whitewashed accounts spam legitimate users.
        assert_eq!(sim.spammers.len(), 30);
        // The sacrificed fakes got rejected by the whitewashed ⇒ internal
        // fake-to-fake rejections exist, all landing on non-spammers.
        let mut internal_rejections = 0usize;
        for &f in &sim.fakes {
            let from_fakes = sim
                .graph
                .rejectors_of(f)
                .iter()
                .filter(|r| sim.is_fake[r.index()])
                .count();
            if from_fakes > 0 {
                assert!(
                    !sim.spammers.contains(&f),
                    "whitewashed (spamming) fake {f} received internal rejections"
                );
            }
            internal_rejections += from_fakes;
        }
        assert!(internal_rejections > 0);
        // Sacrificed fakes never sent a request to a legit user.
        for r in sim.log.requests() {
            if sim.is_fake[r.from.index()]
                && !sim.is_fake[r.to.index()]
                && !sim.spammers.contains(&r.from)
            {
                panic!("sacrificed fake {} sent spam", r.from);
            }
        }
    }

    #[test]
    fn legit_rejections_scale_with_rate() {
        let lo = Scenario::new(ScenarioConfig {
            num_fakes: 10,
            legit_rejection_rate: 0.1,
            ..ScenarioConfig::default()
        })
        .run(&host(400), 7);
        let hi = Scenario::new(ScenarioConfig {
            num_fakes: 10,
            legit_rejection_rate: 0.5,
            ..ScenarioConfig::default()
        })
        .run(&host(400), 7);
        let legit_rej = |sim: &SimOutput| {
            sim.log
                .requests()
                .iter()
                .filter(|r| {
                    !r.accepted && !sim.is_fake[r.from.index()] && !sim.is_fake[r.to.index()]
                })
                .count()
        };
        assert!(legit_rej(&hi) > 3 * legit_rej(&lo));
    }

    #[test]
    fn fig15_knob_adds_rejections_on_legit() {
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 20,
            legit_requests_rejected_by_fakes: 500,
            ..ScenarioConfig::default()
        })
        .run(&host(200), 8);
        let on_legit: usize = (0..sim.num_legit)
            .map(|u| {
                sim.graph
                    .rejectors_of(NodeId(u as u32))
                    .iter()
                    .filter(|r| sim.is_fake[r.index()])
                    .count()
            })
            .sum();
        // Duplicates collapse, so ≤ 500 but clearly present.
        assert!(on_legit > 400, "got {on_legit}");
    }

    #[test]
    fn attack_edges_count_straddling_friendships() {
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 50,
            careless_fraction: 0.0,
            spam_rejection_rate: 1.0,
            legit_rejection_rate: 0.0,
            ..ScenarioConfig::default()
        })
        .run(&host(200), 9);
        // All spam rejected + no careless users ⇒ no attack edges.
        assert_eq!(sim.attack_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "whitewashed exceeds num_fakes")]
    fn validates_whitewashed_bound() {
        let _ = Scenario::new(ScenarioConfig {
            num_fakes: 5,
            self_rejection: Some(SelfRejectionConfig {
                whitewashed: 6,
                requests_per_sender: 1,
                rejection_rate: 0.5,
            }),
            ..ScenarioConfig::default()
        });
    }
}

#[cfg(test)]
mod fig15_tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use socialgraph::generators::BarabasiAlbert;

    #[test]
    fn fig15_rejections_are_spread_evenly_over_legit_users() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let host = BarabasiAlbert::new(400, 4).generate(&mut rng);
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 50,
            legit_requests_rejected_by_fakes: 1_200, // 3 per legit user
            legit_rejection_rate: 0.0,
            ..ScenarioConfig::default()
        })
        .run(&host, 9);
        // Count rejections each legit user received from fakes.
        let mut min = usize::MAX;
        let mut max = 0usize;
        for u in 0..sim.num_legit {
            let from_fakes = sim
                .graph
                .rejectors_of(NodeId(u as u32))
                .iter()
                .filter(|r| sim.is_fake[r.index()])
                .count();
            min = min.min(from_fakes);
            max = max.max(from_fakes);
        }
        // Round-robin placement: every user within one of the mean (some
        // loss to duplicate-edge collapsing is tolerated on the low side).
        assert!(max <= 4, "max per-user rejections {max}");
        assert!(min >= 1, "min per-user rejections {min}");
    }

    #[test]
    fn sent_requests_are_balanced_per_user() {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let host = BarabasiAlbert::new(300, 4).generate(&mut rng);
        let sim = Scenario::new(ScenarioConfig {
            num_fakes: 10,
            legit_rejection_rate: 0.0,
            careless_fraction: 0.0,
            ..ScenarioConfig::default()
        })
        .run(&host, 10);
        // Accepted host requests sent by each legit user ≈ deg/2 ± 1.
        let mut sent = vec![0usize; sim.num_legit];
        for r in sim.log.requests() {
            if !sim.is_fake[r.from.index()] && !sim.is_fake[r.to.index()] && r.accepted {
                sent[r.from.index()] += 1;
            }
        }
        // The greedy assignment is order-local, so hubs can end up sending
        // far fewer than deg/2 — that is fine. The property that matters
        // for the VoteTrust baseline is the absence of a zero-sender tail:
        // every connected user has at least one accepted sent request, so
        // nobody's rating collapses to 0 from sheer direction bad luck.
        for u in host.nodes() {
            let deg = host.degree(u);
            let s = sent[u.index()];
            assert!(s >= 1, "user {u} with degree {deg} sent nothing");
            assert!(s <= deg, "user {u}: sent {s} exceeds degree {deg}");
        }
        let total: usize = sent.iter().sum();
        assert_eq!(total as u64, host.num_edges(), "every edge sent exactly once");
    }
}
