//! Time-sharded request simulation for compromised-account detection
//! (§VII, "Application to the detection of other malicious accounts").
//!
//! The paper: an OSN "can shard friend requests and rejections according
//! to the time intervals in which they have occurred, and then run Rejecto
//! on an augmented graph constructed from the sharded requests and
//! rejections in each interval. This enables Rejecto to detect compromised
//! accounts in post-compromise intervals."
//!
//! [`Timeline`] simulates an OSN over discrete intervals: legitimate
//! accounts send a modest organic request stream (mostly accepted); at the
//! compromise interval, a subset of accounts is taken over and starts
//! friend-spamming. [`Timeline::interval_graph`] builds the per-interval
//! augmented graph for the detector.

use crate::RequestLog;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rejection::AugmentedGraph;
use socialgraph::{Graph, NodeId};

/// Configuration of the compromised-account timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineConfig {
    /// Number of discrete time intervals.
    pub intervals: usize,
    /// Interval at which the compromise happens (0-based); accounts behave
    /// organically before it.
    pub compromise_at: usize,
    /// How many accounts get compromised.
    pub num_compromised: usize,
    /// Organic requests per account per interval (Poisson-ish via
    /// stochastic rounding).
    pub organic_rate: f64,
    /// Rejection rate of organic requests.
    pub organic_rejection_rate: f64,
    /// Spam requests per compromised account per post-compromise interval.
    pub spam_per_interval: usize,
    /// Rejection rate of the spam requests.
    pub spam_rejection_rate: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            intervals: 6,
            compromise_at: 3,
            num_compromised: 50,
            organic_rate: 4.0,
            organic_rejection_rate: 0.2,
            spam_per_interval: 20,
            spam_rejection_rate: 0.7,
        }
    }
}

/// A request stamped with its interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRequest {
    /// 0-based interval index.
    pub interval: usize,
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Whether the recipient accepted.
    pub accepted: bool,
}

/// The simulated timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    num_nodes: usize,
    intervals: usize,
    requests: Vec<TimedRequest>,
    compromised: Vec<NodeId>,
    compromise_at: usize,
}

impl Timeline {
    /// Simulates the timeline over the users of `host` (friendship
    /// structure is used to pick plausible organic request targets:
    /// friends-of-friends when available).
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (compromise interval or count
    /// out of range, rates outside `[0, 1]`).
    pub fn simulate(host: &Graph, config: &TimelineConfig, seed: u64) -> Timeline {
        assert!(config.intervals > 0, "need at least one interval");
        assert!(config.compromise_at < config.intervals, "compromise interval out of range");
        assert!(config.num_compromised <= host.num_nodes(), "too many compromised accounts");
        assert!(
            (0.0..=1.0).contains(&config.organic_rejection_rate)
                && (0.0..=1.0).contains(&config.spam_rejection_rate),
            "rates must be in [0, 1]"
        );
        let n = host.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut ids: Vec<NodeId> = host.nodes().collect();
        ids.shuffle(&mut rng);
        let mut compromised = ids[..config.num_compromised].to_vec();
        compromised.sort_unstable();
        let is_compromised: Vec<bool> = {
            let mut m = vec![false; n];
            for c in &compromised {
                m[c.index()] = true;
            }
            m
        };

        let mut requests = Vec::new();
        for t in 0..config.intervals {
            for u in host.nodes() {
                // Organic behavior (compromised accounts stop acting
                // organically once taken over).
                let active_compromised =
                    is_compromised[u.index()] && t >= config.compromise_at;
                if !active_compromised {
                    let mut count = config.organic_rate.floor() as usize;
                    if rng.gen_bool(config.organic_rate - count as f64) {
                        count += 1;
                    }
                    for _ in 0..count {
                        let target = organic_target(host, u, &mut rng);
                        if target == u {
                            continue;
                        }
                        let accepted = !rng.gen_bool(config.organic_rejection_rate);
                        requests.push(TimedRequest { interval: t, from: u, to: target, accepted });
                    }
                } else {
                    for _ in 0..config.spam_per_interval {
                        let target = NodeId(rng.gen_range(0..n as u32));
                        if target == u {
                            continue;
                        }
                        let accepted = !rng.gen_bool(config.spam_rejection_rate);
                        requests.push(TimedRequest { interval: t, from: u, to: target, accepted });
                    }
                }
            }
        }

        Timeline {
            num_nodes: n,
            intervals: config.intervals,
            requests,
            compromised,
            compromise_at: config.compromise_at,
        }
    }

    /// Number of users.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of intervals.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// All requests, stamped.
    pub fn requests(&self) -> &[TimedRequest] {
        &self.requests
    }

    /// The compromised accounts (ground truth), ascending.
    pub fn compromised(&self) -> &[NodeId] {
        &self.compromised
    }

    /// The interval at which the compromise happened.
    pub fn compromise_at(&self) -> usize {
        self.compromise_at
    }

    /// Ground-truth mask.
    pub fn is_compromised_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.num_nodes];
        for c in &self.compromised {
            m[c.index()] = true;
        }
        m
    }

    /// The augmented graph of one interval's requests (the §VII shard).
    ///
    /// # Panics
    ///
    /// Panics if `interval >= self.intervals()`.
    pub fn interval_graph(&self, interval: usize) -> AugmentedGraph {
        assert!(interval < self.intervals, "interval {interval} out of range");
        let mut log = RequestLog::new(self.num_nodes);
        for r in &self.requests {
            if r.interval == interval {
                log.push(r.from, r.to, r.accepted);
            }
        }
        log.to_augmented_graph()
    }
}

/// Organic requests target friends-of-friends when the sender has any
/// (people you plausibly know), otherwise uniform strangers.
fn organic_target<R: Rng + ?Sized>(host: &Graph, u: NodeId, rng: &mut R) -> NodeId {
    let nbrs = host.neighbors(u);
    if !nbrs.is_empty() {
        let via = nbrs[rng.gen_range(0..nbrs.len())];
        let second = host.neighbors(via);
        if !second.is_empty() {
            let t = second[rng.gen_range(0..second.len())];
            if t != u {
                return t;
            }
        }
    }
    NodeId(rng.gen_range(0..host.num_nodes() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialgraph::generators::BarabasiAlbert;

    fn host() -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        BarabasiAlbert::new(300, 4).generate(&mut rng)
    }

    fn config() -> TimelineConfig {
        TimelineConfig { num_compromised: 30, ..TimelineConfig::default() }
    }

    #[test]
    fn pre_compromise_intervals_are_clean() {
        let tl = Timeline::simulate(&host(), &config(), 1);
        let mask = tl.is_compromised_mask();
        for t in 0..tl.compromise_at() {
            let g = tl.interval_graph(t);
            // Compromised accounts behave organically before the takeover:
            // their rejection load matches the population's.
            let spam_rejections: usize = tl
                .compromised()
                .iter()
                .map(|&c| g.rejections_received(c))
                .sum();
            let avg = spam_rejections as f64 / tl.compromised().len() as f64;
            assert!(avg < 1.5, "interval {t}: avg rejections {avg}");
        }
        assert_eq!(mask.iter().filter(|&&m| m).count(), 30);
    }

    #[test]
    fn post_compromise_intervals_carry_the_spam_signature() {
        let cfg = config();
        let tl = Timeline::simulate(&host(), &cfg, 2);
        let g = tl.interval_graph(cfg.compromise_at);
        let avg_rejections: f64 = tl
            .compromised()
            .iter()
            .map(|&c| g.rejections_received(c) as f64)
            .sum::<f64>()
            / tl.compromised().len() as f64;
        // ≈ spam_per_interval × spam_rejection_rate = 14.
        assert!(avg_rejections > 8.0, "avg post-compromise rejections {avg_rejections}");
    }

    #[test]
    fn interval_graphs_partition_the_requests() {
        let tl = Timeline::simulate(&host(), &config(), 3);
        let total: u64 = (0..tl.intervals())
            .map(|t| {
                let g = tl.interval_graph(t);
                g.num_friendships() + g.num_rejections()
            })
            .sum();
        // Dedup within intervals makes this <= raw count, but it must be
        // positive and close.
        assert!(total > 0);
        assert!(total <= tl.requests().len() as u64);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = Timeline::simulate(&host(), &config(), 9);
        let b = Timeline::simulate(&host(), &config(), 9);
        assert_eq!(a.requests(), b.requests());
        assert_eq!(a.compromised(), b.compromised());
    }

    #[test]
    #[should_panic(expected = "compromise interval out of range")]
    fn validates_compromise_interval() {
        let cfg = TimelineConfig { compromise_at: 9, intervals: 4, ..config() };
        let _ = Timeline::simulate(&host(), &cfg, 1);
    }
}
