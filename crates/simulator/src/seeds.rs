use crate::SimOutput;
use rand::seq::SliceRandom;
use rand::Rng;
use socialgraph::NodeId;

/// Samples the OSN provider's prior knowledge (§III-B): `num_legit` random
/// legitimate users and `num_spammer` random spamming fakes, as uncovered
/// by manual inspection of sampled accounts.
///
/// Returns `(legit, spammer)` id vectors, each sorted ascending and capped
/// at the available population; callers wrap them in `rejecto_core::Seeds`.
pub fn sample_seeds<R: Rng + ?Sized>(
    sim: &SimOutput,
    num_legit: usize,
    num_spammer: usize,
    rng: &mut R,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut legit: Vec<NodeId> = (0..sim.num_legit).map(NodeId::from_index).collect();
    legit.shuffle(rng);
    legit.truncate(num_legit);
    legit.sort_unstable();

    let mut spammer = sim.spammers.clone();
    spammer.shuffle(rng);
    spammer.truncate(num_spammer);
    spammer.sort_unstable();

    (legit, spammer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, ScenarioConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialgraph::generators::BarabasiAlbert;

    fn sim() -> SimOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let host = BarabasiAlbert::new(200, 3).generate(&mut rng);
        Scenario::new(ScenarioConfig { num_fakes: 30, ..ScenarioConfig::default() })
            .run(&host, 2)
    }

    #[test]
    fn seeds_come_from_the_right_classes() {
        let sim = sim();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (legit, spammer) = sample_seeds(&sim, 10, 5, &mut rng);
        assert_eq!(legit.len(), 10);
        assert_eq!(spammer.len(), 5);
        for s in &legit {
            assert!(!sim.is_fake[s.index()]);
        }
        for s in &spammer {
            assert!(sim.spammers.contains(s));
        }
    }

    #[test]
    fn oversampling_is_capped() {
        let sim = sim();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (_, spammer) = sample_seeds(&sim, 0, 10_000, &mut rng);
        assert_eq!(spammer.len(), sim.spammers.len());
    }

    #[test]
    fn seed_lists_are_sorted_and_unique() {
        let sim = sim();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (legit, _) = sample_seeds(&sim, 50, 0, &mut rng);
        let mut sorted = legit.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(legit, sorted);
    }
}

/// Community-aware variant of [`sample_seeds`] (§IV-F: "community-based
/// seed selection as in SybilRank"): legitimate seeds are spread one per
/// community of the *host* graph (label propagation), so every legitimate
/// community is anchored and spurious intra-legit cuts conflict with a
/// pinned seed. Spammer seeds are sampled as in [`sample_seeds`].
///
/// `host` must be the legitimate host graph (`sim.num_legit` nodes).
///
/// # Panics
///
/// Panics if `host.num_nodes() != sim.num_legit`.
pub fn sample_seeds_community<R: Rng + ?Sized>(
    sim: &SimOutput,
    host: &socialgraph::Graph,
    num_legit: usize,
    num_spammer: usize,
    rng: &mut R,
) -> (Vec<NodeId>, Vec<NodeId>) {
    assert_eq!(
        host.num_nodes(),
        sim.num_legit,
        "host graph does not match the simulation's legitimate population"
    );
    let communities = socialgraph::communities::label_propagation(host, 16, rng);
    let legit = socialgraph::communities::spread_seeds(host, &communities, num_legit, rng);

    let mut spammer = sim.spammers.clone();
    spammer.shuffle(rng);
    spammer.truncate(num_spammer);
    spammer.sort_unstable();
    (legit, spammer)
}

#[cfg(test)]
mod community_tests {
    use super::*;
    use crate::{Scenario, ScenarioConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialgraph::generators::BarabasiAlbert;

    #[test]
    fn community_seeds_are_legit_and_capped() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let host = BarabasiAlbert::new(200, 3).generate(&mut rng);
        let sim = Scenario::new(ScenarioConfig { num_fakes: 30, ..ScenarioConfig::default() })
            .run(&host, 2);
        let (legit, spammer) = sample_seeds_community(&sim, &host, 15, 5, &mut rng);
        assert!(legit.len() <= 15);
        assert!(!legit.is_empty());
        for s in &legit {
            assert!(!sim.is_fake[s.index()]);
        }
        assert_eq!(spammer.len(), 5);
    }
}
