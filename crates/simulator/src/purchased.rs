//! Synthetic reproduction of the purchased-fake-account measurement study
//! (§II, Figures 1 and 3–5).
//!
//! The paper bought 43 well-maintained fake Facebook accounts and observed
//! that, despite their crafted profiles, 16.7%–67.9% of their friend
//! requests sat pending (i.e. ignored/rejected). We cannot re-buy those
//! accounts, so this module draws a synthetic population matching the
//! reported envelope: ≥50 friends each, 2,804 friends and 2,065 pending
//! requests over 43 accounts in aggregate, pending fraction per account
//! uniform in the reported range, plus heavy-tailed friend-attribute models
//! for the CDFs of Figures 3–5.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Attributes of one friend account of a purchased fake (Figures 3–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FriendProfile {
    /// Degree in the social graph (Fig 3; heavy-tailed, a few >1000).
    pub degree: u32,
    /// Wall posts (Fig 4).
    pub posts: u32,
    /// Likes on those posts (Fig 4).
    pub post_likes: u32,
    /// Comments on those posts (Fig 4).
    pub post_comments: u32,
    /// Uploaded photos (Fig 5).
    pub photos: u32,
    /// Likes on those photos (Fig 5).
    pub photo_likes: u32,
    /// Comments on those photos (Fig 5).
    pub photo_comments: u32,
}

/// One synthetic purchased account (Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurchasedAccount {
    /// Anonymized id, 0-based as in Figure 1's x-axis.
    pub id: u32,
    /// Accepted friends on the account.
    pub friends: u32,
    /// Pending (ignored/rejected) friend requests.
    pub pending: u32,
    /// Profiles of the accepted friends.
    pub friend_profiles: Vec<FriendProfile>,
}

impl PurchasedAccount {
    /// Fraction of this account's requests left pending:
    /// `pending / (friends + pending)`.
    pub fn pending_fraction(&self) -> f64 {
        let total = self.friends + self.pending;
        if total == 0 {
            0.0
        } else {
            self.pending as f64 / total as f64
        }
    }
}

/// Configuration of the synthetic study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurchasedStudyConfig {
    /// Accounts to draw (paper: 43).
    pub num_accounts: usize,
    /// Minimum friends per account ("\>50 real US friends" was required).
    pub min_friends: u32,
    /// Maximum friends per account (Fig 1 tops out around 110).
    pub max_friends: u32,
    /// Lower bound of the per-account pending fraction (paper: 0.167).
    pub pending_fraction_min: f64,
    /// Upper bound of the per-account pending fraction (paper: 0.679).
    pub pending_fraction_max: f64,
}

impl Default for PurchasedStudyConfig {
    fn default() -> Self {
        PurchasedStudyConfig {
            num_accounts: 43,
            min_friends: 50,
            max_friends: 110,
            pending_fraction_min: 0.167,
            pending_fraction_max: 0.679,
        }
    }
}

/// The generated study population.
#[derive(Debug, Clone, PartialEq)]
pub struct PurchasedStudy {
    /// The accounts, id order.
    pub accounts: Vec<PurchasedAccount>,
}

impl PurchasedStudy {
    /// Draws a study deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config bounds are inverted or the fractions leave
    /// `[0, 1)`.
    pub fn generate(config: PurchasedStudyConfig, seed: u64) -> Self {
        assert!(config.min_friends <= config.max_friends, "friend bounds inverted");
        assert!(
            0.0 <= config.pending_fraction_min
                && config.pending_fraction_min <= config.pending_fraction_max
                && config.pending_fraction_max < 1.0,
            "pending fraction bounds invalid"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let accounts = (0..config.num_accounts)
            .map(|id| {
                let friends = rng.gen_range(config.min_friends..=config.max_friends);
                let frac =
                    rng.gen_range(config.pending_fraction_min..=config.pending_fraction_max);
                let pending = ((friends as f64) * frac / (1.0 - frac)).round() as u32;
                let friend_profiles =
                    (0..friends).map(|_| sample_friend_profile(&mut rng)).collect();
                PurchasedAccount { id: id as u32, friends, pending, friend_profiles }
            })
            .collect();
        PurchasedStudy { accounts }
    }

    /// Total friends across accounts (paper: 2,804).
    pub fn total_friends(&self) -> u64 {
        self.accounts.iter().map(|a| a.friends as u64).sum()
    }

    /// Total pending requests across accounts (paper: 2,065).
    pub fn total_pending(&self) -> u64 {
        self.accounts.iter().map(|a| a.pending as u64).sum()
    }

    /// Every friend profile in the study, flattened (the Fig 3–5 sample).
    pub fn all_friend_profiles(&self) -> impl Iterator<Item = &FriendProfile> {
        self.accounts.iter().flat_map(|a| a.friend_profiles.iter())
    }
}

/// Draws one friend with heavy-tailed degree (Pareto-ish, a small tail
/// above 1000 matching Fig 3) and activity counts with geometric tails
/// and a sizable active fraction (Figs 4–5).
fn sample_friend_profile<R: Rng + ?Sized>(rng: &mut R) -> FriendProfile {
    // Degree: Pareto(x_m = 40, α = 1.3) capped at 5000 — median ≈ 70,
    // ~4% above 1000 ("some of the friends have a social degree >1000").
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-9);
    let degree = (40.0 / u.powf(1.0 / 1.3)).min(5_000.0) as u32;

    // Activity: a fraction of friends is inactive; active ones have
    // geometric-tailed counts. Likes/comments scale with the base count.
    let active = rng.gen_bool(0.8);
    let geo = |rng: &mut R, mean: f64| -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / (1.0 + mean);
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        (u.ln() / (1.0 - p).ln()).floor().min(300.0) as u32
    };
    let posts = if active { geo(rng, 40.0) } else { 0 };
    let photos = if active { geo(rng, 25.0) } else { 0 };
    FriendProfile {
        degree,
        posts,
        post_likes: geo(rng, posts as f64 * 0.8),
        post_comments: geo(rng, posts as f64 * 0.5),
        photos,
        photo_likes: geo(rng, photos as f64 * 0.9),
        photo_comments: geo(rng, photos as f64 * 0.4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_fractions_stay_in_reported_envelope() {
        let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), 1);
        assert_eq!(study.accounts.len(), 43);
        for a in &study.accounts {
            let f = a.pending_fraction();
            assert!(
                (0.15..0.70).contains(&f),
                "account {} pending fraction {f} outside envelope",
                a.id
            );
            assert!(a.friends >= 50);
        }
    }

    #[test]
    fn aggregate_totals_are_in_the_papers_regime() {
        let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), 2);
        // Paper totals: 2,804 friends / 2,065 pending over 43 accounts.
        let friends = study.total_friends();
        let pending = study.total_pending();
        assert!((2_000..4_500).contains(&friends), "friends {friends}");
        assert!((1_000..4_500).contains(&pending), "pending {pending}");
    }

    #[test]
    fn some_friends_have_degree_above_1000() {
        let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), 3);
        let high = study.all_friend_profiles().filter(|p| p.degree > 1_000).count();
        let total = study.all_friend_profiles().count();
        assert!(high > 0, "no high-degree friends in {total}");
        assert!((high as f64) < 0.15 * total as f64, "tail too fat: {high}/{total}");
    }

    #[test]
    fn activity_has_an_inactive_mass_and_a_tail() {
        let study = PurchasedStudy::generate(PurchasedStudyConfig::default(), 4);
        let inactive = study.all_friend_profiles().filter(|p| p.posts == 0).count();
        let busy = study.all_friend_profiles().filter(|p| p.posts > 100).count();
        let total = study.all_friend_profiles().count();
        assert!(inactive > total / 20, "inactive {inactive}/{total}");
        assert!(busy > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PurchasedStudy::generate(PurchasedStudyConfig::default(), 9);
        let b = PurchasedStudy::generate(PurchasedStudyConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "pending fraction bounds invalid")]
    fn validates_fraction_bounds() {
        let cfg = PurchasedStudyConfig { pending_fraction_max: 1.0, ..Default::default() };
        let _ = PurchasedStudy::generate(cfg, 1);
    }
}
