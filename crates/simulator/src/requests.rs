use rejection::{AugmentedGraph, AugmentedGraphBuilder};
use socialgraph::NodeId;

/// One friend request and its outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Sender.
    pub from: NodeId,
    /// Recipient (who accepts or rejects).
    pub to: NodeId,
    /// Whether the recipient accepted.
    pub accepted: bool,
}

/// The directed friend-request log of a simulated OSN.
///
/// Rejecto consumes its *projection*: accepted requests become undirected
/// friendships, rejected requests become rejection edges `⟨to, from⟩`.
/// VoteTrust consumes the log directly (its vote assignment walks the
/// directed request graph and its rating aggregation weighs each request's
/// response).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestLog {
    requests: Vec<Request>,
    num_nodes: usize,
}

impl RequestLog {
    /// An empty log over `num_nodes` users.
    pub fn new(num_nodes: usize) -> Self {
        RequestLog { requests: Vec::new(), num_nodes }
    }

    /// Number of users the log covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All requests, in issue order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of logged requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Appends a request.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `from == to`.
    pub fn push(&mut self, from: NodeId, to: NodeId, accepted: bool) {
        assert!(
            from.index() < self.num_nodes && to.index() < self.num_nodes,
            "request ({from}, {to}) out of range for {} users",
            self.num_nodes
        );
        assert_ne!(from, to, "self-request");
        self.requests.push(Request { from, to, accepted });
    }

    /// Grows the user universe (new users start with no requests).
    pub fn grow(&mut self, extra: usize) {
        self.num_nodes += extra;
    }

    /// Projects the log onto a rejection-augmented graph: accepted →
    /// friendship, rejected → rejection `⟨to, from⟩`.
    pub fn to_augmented_graph(&self) -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(self.num_nodes);
        for r in &self.requests {
            if r.accepted {
                b.add_friendship(r.from, r.to);
            } else {
                b.add_rejection(r.to, r.from);
            }
        }
        b.build()
    }

    /// Count of accepted requests.
    pub fn num_accepted(&self) -> usize {
        self.requests.iter().filter(|r| r.accepted).count()
    }

    /// Count of rejected requests.
    pub fn num_rejected(&self) -> usize {
        self.len() - self.num_accepted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_maps_outcomes_to_edge_types() {
        let mut log = RequestLog::new(3);
        log.push(NodeId(0), NodeId(1), true);
        log.push(NodeId(2), NodeId(1), false);
        let g = log.to_augmented_graph();
        assert!(g.are_friends(NodeId(0), NodeId(1)));
        // 1 rejected 2's request.
        assert!(g.has_rejection(NodeId(1), NodeId(2)));
        assert_eq!(g.num_friendships(), 1);
        assert_eq!(g.num_rejections(), 1);
    }

    #[test]
    fn counts_accepts_and_rejects() {
        let mut log = RequestLog::new(2);
        log.push(NodeId(0), NodeId(1), true);
        log.push(NodeId(1), NodeId(0), false);
        assert_eq!(log.num_accepted(), 1);
        assert_eq!(log.num_rejected(), 1);
    }

    #[test]
    fn grow_extends_universe() {
        let mut log = RequestLog::new(1);
        log.grow(2);
        log.push(NodeId(0), NodeId(2), true);
        assert_eq!(log.num_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "self-request")]
    fn rejects_self_requests() {
        let mut log = RequestLog::new(2);
        log.push(NodeId(1), NodeId(1), true);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut log = RequestLog::new(2);
        log.push(NodeId(0), NodeId(5), true);
    }
}
