//! Attack and workload simulation for the Rejecto evaluation (§VI-A).
//!
//! Builds, from a legitimate host graph and a [`ScenarioConfig`], the full
//! simulated OSN the paper evaluates on:
//!
//! * a Sybil region grafted onto the host graph (each arriving fake
//!   connects to 6 earlier fakes by default);
//! * friend spam: each spamming fake sends `requests_per_spammer` requests
//!   to random legitimate users, rejected at `spam_rejection_rate`;
//! * rejections among legitimate users derived from the legit rejection
//!   rate and each user's friend count, cast by random non-friend
//!   legitimate users;
//! * *careless* legitimate users (15% by default) who send one accepted
//!   request into the Sybil region;
//! * the attack strategies: collusion (dense accepted intra-fake
//!   requests), self-rejection whitewashing ([`SelfRejectionConfig`]), and
//!   fakes rejecting legitimate users' requests (Fig 15).
//!
//! The output carries both the rejection-augmented graph (for Rejecto) and
//! the directed [`RequestLog`] (for the VoteTrust baseline), plus ground
//! truth.
//!
//! ```
//! use simulator::{ScenarioConfig, Scenario};
//! use socialgraph::generators::BarabasiAlbert;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let host = BarabasiAlbert::new(500, 4).generate(&mut rng);
//! let config = ScenarioConfig { num_fakes: 50, ..ScenarioConfig::default() };
//! let sim = Scenario::new(config).run(&host, 42);
//! assert_eq!(sim.graph.num_nodes(), 550);
//! assert_eq!(sim.is_fake.iter().filter(|&&f| f).count(), 50);
//! ```

#![forbid(unsafe_code)]

mod purchased;
mod requests;
mod scenario;
mod seeds;
pub mod timeline;

pub use purchased::{FriendProfile, PurchasedAccount, PurchasedStudy, PurchasedStudyConfig};
pub use requests::{Request, RequestLog};
pub use scenario::{Scenario, ScenarioConfig, SelfRejectionConfig, SimOutput};
pub use seeds::{sample_seeds, sample_seeds_community};
pub use timeline::{TimedRequest, Timeline, TimelineConfig};
