//! SybilFence (Cao & Yang, 2012 technical report) — the paper's other
//! rejection-aware point of comparison (§VIII): "leverage user negative
//! feedback to improve social-graph-based Sybil defenses".
//!
//! SybilFence runs SybilRank-style trust propagation, but **discounts the
//! edges of users who received negative feedback**: a user who accumulated
//! rejections passes (and receives) less trust across each of their
//! links, so attack edges obtained by friend spammers carry less trust
//! into the Sybil region. Unlike Rejecto it scores individual users, not
//! aggregate cuts — the paper's critique is that per-user discounting
//! "does not seek the aggregate acceptance ratio and is susceptible to
//! attack strategies" (collusion dilutes per-user rejection counts; see
//! the `ext_baselines` harness).

use crate::{SybilRankConfig, SybilRankResult};
use rejection::AugmentedGraph;
use socialgraph::NodeId;

/// Tunables of SybilFence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilFenceConfig {
    /// The underlying propagation parameters.
    pub rank: SybilRankConfig,
    /// Discount strength `γ`: a node with `r` received rejections has its
    /// incident edge weights multiplied by `1 / (1 + γ·r)`.
    pub gamma: f64,
}

impl Default for SybilFenceConfig {
    fn default() -> Self {
        SybilFenceConfig { rank: SybilRankConfig::default(), gamma: 0.5 }
    }
}

/// The SybilFence algorithm over a rejection-augmented graph.
#[derive(Debug, Clone)]
pub struct SybilFence {
    config: SybilFenceConfig,
}

impl SybilFence {
    /// Creates a ranker.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative or `total_trust` is not positive.
    pub fn new(config: SybilFenceConfig) -> Self {
        assert!(config.gamma >= 0.0, "gamma must be non-negative");
        assert!(
            config.rank.total_trust > 0.0 && config.rank.total_trust.is_finite(),
            "total_trust must be positive and finite"
        );
        SybilFence { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SybilFenceConfig {
        &self.config
    }

    /// Propagates discounted trust from `seeds` over the friendship edges
    /// of `g`, weighting each edge `(u, v)` by the *receiving* endpoint's
    /// rejection discount. Returns the SybilRank-shaped result (trust +
    /// weighted-degree-normalized scores).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or contains an out-of-range id.
    pub fn rank(&self, g: &AugmentedGraph, seeds: &[NodeId]) -> SybilRankResult {
        assert!(!seeds.is_empty(), "SybilFence requires at least one trust seed");
        let n = g.num_nodes();
        for s in seeds {
            assert!(s.index() < n, "seed {s} out of range");
        }
        let discount: Vec<f64> = g
            .nodes()
            .map(|u| 1.0 / (1.0 + self.config.gamma * g.rejections_received(u) as f64)) // xtask-allow: lossy-cast: rejection count < 2^53 converts exactly
            .collect();
        // Per-node weighted degree: Σ over friends of the receiver-side
        // discount (what the node can emit per round).
        let weighted_degree: Vec<f64> = g
            .nodes()
            .map(|u| socialgraph::det::ordered_sum(g.friends(u).iter().map(|v| discount[v.index()])))
            .collect();

        let iterations = self
            .config
            .rank
            .iterations
            .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize); // xtask-allow: lossy-cast: n < 2^53 converts exactly; ceil(log2 n) is a small non-negative integer
        let mut trust = vec![0.0f64; n];
        for s in seeds {
            trust[s.index()] += self.config.rank.total_trust / seeds.len() as f64; // xtask-allow: lossy-cast: seed count < 2^53 converts exactly
        }
        for _ in 0..iterations {
            let mut next = vec![0.0f64; n];
            for u in g.nodes() {
                let wd = weighted_degree[u.index()];
                if wd <= 0.0 {
                    next[u.index()] += trust[u.index()];
                    continue;
                }
                let per_unit = trust[u.index()] / wd;
                for &v in g.friends(u) {
                    next[v.index()] += per_unit * discount[v.index()];
                }
            }
            trust = next;
        }

        let score: Vec<f64> = (0..n)
            .map(|i| {
                let wd = weighted_degree[i];
                if wd <= 0.0 {
                    0.0
                } else {
                    trust[i] / wd
                }
            })
            .collect();
        SybilRankResult::from_parts(trust, score, iterations)
    }
}

impl Default for SybilFence {
    fn default() -> Self {
        SybilFence::new(SybilFenceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SybilRank;
    use rejection::AugmentedGraphBuilder;

    /// Two 4-cliques bridged by TWO attack edges; the Sybil side carries
    /// heavy rejections.
    fn polluted() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_friendship(NodeId(u), NodeId(v));
                b.add_friendship(NodeId(u + 4), NodeId(v + 4));
            }
        }
        b.add_friendship(NodeId(0), NodeId(4));
        b.add_friendship(NodeId(1), NodeId(5));
        for (r, s) in [(0, 5), (1, 4), (2, 4), (2, 5), (3, 6), (3, 7)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        b.build()
    }

    #[test]
    fn sybils_rank_at_the_bottom() {
        let g = polluted();
        let r = SybilFence::default().rank(&g, &[NodeId(0), NodeId(2)]);
        for legit in 0..4u32 {
            for sybil in 4..8u32 {
                assert!(
                    r.score(NodeId(legit)) > r.score(NodeId(sybil)),
                    "legit {legit} <= sybil {sybil}"
                );
            }
        }
    }

    #[test]
    fn trust_is_conserved() {
        let g = polluted();
        let r = SybilFence::default().rank(&g, &[NodeId(1)]);
        let sum: f64 = r.trust().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "trust sum {sum}");
    }

    #[test]
    fn discounting_beats_plain_sybilrank_under_spam() {
        let g = polluted();
        let is_sybil: Vec<bool> = (0..8).map(|i| i >= 4).collect();
        let seeds = [NodeId(0)];
        let fence = SybilFence::default().rank(&g, &seeds).auc(&is_sybil);
        let plain = SybilRank::default().rank(&g.friendship_graph(), &seeds).auc(&is_sybil);
        assert!(
            fence >= plain - 1e-9,
            "discounting should not hurt: fence {fence} vs plain {plain}"
        );
    }

    #[test]
    fn gamma_zero_degenerates_to_sybilrank() {
        let g = polluted();
        let seeds = [NodeId(0)];
        let cfg = SybilFenceConfig { gamma: 0.0, ..Default::default() };
        let fence = SybilFence::new(cfg).rank(&g, &seeds);
        let plain = SybilRank::default().rank(&g.friendship_graph(), &seeds);
        for u in g.nodes() {
            assert!(
                (fence.score(u) - plain.score(u)).abs() < 1e-12,
                "node {u}: {} vs {}",
                fence.score(u),
                plain.score(u)
            );
        }
    }

    #[test]
    fn collusion_dilutes_the_per_user_discount() {
        // The paper's critique: intra-fake friendships lower each fake's
        // *relative* rejection load... but since the discount only counts
        // rejections, adding accepted intra-fake edges increases the trust
        // the Sybil region can circulate internally, raising scores.
        let base = polluted();
        let mut b = AugmentedGraphBuilder::new(12);
        for u in base.nodes() {
            for &v in base.friends(u) {
                if u < v {
                    b.add_friendship(u, v);
                }
            }
            for &v in base.rejected_by(u) {
                b.add_rejection(u, v);
            }
        }
        // Four extra colluders befriending the original Sybils.
        for extra in 8..12u32 {
            for sybil in 4..8u32 {
                b.add_friendship(NodeId(extra), NodeId(sybil));
            }
        }
        let colluded = b.build();
        let seeds = [NodeId(0)];
        let score_base = SybilFence::default().rank(&base, &seeds);
        let score_coll = SybilFence::default().rank(&colluded, &seeds);
        // The rejected Sybil 4's normalized score cannot improve... but
        // the fresh colluders (no rejections at all) sit above it,
        // diluting the ranking: they are Sybils scoring like mid-pack.
        let colluder_score = score_coll.score(NodeId(8));
        assert!(
            colluder_score > score_coll.score(NodeId(4)),
            "clean colluder should outrank the rejected spammer"
        );
        let _ = score_base;
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_negative_gamma() {
        let _ = SybilFence::new(SybilFenceConfig { gamma: -1.0, ..Default::default() });
    }
}
