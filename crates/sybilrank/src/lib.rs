//! SybilRank (Cao et al., NSDI 2012) — the social-graph-based Sybil
//! detector used in the paper's defense-in-depth experiment (§VI-D).
//!
//! SybilRank propagates trust from known-legitimate seeds through the
//! undirected social graph with an **early-terminated power iteration**
//! (`O(log n)` steps — long enough to mix inside the legitimate region,
//! short enough that little trust leaks across the sparse attack-edge cut
//! into the Sybil region), then ranks users by **degree-normalized trust**.
//! Sybils sink to the bottom of the ranking; the evaluation statistic is
//! the area under the ROC curve of that ranking.
//!
//! Rejecto strengthens SybilRank by detecting friend spammers first and
//! pruning them with their attack edges; Fig 16 measures the AUC as a
//! function of how many accounts Rejecto removed.
//!
//! ```
//! use sybilrank::{SybilRank, SybilRankConfig};
//! use socialgraph::{Graph, NodeId};
//!
//! // Two triangles bridged by one attack edge; seed in the left triangle.
//! let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]);
//! let ranking = SybilRank::new(SybilRankConfig::default())
//!     .rank(&g, &[NodeId(0)]);
//! // Left-triangle users outrank right-triangle (Sybil) users.
//! assert!(ranking.score(NodeId(1)) > ranking.score(NodeId(4)));
//! ```

#![forbid(unsafe_code)]

mod fence;

pub use fence::{SybilFence, SybilFenceConfig};

use socialgraph::{Graph, NodeId};

/// Tunables of the SybilRank power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilRankConfig {
    /// Power-iteration steps; `None` uses `ceil(log2(n))`, the paper's
    /// early-termination rule.
    pub iterations: Option<usize>,
    /// Total trust injected at the seeds.
    pub total_trust: f64,
}

impl Default for SybilRankConfig {
    fn default() -> Self {
        SybilRankConfig { iterations: None, total_trust: 1.0 }
    }
}

/// Result of [`SybilRank::rank`].
#[derive(Debug, Clone, PartialEq)]
pub struct SybilRankResult {
    trust: Vec<f64>,
    score: Vec<f64>,
    iterations: usize,
}

impl SybilRankResult {
    /// Raw trust of each node after the final iteration.
    pub fn trust(&self) -> &[f64] {
        &self.trust
    }

    /// Degree-normalized trust (the ranking score; higher = more
    /// trustworthy, Sybils rank low).
    pub fn scores(&self) -> &[f64] {
        &self.score
    }

    /// Score of one node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn score(&self, u: NodeId) -> f64 {
        self.score[u.index()]
    }

    /// Number of iterations actually run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assembles a result from raw parts (used by the [`SybilFence`]
    /// variant, which shares this result shape).
    pub(crate) fn from_parts(trust: Vec<f64>, score: Vec<f64>, iterations: usize) -> Self {
        SybilRankResult { trust, score, iterations }
    }

    /// Area under the ROC curve of the ranking against a Sybil mask
    /// (probability a random Sybil scores below a random non-Sybil).
    ///
    /// # Panics
    ///
    /// Panics if `is_sybil.len()` differs from the node count.
    pub fn auc(&self, is_sybil: &[bool]) -> f64 {
        eval::auc(&self.score, is_sybil)
    }
}

/// The SybilRank algorithm.
#[derive(Debug, Clone)]
pub struct SybilRank {
    config: SybilRankConfig,
}

impl SybilRank {
    /// Creates a ranker.
    ///
    /// # Panics
    ///
    /// Panics if `total_trust` is not positive and finite.
    pub fn new(config: SybilRankConfig) -> Self {
        assert!(
            config.total_trust > 0.0 && config.total_trust.is_finite(),
            "total_trust must be positive and finite"
        );
        SybilRank { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SybilRankConfig {
        &self.config
    }

    /// Propagates trust from `seeds` through `g` and returns the ranking.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or contains an out-of-range id.
    pub fn rank(&self, g: &Graph, seeds: &[NodeId]) -> SybilRankResult {
        assert!(!seeds.is_empty(), "SybilRank requires at least one trust seed");
        let n = g.num_nodes();
        for s in seeds {
            assert!(s.index() < n, "seed {s} out of range");
        }
        let iterations = self
            .config
            .iterations
            .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize); // xtask-allow: lossy-cast: n < 2^53 converts exactly; ceil(log2 n) is a small non-negative integer

        let mut trust = vec![0.0f64; n];
        for s in seeds {
            trust[s.index()] += self.config.total_trust / seeds.len() as f64; // xtask-allow: lossy-cast: seed count < 2^53 converts exactly
        }
        for _ in 0..iterations {
            let mut next = vec![0.0f64; n];
            for u in g.nodes() {
                let deg = g.degree(u);
                if deg == 0 {
                    // Isolated nodes keep their trust (nothing to spread).
                    next[u.index()] += trust[u.index()];
                    continue;
                }
                let share = trust[u.index()] / deg as f64; // xtask-allow: lossy-cast: degree < 2^53 converts exactly
                for &v in g.neighbors(u) {
                    next[v.index()] += share;
                }
            }
            trust = next;
        }

        let score: Vec<f64> = (0..n)
            .map(|i| {
                let deg = g.degree(NodeId::from_index(i));
                if deg == 0 {
                    0.0
                } else {
                    trust[i] / deg as f64 // xtask-allow: lossy-cast: degree < 2^53 converts exactly
                }
            })
            .collect();
        SybilRankResult { trust, score, iterations }
    }
}

impl Default for SybilRank {
    fn default() -> Self {
        SybilRank::new(SybilRankConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single attack edge (0–4 legit, 4–8 Sybil).
    fn two_communities() -> Graph {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        Graph::from_edges(8, edges)
    }

    #[test]
    fn trust_is_conserved() {
        let g = two_communities();
        let r = SybilRank::default().rank(&g, &[NodeId(1)]);
        let sum: f64 = r.trust().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "trust sum {sum}");
    }

    #[test]
    fn sybil_region_ranks_below_legit_region() {
        let g = two_communities();
        let r = SybilRank::default().rank(&g, &[NodeId(1), NodeId(2)]);
        for legit in 0..4u32 {
            for sybil in 4..8u32 {
                assert!(
                    r.score(NodeId(legit)) > r.score(NodeId(sybil)),
                    "legit {legit} ({}) <= sybil {sybil} ({})",
                    r.score(NodeId(legit)),
                    r.score(NodeId(sybil))
                );
            }
        }
    }

    #[test]
    fn auc_is_high_with_sparse_attack_edges() {
        let g = two_communities();
        let r = SybilRank::default().rank(&g, &[NodeId(1)]);
        let is_sybil: Vec<bool> = (0..8).map(|i| i >= 4).collect();
        assert_eq!(r.auc(&is_sybil), 1.0);
    }

    #[test]
    fn more_attack_edges_leak_more_trust() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        edges.push((1, 5));
        edges.push((2, 6));
        edges.push((3, 7));
        let dense = Graph::from_edges(8, edges);
        let sparse = two_communities();
        let is_sybil: Vec<bool> = (0..8).map(|i| i >= 4).collect();
        let cfg = SybilRankConfig { iterations: Some(3), ..Default::default() };
        let auc_sparse = SybilRank::new(cfg).rank(&sparse, &[NodeId(1)]).auc(&is_sybil);
        let auc_dense = SybilRank::new(cfg).rank(&dense, &[NodeId(1)]).auc(&is_sybil);
        assert!(auc_dense < auc_sparse, "{auc_dense} >= {auc_sparse}");
    }

    #[test]
    fn default_iterations_scale_logarithmically() {
        let g = two_communities();
        let r = SybilRank::default().rank(&g, &[NodeId(0)]);
        assert_eq!(r.iterations(), 3); // ceil(log2(8))
    }

    #[test]
    fn isolated_nodes_score_zero() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let r = SybilRank::default().rank(&g, &[NodeId(0)]);
        assert_eq!(r.score(NodeId(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trust seed")]
    fn requires_seeds() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let _ = SybilRank::default().rank(&g, &[]);
    }
}
