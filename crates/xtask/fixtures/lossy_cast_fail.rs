//~ crate: kl
//~ path: crates/kl/src/fixture.rs
//~ expect: lossy-cast@10

pub fn truncating(node: u64) -> u32 {
    node as u32 //~ expect: lossy-cast
}

pub fn reasonless(gain: i64) -> usize {
    gain as usize // xtask-allow: lossy-cast
}
