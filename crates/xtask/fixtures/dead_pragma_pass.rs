//~ crate: rejection
//~ path: crates/rejection/src/fixture.rs

pub fn take(opt: Option<u64>) -> u64 {
    opt.unwrap() // xtask-allow: no-unwrap: fixture exercises the live-pragma path
}
