//~ crate: rejection
//~ path: crates/rejection/src/fixture.rs

pub fn take(opt: Option<u64>) -> u64 {
    opt.unwrap() //~ expect: no-unwrap
}

pub fn weak(opt: Option<u64>) -> u64 {
    opt.expect("oops") //~ expect: no-unwrap
}
