//~ crate: rejection
//~ path: crates/rejection/src/helpers.rs

// The lossy-cast audit over the `rejection` crate is *module*-scoped
// (LOSSY_CAST_MODULES lists the ingest/cut-bookkeeping paths): this file
// is not on the list, so its legacy cast does not fire — and an audited
// construction with a stated range invariant stays expressible.

pub fn legacy_index(node: u64) -> usize {
    node as usize
}

pub fn checked_count(observed: usize) -> u64 {
    u64::try_from(observed).expect("usize fits in u64 on every supported target")
}
