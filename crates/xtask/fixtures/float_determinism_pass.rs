//~ crate: core
//~ path: crates/core/src/fixture.rs

pub fn comparator(xs: &mut [(f64, u32)]) {
    xs.sort_by(|a, b| a.0.total_cmp(&b.0));
}

pub fn integer_reductions(xs: &[u64]) -> u64 {
    let a = xs.iter().sum::<u64>();
    let b = xs.iter().fold(0u64, |acc, x| acc + x);
    a + b
}

pub fn integer_keyed() {
    let scores: std::collections::BTreeMap<u64, u32> = Default::default();
    drop(scores);
}

pub fn pragma_escape(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() // xtask-allow: float-determinism: single sequential pass over an index-sorted slice
}
