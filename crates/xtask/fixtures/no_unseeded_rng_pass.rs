//~ crate: simulator
//~ path: crates/simulator/src/fixture.rs

use rand::SeedableRng;

pub fn seeded(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

pub const BANNED: &str = "thread_rng";
