//~ crate: kl
//~ path: crates/kl/src/fixture.rs

/* The PR 2 line scanner mis-lexed every construct in this file.
   /* Nested block comments: HashMap, .unwrap(), thread_rng(). */
   Still inside the outer comment after the inner one closes. */

pub fn messages() -> Vec<&'static str> {
    vec![
        "never call .unwrap() in kernels",
        "HashMap is banned; so is HashSet",
        "thread_rng() breaks reproducibility",
        "std::thread::spawn must go through the pool",
    ]
}

pub fn raw(pattern: &str) -> String {
    let doc = r#"interior quote " then .unwrap() and HashMap<u32, u32>"#;
    format!("{doc}: {pattern}")
}

pub fn tricky_chars() -> (char, char) {
    let quote = '"';
    let slash = '/';
    // A lifetime 'a next to a char whose body opens a comment: '/'
    (quote, slash)
}
