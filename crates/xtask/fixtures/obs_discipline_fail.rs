//~ crate: core
//~ path: crates/core/src/fixture.rs
//~ expect: obs-discipline@10

pub fn timed() -> std::time::Instant {
    std::time::Instant::now() //~ expect: obs-discipline
}

pub fn reasonless() -> std::time::SystemTime {
    std::time::SystemTime::now() // xtask-allow: obs-discipline
}
