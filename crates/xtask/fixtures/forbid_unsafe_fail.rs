//~ crate: rejection
//~ path: crates/rejection/src/lib.rs
//~ root
//~ expect: forbid-unsafe@1

pub fn noop() {}
