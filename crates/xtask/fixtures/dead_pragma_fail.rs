//~ crate: rejection
//~ path: crates/rejection/src/fixture.rs

pub fn tidy(x: u64) -> u64 {
    x + 1 // xtask-allow: no-unwrap //~ expect: dead-pragma
}

pub fn tidy2(x: u64) -> u64 {
    x + 2 // xtask-allow: no-unwrapping //~ expect: dead-pragma
}
