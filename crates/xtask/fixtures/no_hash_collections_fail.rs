//~ crate: socialgraph
//~ path: crates/socialgraph/src/fixture.rs

use std::collections::HashMap; //~ expect: no-hash-collections
use std::collections::HashSet; //~ expect: no-hash-collections

pub fn degree_index(edges: &[(u32, u32)]) -> HashMap<u32, u32> { //~ expect: no-hash-collections
    let mut m = HashMap::new(); //~ expect: no-hash-collections
    for &(u, _) in edges {
        *m.entry(u).or_insert(0) += 1;
    }
    m
}
