//~ crate: simulator
//~ path: crates/simulator/src/fixture.rs

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng(); //~ expect: no-unseeded-rng
    rand::Rng::gen(&mut rng)
}
