//~ crate: dataflow
//~ path: crates/dataflow/src/cluster.rs

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

pub fn drain(rx: &Receiver<u64>) -> u64 {
    let mut total = 0u64;
    while let Ok(v) = rx.recv_timeout(Duration::from_millis(50)) {
        total += v;
    }
    total
}

pub fn worker_loop(rx: &Receiver<u64>) -> u64 {
    rx.recv().expect("master holds the sender for the worker's lifetime") // xtask-allow: channel-discipline: worker parks until the master sends or hangs up
}

pub fn guard(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned lock means a peer already panicked")
}
