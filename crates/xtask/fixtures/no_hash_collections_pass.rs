//~ crate: socialgraph
//~ path: crates/socialgraph/src/fixture.rs

use std::collections::BTreeMap;

/* A nested /* block comment */ mentioning HashMap stays a comment. */
pub fn degree_index(edges: &[(u32, u32)]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &(u, _) in edges {
        *m.entry(u).or_insert(0) += 1;
    }
    m
}

pub const DOC: &str = "HashMap is banned in kernels";
