//~ crate: rejection
//~ path: crates/rejection/src/lib.rs
//~ root

#![forbid(unsafe_code)]

pub fn noop() {}
