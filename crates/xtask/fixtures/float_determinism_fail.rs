//~ crate: core
//~ path: crates/core/src/fixture.rs

pub fn comparator(xs: &mut [(f64, u32)]) {
    xs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores")); //~ expect: float-determinism
}

pub fn reductions(xs: &[f64]) -> f64 {
    let a = xs.iter().sum::<f64>(); //~ expect: float-determinism
    let b: f64 = xs.iter().copied().fold(0.0, |acc, x| acc + x); //~ expect: float-determinism
    a + b
}

pub fn keyed() {
    let scores: std::collections::BTreeMap<f64, u32> = Default::default(); //~ expect: float-determinism
    drop(scores);
}

pub fn untyped_sum(ratios: &[f64]) -> f64 {
    let total: f64 = ratios.iter().sum(); //~ expect: float-determinism
    total
}
