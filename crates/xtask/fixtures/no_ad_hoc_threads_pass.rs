//~ crate: core
//~ path: crates/core/src/pool.rs

pub fn pooled() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}

pub const DOC: &str = "std::thread::spawn belongs in the pool modules";
