//~ crate: core
//~ path: crates/core/src/fixture.rs

pub fn durable_metrics(doc: &str) -> Result<(), rejecto_core::StoreError> {
    rejecto_core::store::atomic_write(std::path::Path::new("metrics.json"), doc.as_bytes())
}

pub fn reads_are_fine(path: &std::path::Path) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

pub fn dir_setup(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(path)
}

pub fn reasoned_scratch(doc: &str) {
    std::fs::write("probe.tmp", doc).ok(); // xtask-allow: durable-io: liveness probe file, rebuilt every run and never read back
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_write_fixtures_raw() {
        std::fs::write("fixture.json", b"{}").ok();
        let _ = std::fs::File::create("scratch.bin");
    }
}
