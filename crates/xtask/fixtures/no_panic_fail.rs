//~ crate: dataflow
//~ path: crates/dataflow/src/fixture.rs

pub fn explode(x: u64) -> u64 {
    if x == 0 {
        panic!("zero"); //~ expect: no-panic
    }
    if x == 1 {
        todo!(); //~ expect: no-panic
    }
    if x == 2 {
        unreachable!() //~ expect: no-panic
    } else {
        assert!(x > 2); //~ expect: no-panic
        x
    }
}
