//~ crate: core
//~ path: crates/core/src/fixture.rs

pub fn timed(obs: &rejecto_obs::Obs) {
    let _span = obs.span("detect/round");
}

pub fn deadline_left(budget: std::time::Duration) -> std::time::Duration {
    let clock = rejecto_obs::Stopwatch::start();
    budget.saturating_sub(clock.elapsed())
}

pub fn reasoned() -> std::time::Instant {
    std::time::Instant::now() // xtask-allow: obs-discipline: one-shot startup stamp, logged only
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_reads_in_tests_are_exempt() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
