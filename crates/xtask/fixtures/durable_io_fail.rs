//~ crate: core
//~ path: crates/core/src/fixture.rs
//~ expect: durable-io@14

pub fn torn_metrics(doc: &str) {
    std::fs::write("metrics.json", doc).ok(); //~ expect: durable-io
}

pub fn truncating_writer() -> std::io::Result<std::fs::File> {
    std::fs::File::create("checkpoint.json") //~ expect: durable-io
}

pub fn reasonless(doc: &str) {
    std::fs::write("out.json", doc).ok(); // xtask-allow: durable-io
}
