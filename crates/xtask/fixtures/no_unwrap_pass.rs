//~ crate: rejection
//~ path: crates/rejection/src/fixture.rs

pub fn take(opt: Option<u64>) -> u64 {
    opt.expect("caller checked membership before lookup")
}

pub fn doc() -> &'static str {
    "library code must never call .unwrap() on user input"
}
