//~ crate: dataflow
//~ path: crates/dataflow/src/worker_fixture.rs

use std::sync::mpsc::Receiver;
use std::sync::Mutex; //~ expect: channel-discipline

pub fn drain(rx: &Receiver<u64>) -> u64 {
    let mut total = 0u64;
    while let Ok(v) = rx.recv() { //~ expect: channel-discipline
        total += v;
    }
    total
}

pub fn guard(m: &Mutex<u64>) -> u64 { //~ expect: channel-discipline
    *m.lock().expect("poisoned lock means a peer already panicked")
}
