//~ crate: rejection
//~ path: crates/rejection/src/io.rs
//~ expect: lossy-cast@14

// The `rejection` crate is not in LOSSY_CAST_CRATES, but this path is one
// of the individually-audited LOSSY_CAST_MODULES (hostile-input ingest):
// a silent wrap in its bookkeeping is an adversarial primitive.

pub fn degree_as_float(degree: u64) -> f64 {
    degree as f64 //~ expect: lossy-cast
}

pub fn line_to_index(line: u64) -> usize {
    line as usize // xtask-allow: lossy-cast
}
