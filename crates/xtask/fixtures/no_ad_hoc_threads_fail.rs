//~ crate: eval
//~ path: crates/eval/src/fixture.rs

pub fn fan_out() {
    let h = std::thread::spawn(|| 42); //~ expect: no-ad-hoc-threads
    let _ = h.join();
}
