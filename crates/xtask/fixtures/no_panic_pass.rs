//~ crate: dataflow
//~ path: crates/dataflow/src/fixture.rs

pub fn degrade(x: u64) -> Result<u64, String> {
    debug_assert!(x < 1_000_000, "caller pre-validates ids");
    if x == 0 {
        return Err("zero is not a valid worker id".to_string());
    }
    Ok(x)
}

pub fn cold_validation(x: u64) -> u64 {
    assert!(x > 0, "validated once at startup"); // xtask-allow: no-panic: cold constructor validation, not a runtime path
    x
}

pub fn exhaustive(tag: u8) -> &'static str {
    match tag {
        0 => "map",
        1 => "reduce",
        _ => unreachable!("tag is validated against the opcode table at decode time"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_assert_and_panic() {
        assert!(degrade(3).is_ok());
        if degrade(0).is_ok() {
            panic!("tests may panic");
        }
    }
}
