//~ crate: kl
//~ path: crates/kl/src/fixture.rs

pub fn widening(node: u32) -> u64 {
    u64::from(node)
}

pub fn checked(gain: i64) -> usize {
    usize::try_from(gain).expect("gain is non-negative here")
}

pub fn reasoned(node: u32) -> usize {
    node as usize // xtask-allow: lossy-cast: usize is at least 32 bits on every supported target
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let x = 7u64 as u32;
        assert_eq!(x, 7);
    }
}
