//! `cargo xtask check --fix-dry-run`: the mechanically fixable subset.
//!
//! Some diagnostics have exactly one idiomatic rewrite — no judgement
//! call, no behavior question for finite inputs. This pass lists those
//! sites *without editing anything*, so cleanups stay discoverable (the
//! float-determinism rule only covers [`crate::lint::FLOAT_CRATES`];
//! this scan is repo-wide, which is how the next crate's migration gets
//! scoped before the rule is turned on for it).
//!
//! Detected rewrites:
//!
//! * `.partial_cmp(x).expect(..)` / `.unwrap()` / `.unwrap_or(..)`
//!   → `.total_cmp(x)` — identical ordering for the finite, like-signed
//!   values these comparators see, and a total order besides.
//! * `.sum::<f64>()` / `.sum::<f32>()`
//!   → `socialgraph::det::ordered_sum(..)` — same reduction with the
//!   iteration-order assertion written down.

use crate::lexer::{lex, Token, TokenKind};

/// One mechanically fixable site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixCandidate {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What was found, compressed to the interesting tokens.
    pub found: String,
    /// The drop-in replacement.
    pub suggestion: String,
}

/// Scans one file for fixable sites. Lines carrying an `xtask-allow:`
/// pragma are skipped: a pragma'd site is an adjudicated decision, not a
/// pending cleanup.
pub fn scan_file(rel_path: &str, text: &str) -> Vec<FixCandidate> {
    let all = lex(text);
    let pragma_lines: std::collections::BTreeSet<usize> = all
        .iter()
        .filter(|t| t.kind == TokenKind::LineComment && t.text.contains("xtask-allow:"))
        .map(|t| t.line)
        .collect();
    let sig: Vec<Token<'_>> =
        all.into_iter().filter(|t| t.kind.is_significant()).collect();
    let mut out = Vec::new();

    let ident = |i: usize| -> Option<&str> {
        match sig.get(i) {
            Some(t) if t.kind == TokenKind::Ident => Some(t.text),
            _ => None,
        }
    };
    let punct =
        |i: usize, ch: &str| matches!(sig.get(i), Some(t) if t.kind == TokenKind::Punct && t.text == ch);

    for i in 0..sig.len() {
        // `.partial_cmp ( … ) . <sink> (` where sink discards the None arm.
        if punct(i, ".") && ident(i + 1) == Some("partial_cmp") && punct(i + 2, "(") {
            if let Some(close) = matching_paren(&sig, i + 2) {
                if punct(close + 1, ".") {
                    if let Some(sink @ ("expect" | "unwrap" | "unwrap_or")) = ident(close + 2) {
                        out.push(FixCandidate {
                            file: rel_path.to_string(),
                            line: sig[i + 1].line,
                            found: format!(".partial_cmp(..).{sink}(..)"),
                            suggestion: ".total_cmp(..)".to_string(),
                        });
                    }
                }
            }
        }
        // `.sum::<fN>()` — order-silent float reduction.
        if punct(i, ".")
            && matches!(ident(i + 1), Some("sum" | "product"))
            && punct(i + 2, ":")
            && punct(i + 3, ":")
            && punct(i + 4, "<")
        {
            if let Some(ty @ ("f32" | "f64")) = ident(i + 5) {
                let call = ident(i + 1).unwrap_or("sum").to_string();
                out.push(FixCandidate {
                    file: rel_path.to_string(),
                    line: sig[i + 1].line,
                    found: format!(".{call}::<{ty}>()"),
                    suggestion: "socialgraph::det::ordered_sum(..)".to_string(),
                });
            }
        }
    }
    out.retain(|c| !pragma_lines.contains(&c.line));
    out
}

/// Index of the `)` matching the `(` at `open`, if balanced.
fn matching_paren(sig: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" => depth += 1,
                ")" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_cmp_expect_chain_is_fixable() {
        let src = "v.sort_by(|a, b| b.0.partial_cmp(&a.0).expect(\"finite ratios\").then(a.1.cmp(&b.1)));\n";
        let got = scan_file("x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].found, ".partial_cmp(..).expect(..)");
        assert_eq!(got[0].suggestion, ".total_cmp(..)");
    }

    #[test]
    fn partial_cmp_unwrap_or_chain_is_fixable() {
        let src = "idx.sort_by(|&a, &b| s[a].partial_cmp(&s[b]).unwrap_or(std::cmp::Ordering::Equal));\n";
        let got = scan_file("x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].found, ".partial_cmp(..).unwrap_or(..)");
    }

    #[test]
    fn lone_partial_cmp_is_not_mechanically_fixable() {
        // Without a None-discarding sink the rewrite changes the type;
        // that is a judgement call, not a mechanical fix.
        let src = "let ord = a.partial_cmp(&b);\n";
        assert!(scan_file("x.rs", src).is_empty());
    }

    #[test]
    fn float_sum_turbofish_is_fixable() {
        let src = "let s = xs.iter().sum::<f64>();\n";
        let got = scan_file("x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].found, ".sum::<f64>()");
    }

    #[test]
    fn integer_sum_is_not_fixable() {
        assert!(scan_file("x.rs", "let s = xs.iter().sum::<u64>();\n").is_empty());
    }

    #[test]
    fn pragmad_sites_are_not_listed() {
        let src = "let s = xs.iter().sum::<f64>(); // xtask-allow: float-determinism: sequential over a Vec\n";
        assert!(scan_file("x.rs", src).is_empty());
    }

    #[test]
    fn sites_in_strings_are_ignored() {
        let src = "let doc = \"call .partial_cmp(x).unwrap() and .sum::<f64>()\";\n";
        assert!(scan_file("x.rs", src).is_empty());
    }
}
