//! A small hand-rolled Rust lexer for the lint pass.
//!
//! The PR 2 scanner worked line-by-line over comment-stripped text, which
//! made three whole classes of diagnostics unreliable:
//!
//! * **string blindness** — string *contents* were kept, so a fixture or
//!   message containing `.unwrap()` / `HashMap` tripped the rules
//!   (false positives that forced crate-level exemptions);
//! * **raw strings** — `r#"…"#` was lexed as a plain `"` string, so an
//!   interior `"` desynchronised the whole state machine;
//! * **line granularity** — a call split across lines
//!   (`.expect(\n"x")`) was invisible to the argument checks
//!   (false negatives).
//!
//! This module replaces that with a real token stream. It is *not* a full
//! Rust lexer (no multi-char operator fusion, no numeric validation) —
//! it is exactly the subset the rules need, with two hard guarantees:
//!
//! 1. **Round-trip**: concatenating `token.text` over [`lex`]'s output
//!    reproduces the input byte-for-byte (property-tested). Nothing is
//!    ever skipped or invented, so line numbers and snippets are exact.
//! 2. **Totality**: any input lexes without panicking. Malformed source
//!    degrades to [`TokenKind::Unknown`] tokens rather than derailing
//!    the scan.
//!
//! Handled correctly, with tests: line and (nested) block comments,
//! `"…"` / `b"…"` / `c"…"` strings, raw strings with any hash depth
//! (`r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#`), char and byte-char
//! literals (including `'"'`, `'\''`, and `'/'`), lifetime-vs-char
//! disambiguation (`<'a>` vs `'a'`), raw identifiers (`r#type`), and
//! numeric literals with suffixes, underscores, and exponents.

/// Classification of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (may span lines).
    Whitespace,
    /// `// …` up to (not including) the newline; doc comments included.
    LineComment,
    /// `/* … */`, nesting handled; doc block comments included.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#type`) and
    /// primitive type names (`u32`, `f64`, …).
    Ident,
    /// `'a`, `'static`, `'_` — a quote introducing a lifetime, not a char.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'` — char and byte-char literals.
    Char,
    /// `"…"`, `b"…"`, `c"…"` — escaped (cooked) string literals.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#` — raw string literals.
    RawStr,
    /// Integer literal (`42`, `0xFF_u32`, `0b1010`).
    Int,
    /// Float literal (`1.0`, `2f64`, `1e-3`, `1.`).
    Float,
    /// A single punctuation character (`.`, `:`, `!`, `<`, …).
    Punct,
    /// Anything unexpected (stray quote, invalid byte); never fatal.
    Unknown,
}

impl TokenKind {
    /// Whether rules should see this token (comments and whitespace are
    /// layout, not code — but pragmas are read from comment tokens).
    pub fn is_significant(self) -> bool {
        !matches!(self, TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed span. `text` borrows from the source; concatenating the
/// `text` of every token in order reproduces the source exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Lexes `src` into a complete, round-tripping token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, chars: src.char_indices().collect(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    /// `(byte offset, char)` pairs; `pos` indexes into this.
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.chars.len() {
            let start = self.pos;
            let start_line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            let lo = self.chars[start].0;
            let hi = self.chars.get(self.pos).map_or(self.src.len(), |&(o, _)| o);
            out.push(Token { kind, text: &self.src[lo..hi], line: start_line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Lexes one token starting at `self.pos`, advancing past it.
    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek(0).expect("next_kind called with input remaining");
        if c.is_whitespace() {
            while self.peek(0).is_some_and(char::is_whitespace) {
                self.bump();
            }
            return TokenKind::Whitespace;
        }
        if c == '/' {
            match self.peek(1) {
                Some('/') => return self.line_comment(),
                Some('*') => return self.block_comment(),
                _ => {
                    self.bump();
                    return TokenKind::Punct;
                }
            }
        }
        if c == '"' {
            return self.cooked_string();
        }
        if c == '\'' {
            return self.quote();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        if is_ident_start(c) {
            return self.ident_or_prefixed_literal();
        }
        self.bump();
        if c.is_ascii_punctuation() {
            TokenKind::Punct
        } else {
            TokenKind::Unknown
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    self.bump_n(2);
                    depth -= 1;
                }
                (Some('/'), Some('*')) => {
                    self.bump_n(2);
                    depth += 1;
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: degrade gracefully
            }
        }
        TokenKind::BlockComment
    }

    /// A `"…"` body with escape handling; the opening quote is at `pos`.
    fn cooked_string(&mut self) -> TokenKind {
        self.bump(); // "
        loop {
            match self.peek(0) {
                Some('\\') => self.bump_n(2),
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        TokenKind::Str
    }

    /// `'` disambiguation: char literal vs lifetime.
    fn quote(&mut self) -> TokenKind {
        // 'x' forms, in order of the decision that identifies them:
        //   '\…'          escaped char literal
        //   'c'           any single char followed by a closing quote
        //   'ident        lifetime (no closing quote after one char)
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => {
                self.bump_n(2); // ' and backslash
                self.bump(); // the escaped char itself
                // \u{…} and \x…: consume to the closing quote.
                while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            (Some(_), Some('\'')) => {
                self.bump_n(3);
                TokenKind::Char
            }
            (Some(c), _) if is_ident_start(c) => {
                self.bump(); // '
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Lifetime
            }
            _ => {
                self.bump();
                TokenKind::Unknown // stray quote
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        {
            self.bump_n(2);
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            return TokenKind::Int;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // A dot continues the number only when it is not a range (`1..2`),
        // a method call on the literal (`1.max(2)`), or a tuple-ish access.
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            let is_fraction =
                after.is_none_or(|c| c.is_ascii_digit() || !(c == '.' || is_ident_start(c)));
            if is_fraction {
                float = true;
                self.bump(); // .
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Exponent: `1e3`, `2.5E-7`. An `e` not followed by digits/sign is
        // a suffix (`1e` is not valid Rust; treat as suffix anyway).
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            self.bump(); // e
            if matches!(self.peek(0), Some('+' | '-')) {
                self.bump();
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Type suffix: `1u32`, `1.0f64`.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let lo = self.chars[suffix_start].0;
            let hi = self.chars.get(self.pos).map_or(self.src.len(), |&(o, _)| o);
            if matches!(&self.src[lo..hi], "f32" | "f64") {
                float = true;
            }
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    /// An identifier, or one of the literal prefixes (`r` `b` `c` `br`
    /// `cr`) when immediately followed by a string/char opener.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        // Raw string forms: prefix containing `r`, then `#`* then `"`.
        if let Some(hashes) = self.raw_string_lookahead() {
            return self.raw_string(hashes);
        }
        // Cooked prefixed strings: b"…", c"…".
        if matches!(self.peek(0), Some('b' | 'c')) && self.peek(1) == Some('"') {
            self.bump();
            return self.cooked_string();
        }
        // Byte char: b'x'.
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            return self.quote();
        }
        // Raw identifier: r#type (but r#"…" was handled above).
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(is_ident_start)
        {
            self.bump_n(2);
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    /// If the input at `pos` opens a raw string (`r`, `br`, `cr`, plus
    /// `#`*, plus `"`), returns the hash count and consumes the prefix
    /// *up to and including* the opening quote.
    fn raw_string_lookahead(&mut self) -> Option<usize> {
        let prefix_len = match (self.peek(0), self.peek(1)) {
            (Some('r'), _) => 1,
            (Some('b' | 'c'), Some('r')) => 2,
            _ => return None,
        };
        let mut hashes = 0;
        while self.peek(prefix_len + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some('"') {
            return None;
        }
        self.bump_n(prefix_len + hashes + 1);
        Some(hashes)
    }

    /// Body of a raw string whose opening `"` was just consumed: scan for
    /// `"` followed by `hashes` hash marks (no escapes in raw strings).
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        loop {
            match self.peek(0) {
                Some('"') => {
                    let closed = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                    self.bump();
                    if closed {
                        self.bump_n(hashes);
                        return TokenKind::RawStr;
                    }
                }
                Some(_) => self.bump(),
                None => return TokenKind::RawStr, // unterminated
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::TokenKind::*;
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().filter(|t| t.kind.is_significant()).map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "token spans must concatenate to the source");
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("let x = a.unwrap();"),
            vec![
                (Ident, "let"),
                (Ident, "x"),
                (Punct, "="),
                (Ident, "a"),
                (Punct, "."),
                (Ident, "unwrap"),
                (Punct, "("),
                (Punct, ")"),
                (Punct, ";"),
            ]
        );
    }

    #[test]
    fn string_contents_are_one_token() {
        let ts = kinds("let s = \".unwrap() HashMap thread_rng\";");
        assert_eq!(ts[3], (Str, "\".unwrap() HashMap thread_rng\""));
        roundtrip("let s = \".unwrap() HashMap thread_rng\";");
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let src = r#"let s = "she said \"hi\""; x"#;
        let ts = kinds(src);
        assert_eq!(ts[3].0, Str);
        assert_eq!(ts.last().expect("trailing ident after the string"), &(Ident, "x"));
        roundtrip(src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"interior " quote and .unwrap()"#; y"###;
        let ts = kinds(src);
        assert_eq!(ts[3].0, RawStr);
        assert_eq!(ts[3].1, r##"r#"interior " quote and .unwrap()"#"##);
        assert_eq!(ts.last().expect("trailing ident after the raw string"), &(Ident, "y"));
        roundtrip(src);
    }

    #[test]
    fn raw_string_zero_hashes_and_double_hashes() {
        assert_eq!(kinds(r#"r"ab" z"#)[0], (RawStr, r#"r"ab""#));
        let src = "r##\"has \"# inside\"## z";
        assert_eq!(kinds(src)[0], (RawStr, "r##\"has \"# inside\"##"));
        roundtrip(src);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        assert_eq!(kinds(r#"b"bytes" x"#)[0], (Str, r#"b"bytes""#));
        assert_eq!(kinds(r#"c"cstr" x"#)[0], (Str, r#"c"cstr""#));
        assert_eq!(kinds(r##"br#"raw"# x"##)[0], (RawStr, r##"br#"raw"#"##));
        assert_eq!(kinds("b'x' y")[0], (Char, "b'x'"));
    }

    #[test]
    fn raw_ident_is_an_ident_not_a_raw_string() {
        assert_eq!(kinds("r#type = 1;")[0], (Ident, "r#type"));
        roundtrip("r#type = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(kinds(src), vec![(Ident, "a"), (Ident, "b")]);
        roundtrip(src);
    }

    #[test]
    fn unterminated_block_comment_reaches_eof() {
        let src = "a /* never closed";
        assert_eq!(kinds(src), vec![(Ident, "a")]);
        roundtrip(src);
    }

    #[test]
    fn char_literal_containing_a_quote_mark() {
        // '"' must not open a string; '//' content must not open a comment.
        let src = "let q = '\"'; let s = '/'; mark();";
        let ts = kinds(src);
        assert_eq!(ts[3], (Char, "'\"'"));
        assert_eq!(ts[8], (Char, "'/'"));
        assert_eq!(ts[10], (Ident, "mark"));
        roundtrip(src);
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(kinds(r"'\n' x")[0], (Char, r"'\n'"));
        assert_eq!(kinds(r"'\'' x")[0], (Char, r"'\''"));
        assert_eq!(kinds(r"'\u{1F600}' x")[0], (Char, r"'\u{1F600}'"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; }";
        let ts = kinds(src);
        assert!(ts.contains(&(Lifetime, "'a")), "{ts:?}");
        assert!(ts.contains(&(Char, "'a'")), "{ts:?}");
        assert!(ts.contains(&(Lifetime, "'a")));
        roundtrip(src);
    }

    #[test]
    fn static_and_anonymous_lifetimes() {
        assert!(kinds("&'static str").contains(&(Lifetime, "'static")));
        assert!(kinds("Foo<'_>").contains(&(Lifetime, "'_")));
    }

    #[test]
    fn numbers_ints_floats_ranges_and_suffixes() {
        assert_eq!(kinds("42 ")[0], (Int, "42"));
        assert_eq!(kinds("0xFF_u32 ")[0], (Int, "0xFF_u32"));
        assert_eq!(kinds("1.5 ")[0], (Float, "1.5"));
        assert_eq!(kinds("1e-3 ")[0], (Float, "1e-3"));
        assert_eq!(kinds("2f64 ")[0], (Float, "2f64"));
        assert_eq!(kinds("1. ")[0], (Float, "1."));
        // Ranges and literal method calls do not absorb the dot.
        assert_eq!(kinds("0..n")[..3], [(Int, "0"), (Punct, "."), (Punct, ".")]);
        assert_eq!(kinds("1.max(2)")[..3], [(Int, "1"), (Punct, "."), (Ident, "max")]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\n\nb /* c\nd */ e\n\"s1\ns2\" f";
        let sig: Vec<(usize, &str)> = lex(src)
            .iter()
            .filter(|t| t.kind.is_significant())
            .map(|t| (t.line, t.text))
            .collect();
        assert_eq!(
            sig,
            vec![(1, "a"), (3, "b"), (4, "e"), (5, "\"s1\ns2\""), (6, "f")]
        );
    }

    #[test]
    fn comment_markers_inside_strings_do_not_comment() {
        let src = "let url = \"https://example.com\"; let x = 1;";
        let ts = kinds(src);
        assert!(ts.contains(&(Ident, "x")), "{ts:?}");
        roundtrip(src);
    }

    #[test]
    fn totality_on_garbage() {
        for src in ["'", "\"unclosed", "r#\"unclosed", "\u{0}\u{7f}é'", "/*/", "b'", "1e"] {
            roundtrip(src); // must not panic, must round-trip
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Fragments chosen to collide in interesting ways when concatenated:
    /// literal openers, comment markers, quotes, numbers, idents.
    const FRAGMENTS: &[&str] = &[
        "fn", "let", "x", "_y", "r", "b", "c", "br", "r#type", " ", "\n", "\t", "(", ")", "{",
        "}", "<", ">", ";", ":", "::", ".", "..", "=", "->", "'a", "'a'", "'\\n'", "'\"'", "//",
        "/*", "*/", "/", "*", "\"", "\\\"", "\"str\"", "r\"raw\"", "r#\"raw#\"#", "b\"by\"",
        "b'z'", "#", "##", "0", "1.5", "0xFF", "1e-3", "2f64", "1..9", "unwrap", "HashMap",
        "thread_rng", "é", "∀", "\u{0}",
    ];

    fn soup() -> impl Strategy<Value = String> {
        proptest::collection::vec(0..FRAGMENTS.len(), 0..60)
            .prop_map(|ix| ix.into_iter().map(|i| FRAGMENTS[i]).collect())
    }

    proptest! {
        /// Concatenated token spans reproduce the source byte-for-byte,
        /// for arbitrary (frequently malformed) fragment soups.
        #[test]
        fn lex_round_trips_spans(src in soup()) {
            let toks = lex(&src);
            let joined: String = toks.iter().map(|t| t.text).collect();
            prop_assert_eq!(&joined, &src);
        }

        /// Line numbers are consistent: non-decreasing, starting at 1,
        /// and each token's line equals 1 + newlines before its start.
        #[test]
        fn lex_line_numbers_consistent(src in soup()) {
            let toks = lex(&src);
            let mut consumed = 0usize;
            let mut newlines = 0usize;
            for t in &toks {
                prop_assert_eq!(t.line, newlines + 1);
                consumed += t.text.len();
                newlines += t.text.matches('\n').count();
            }
            prop_assert_eq!(consumed, src.len());
        }
    }
}
