//! The token-level lint pass behind `cargo xtask check`.
//!
//! Twelve rules, all enforcing the determinism-and-robustness contract
//! the reproduction depends on (DESIGN.md §8 and §12). The first six
//! date from PR 2 and are re-expressed here over a real token stream
//! ([`crate::lexer`]); the rest exist *because* of the token stream
//! — they are not expressible at line granularity:
//!
//! 1. **no-unwrap** — library crates may not call `.unwrap()`; failures
//!    must surface either as `Result`s or as `.expect("<invariant>")`
//!    with a message long enough to actually state the invariant.
//! 2. **no-unseeded-rng** — `thread_rng()` draws from OS entropy and
//!    destroys run-to-run reproducibility; every RNG in the pipeline must
//!    be seeded (`ChaCha8Rng::seed_from_u64`).
//! 3. **no-hash-collections** — the deterministic kernels (`socialgraph`,
//!    `kl`, `core`) may not use `HashMap`/`HashSet`: iteration order is
//!    hasher-seed-dependent. Use `BTreeMap`/`BTreeSet` or sorted `Vec`s.
//! 4. **forbid-unsafe** — every crate root must carry
//!    `#![forbid(unsafe_code)]`.
//! 5. **no-panic** — library *runtime* paths (the `/src/` trees of the
//!    [`NO_UNWRAP_CRATES`], outside `#[cfg(test)]` modules and the
//!    dedicated invariants modules) may not call `panic!`, `todo!`, or
//!    `unimplemented!`; `unreachable!` needs a message stating *why* the
//!    arm is impossible. The [`NO_ASSERT_CRATES`] additionally ban
//!    `assert!` in runtime paths (`debug_assert!` stays allowed): their
//!    contract is *degrade, don't abort*.
//! 6. **no-ad-hoc-threads** — thread spawning is confined to the
//!    designated pool/cluster modules ([`THREAD_POOL_MODULES`]), whose
//!    index-slotted reductions keep `--determinism` meaningful.
//! 7. **float-determinism** — in the float-bearing kernels
//!    ([`FLOAT_CRATES`]): no `.partial_cmp(..)` comparator chains (use
//!    `f64::total_cmp`, which is a total order and cannot silently give
//!    `None`-driven tie behaviour); no float `.sum()`/`.product()`/
//!    `.fold(0.0, ..)` reductions except through an explicitly
//!    order-asserting helper or pragma (accumulation order changes the
//!    result in floating point); no `f32`/`f64` `BTreeMap`/`BTreeSet`
//!    keys.
//! 8. **lossy-cast** — in the [`LOSSY_CAST_CRATES`] and the
//!    individually-audited [`LOSSY_CAST_MODULES`] (the hostile-input
//!    ingest and cut-bookkeeping paths), `as` casts to a numeric
//!    primitive are banned: integer-width changes truncate or
//!    wrap, float↔int casts saturate, and all of them do it silently.
//!    Use `From`/`TryFrom`, or carry a pragma **that states the range
//!    invariant** making the cast lossless
//!    (`// xtask-allow: lossy-cast: node ids < 2^32`). A reason-less
//!    lossy-cast pragma does not suppress.
//! 9. **channel-discipline** — in the distributed runtime
//!    ([`CHANNEL_CRATES`]): every `.recv()` must be a `recv_timeout`
//!    (a blocking receive with no deadline is how hung workers wedge the
//!    master forever; DESIGN.md §11's watchdog is built on deadlines), and
//!    `Mutex`/`RwLock`/`Condvar` may appear only in the sanctioned
//!    cluster/pool modules ([`SYNC_PRIMITIVE_MODULES`]).
//! 10. **obs-discipline** — ad-hoc `Instant::now()` / `SystemTime::now()`
//!     reads are confined to the observability layer (the `obs` crate and
//!     the [`CLOCK_SANCTIONED_MODULES`]): every timing must flow through a
//!     `rejecto_obs` span or `Stopwatch`, which is what keeps wall-clock
//!     data segregated into the metrics document's volatile `timings`
//!     section and everything else byte-comparable. A pragma **must state
//!     the justification**; a reason-less one does not suppress.
//! 11. **durable-io** — runtime paths may not write persistent artifacts
//!     with bare `std::fs::write` / `File::create`: neither fsyncs nor
//!     renames, so a crash mid-write leaves a torn file where a
//!     checkpoint, metrics document, or simulator output used to be
//!     (DESIGN.md §14). Persistent writes route through the sanctioned
//!     store module ([`DURABLE_IO_SANCTIONED_MODULES`], i.e.
//!     `rejecto_core::store::atomic_write`); a pragma **must state why
//!     the artifact need not survive a crash**.
//! 12. **dead-pragma** — an `xtask-allow` pragma that no longer
//!     suppresses any diagnostic is itself an error, as is one naming an
//!     unknown rule. Suppressions cannot rot: delete the pragma when the
//!     code it excused goes away.
//!
//! A diagnostic is opted out of with a pragma in a comment **on the same
//! line**: `// xtask-allow: <rule>` or
//! `// xtask-allow: <rule>: <reason>`. The reason is mandatory for
//! `lossy-cast`, `obs-discipline`, and `durable-io`
//! ([`REASON_REQUIRED_RULES`]) and recommended everywhere.

use crate::lexer::{lex, Token, TokenKind};
use std::fmt;

/// Crates (by directory name under `crates/`) subject to **no-unwrap**.
/// The binary crates (`rejecto` itself, `bench`'s experiment bins) may
/// still unwrap at the top level where a panic is an acceptable exit.
pub const NO_UNWRAP_CRATES: &[&str] = &[
    "socialgraph",
    "kl",
    "rejection",
    "core",
    "votetrust",
    "sybilrank",
    "eval",
    "dataflow",
    "obs",
];

/// Crates whose kernels must stay free of hash collections entirely.
pub const NO_HASH_CRATES: &[&str] = &["socialgraph", "kl", "core"];

/// Crates whose runtime paths may not use `assert!` at all (**no-panic**):
/// `dataflow` because the distributed runtime must degrade through the
/// `ClusterError` / `RuntimeError` taxonomy, never abort; `kl` because the
/// KL/FM kernel sits inside every worker and a release-mode abort there
/// takes a whole sweep down with it. `debug_assert!` is exempt, and the
/// `debug-invariants` feature plus the invariants modules carry the
/// release-strength checks. Cold constructor validation may pragma out
/// with a stated reason.
pub const NO_ASSERT_CRATES: &[&str] = &["dataflow", "kl"];

/// Crates exempt from **no-unseeded-rng**: `bench` measures wall-clock
/// behavior and may randomize. (`xtask` no longer needs an exemption —
/// its rule fixtures live in string literals, which the lexer correctly
/// refuses to lint as code.)
pub const RNG_EXEMPT_CRATES: &[&str] = &["bench"];

/// The only first-party modules allowed to spawn OS threads
/// (**no-ad-hoc-threads**). Everything else must route parallelism
/// through these: `core/pool.rs` is the deterministic MAAR-sweep worker
/// pool; the `dataflow` pair is the scoped map/reduce substrate and the
/// master/worker cluster. Repo-relative paths.
pub const THREAD_POOL_MODULES: &[&str] = &[
    "crates/core/src/pool.rs",
    "crates/dataflow/src/cluster.rs",
    "crates/dataflow/src/rdd.rs",
];

/// Crates whose runtime paths are subject to **float-determinism**: the
/// detection kernels and every ranking baseline whose scores get compared
/// across detectors (`sybilrank`, `votetrust`, `eval`), plus `dataflow`,
/// whose distributed sweep must stay byte-identical to `core`'s local one.
pub const FLOAT_CRATES: &[&str] =
    &["socialgraph", "kl", "core", "sybilrank", "votetrust", "dataflow", "eval"];

/// Crates whose runtime paths are subject to the **lossy-cast** audit.
/// `kl` and `core` are the kernels whose arithmetic feeds the objective;
/// `sybilrank` / `votetrust` are the comparison baselines whose scores
/// must agree across platforms. (`socialgraph` and `dataflow` carry a
/// larger legacy of index casts and join the audit in a later pass.)
pub const LOSSY_CAST_CRATES: &[&str] = &["kl", "core", "sybilrank", "votetrust"];

/// Modules outside the [`LOSSY_CAST_CRATES`] that join the **lossy-cast**
/// audit individually: the hostile-input ingest and cut-bookkeeping paths,
/// where a silently wrapping degree or cut counter is an adversarial
/// primitive (feed crafted edges until a counter wraps) rather than a
/// cosmetic bug. Repo-relative paths; the rest of `socialgraph` and
/// `dataflow` still carry legacy index casts and join in a later pass.
pub const LOSSY_CAST_MODULES: &[&str] = &[
    "crates/socialgraph/src/graph.rs",
    "crates/socialgraph/src/io.rs",
    "crates/rejection/src/augmented.rs",
    "crates/rejection/src/partition.rs",
    "crates/rejection/src/io.rs",
];

/// Crates exempt from **obs-discipline**: `obs` *is* the observability
/// layer (its spans and `Stopwatch` are the sanctioned clock reads), and
/// `bench` measures wall-clock behavior by design.
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["obs", "bench"];

/// Modules outside the exempt crates allowed to read the clock directly
/// (**obs-discipline**): the cancellation token's deadline arithmetic
/// predates the obs crate and is scheduling-volatile by nature.
/// Repo-relative paths.
pub const CLOCK_SANCTIONED_MODULES: &[&str] = &["crates/kl/src/cancel.rs"];

/// The only first-party modules allowed to open files for writing with
/// the raw primitives (**durable-io**): the durable store itself, whose
/// `atomic_write` is the sanctioned temp-file → fsync → rename → dir-sync
/// protocol every persistent artifact flows through. Repo-relative paths.
pub const DURABLE_IO_SANCTIONED_MODULES: &[&str] = &["crates/core/src/store.rs"];

/// Crates exempt from **durable-io**: `xtask` is the lint/test harness —
/// its outputs (fixture scratch, reports) are rebuilt on every run and
/// carry no durability contract.
pub const DURABLE_IO_EXEMPT_CRATES: &[&str] = &["xtask"];

/// Rules whose pragma must carry a reason to suppress; a reason-less
/// pragma counts as addressed (not dead) but the diagnostic still fires.
pub const REASON_REQUIRED_RULES: &[&str] = &["lossy-cast", "obs-discipline", "durable-io"];

/// Crates whose runtime paths are subject to **channel-discipline**.
pub const CHANNEL_CRATES: &[&str] = &["dataflow"];

/// The sanctioned homes for lock primitives inside the
/// [`CHANNEL_CRATES`]: the cluster master/worker runtime and the scoped
/// map/reduce substrate. Repo-relative paths.
pub const SYNC_PRIMITIVE_MODULES: &[&str] =
    &["crates/dataflow/src/cluster.rs", "crates/dataflow/src/rdd.rs"];

/// Every rule name `xtask-allow:` accepts. `dead-pragma` is listed (so a
/// pragma naming it parses) but is itself never suppressible.
pub const RULES: &[&str] = &[
    "no-unwrap",
    "no-unseeded-rng",
    "no-hash-collections",
    "forbid-unsafe",
    "no-panic",
    "no-ad-hoc-threads",
    "float-determinism",
    "lossy-cast",
    "channel-discipline",
    "obs-discipline",
    "durable-io",
    "dead-pragma",
];

/// Minimum `.expect("...")` message length that can plausibly state an
/// invariant ("fixture parses", "sweep is non-empty", ...).
pub const MIN_EXPECT_MESSAGE: usize = 8;

/// The numeric primitive type names an `as` cast can target.
const NUMERIC_PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name, as accepted by `xtask-allow:`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed (for `--json` CI annotation).
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A source file plus the workspace context the rules key on.
#[derive(Debug, Clone, Copy)]
pub struct SourceFile<'a> {
    /// Repo-relative path, e.g. `crates/kl/src/bucket.rs`.
    pub rel_path: &'a str,
    /// Directory name under `crates/`, or `"rejecto"` for the root package.
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`lib.rs` / `main.rs`).
    pub is_crate_root: bool,
    /// File contents.
    pub text: &'a str,
}

/// One `xtask-allow` pragma, parsed out of a comment token.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pragma {
    /// 1-based line the pragma sits on (and therefore suppresses).
    line: usize,
    rule: String,
    reason: Option<String>,
}

/// Parses every pragma out of the token stream's comments. A pragma is
/// `xtask-allow: <rule>` with an optional `: <reason>` tail; the rule
/// name is the leading run of `[a-z-]` characters after the marker.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are excluded: they
/// *describe* pragmas (this file does, extensively) but cannot declare
/// them — a directive belongs in a plain comment.
fn collect_pragmas(tokens: &[Token<'_>]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc && !t.text.starts_with("/**/") {
            continue;
        }
        let mut search = 0;
        while let Some(pos) = t.text[search..].find("xtask-allow:") {
            let at = search + pos;
            let line = t.line + t.text[..at].matches('\n').count();
            let rest = t.text[at + "xtask-allow:".len()..].trim_start();
            let name_len = rest
                .find(|c: char| !(c.is_ascii_lowercase() || c == '-'))
                .unwrap_or(rest.len());
            let rule = rest[..name_len].to_string();
            let tail = rest[name_len..]
                .lines()
                .next()
                .unwrap_or("")
                .trim_start_matches([':', '-', '—', ' ', '\t'])
                .trim();
            let reason = if tail.is_empty() { None } else { Some(tail.to_string()) };
            out.push(Pragma { line, rule, reason });
            search = at + "xtask-allow:".len();
        }
    }
    out
}

/// The rule engine for one file: the significant-token stream, the
/// pragma table, and the violations accumulated so far.
struct Engine<'a> {
    f: &'a SourceFile<'a>,
    raw_lines: Vec<&'a str>,
    sig: Vec<Token<'a>>,
    pragmas: Vec<Pragma>,
    pragma_used: Vec<bool>,
    out: Vec<Violation>,
}

impl<'a> Engine<'a> {
    /// Records a violation at `line` unless a same-line pragma for `rule`
    /// suppresses it (marking the pragma live either way it matches).
    fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        let mut reasonless_pragma = false;
        for (i, p) in self.pragmas.iter().enumerate() {
            if p.line != line || p.rule != rule {
                continue;
            }
            if REASON_REQUIRED_RULES.contains(&rule) && p.reason.is_none() {
                // The pragma is addressed at this diagnostic (so it is not
                // *dead*), but without a stated reason it does not
                // suppress.
                self.pragma_used[i] = true;
                reasonless_pragma = true;
                continue;
            }
            self.pragma_used[i] = true;
            return;
        }
        let message = if reasonless_pragma {
            let what = if rule == "lossy-cast" { "range-invariant reason" } else { "justification" };
            format!("{message} (pragma present but missing the {what})")
        } else {
            message
        };
        self.out.push(Violation {
            file: self.f.rel_path.to_string(),
            line,
            rule,
            message,
            snippet: self.raw_lines.get(line.saturating_sub(1)).unwrap_or(&"").trim().to_string(),
        });
    }

    // --- token-pattern helpers over the significant stream -------------

    fn ident(&self, i: usize) -> Option<&str> {
        match self.sig.get(i) {
            Some(t) if t.kind == TokenKind::Ident => Some(t.text),
            _ => None,
        }
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name)
    }

    fn is_punct(&self, i: usize, ch: &str) -> bool {
        matches!(self.sig.get(i), Some(t) if t.kind == TokenKind::Punct && t.text == ch)
    }

    fn line_of(&self, i: usize) -> usize {
        self.sig.get(i).map_or(1, |t| t.line)
    }

    /// The literal content of a string token at `i` (prefix, quotes, and
    /// raw-string hashes stripped), or `None` if `i` is not a string.
    fn string_content(&self, i: usize) -> Option<&str> {
        let t = self.sig.get(i)?;
        match t.kind {
            TokenKind::Str => {
                let body = t.text.trim_start_matches(['b', 'c']);
                let inner = body.strip_prefix('"')?;
                Some(inner.strip_suffix('"').unwrap_or(inner))
            }
            TokenKind::RawStr => {
                let body = t.text.trim_start_matches(['b', 'c', 'r']);
                let hashes = body.chars().take_while(|&c| c == '#').count();
                let inner = body[hashes..].strip_prefix('"')?;
                // Closer is `"` + the same number of hashes (absent when
                // the literal is unterminated).
                let closer: String = std::iter::once('"').chain("#".repeat(hashes).chars()).collect();
                Some(inner.strip_suffix(closer.as_str()).unwrap_or(inner))
            }
            _ => None,
        }
    }

    /// 1-based line of the first `#[cfg(test)]` *module* (the attribute
    /// followed by a `mod` item), after which the runtime-path rules
    /// stop: tests panic, cast, and approximate on purpose. A
    /// `#[cfg(test)]` on a lone helper does not end the scan.
    fn test_module_start(&self) -> usize {
        for i in 0..self.sig.len() {
            if self.is_punct(i, "#")
                && self.is_punct(i + 1, "[")
                && self.is_ident(i + 2, "cfg")
                && self.is_punct(i + 3, "(")
                && self.is_ident(i + 4, "test")
                && self.is_punct(i + 5, ")")
                && self.is_punct(i + 6, "]")
                && (self.is_ident(i + 7, "mod")
                    || (self.is_ident(i + 7, "pub") && self.is_ident(i + 8, "mod")))
            {
                return self.line_of(i);
            }
        }
        usize::MAX
    }

    /// Whether any token of the same statement as `i` (scanning backwards
    /// to the nearest `;` / `{` / `}`) names a float primitive — the
    /// evidence that a `.sum()` without a turbofish reduces floats.
    fn statement_mentions_float(&self, i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.sig[j];
            match t.kind {
                TokenKind::Punct if matches!(t.text, ";" | "{" | "}") => return false,
                TokenKind::Ident if matches!(t.text, "f32" | "f64") => return true,
                _ => {}
            }
        }
        false
    }
}

/// Runs every applicable rule over one file.
pub fn lint_file(f: &SourceFile) -> Vec<Violation> {
    let tokens = lex(f.text);
    let pragmas = collect_pragmas(&tokens);
    let pragma_used = vec![false; pragmas.len()];
    let sig: Vec<Token<'_>> = tokens.into_iter().filter(|t| t.kind.is_significant()).collect();
    let mut e = Engine {
        f,
        raw_lines: f.text.lines().collect(),
        sig,
        pragmas,
        pragma_used,
        out: Vec::new(),
    };

    let unwrap_banned = NO_UNWRAP_CRATES.contains(&f.crate_name);
    let hash_banned = NO_HASH_CRATES.contains(&f.crate_name);
    let rng_banned = !RNG_EXEMPT_CRATES.contains(&f.crate_name);
    let threads_banned = !THREAD_POOL_MODULES.contains(&f.rel_path);
    // The runtime-path rules cover `/src/` trees only, minus the
    // invariants modules (whose whole job is panicking on corrupted
    // state) and everything from the first `#[cfg(test)] mod` down.
    let in_src = f.rel_path.contains("/src/");
    let panic_banned = unwrap_banned && in_src && !f.rel_path.contains("invariants");
    let assert_banned = panic_banned && NO_ASSERT_CRATES.contains(&f.crate_name);
    let float_banned = FLOAT_CRATES.contains(&f.crate_name) && in_src;
    let cast_banned = (LOSSY_CAST_CRATES.contains(&f.crate_name)
        || LOSSY_CAST_MODULES.contains(&f.rel_path))
        && in_src
        && !f.rel_path.contains("invariants");
    let channel_banned = CHANNEL_CRATES.contains(&f.crate_name) && in_src;
    let clock_banned = !CLOCK_EXEMPT_CRATES.contains(&f.crate_name)
        && !CLOCK_SANCTIONED_MODULES.contains(&f.rel_path)
        && in_src;
    // The root package's tree is `src/...` with no leading component, so
    // the `/src/` infix test misses it; durable-io must cover the CLI.
    let in_src_tree = in_src || f.rel_path.starts_with("src/");
    let durable_banned = !DURABLE_IO_EXEMPT_CRATES.contains(&f.crate_name)
        && !DURABLE_IO_SANCTIONED_MODULES.contains(&f.rel_path)
        && in_src_tree;
    let runtime_rules = panic_banned
        || assert_banned
        || float_banned
        || cast_banned
        || channel_banned
        || clock_banned
        || durable_banned;
    let test_start = if runtime_rules { e.test_module_start() } else { usize::MAX };

    for i in 0..e.sig.len() {
        let line = e.line_of(i);
        let runtime = line < test_start;

        // ---- no-unwrap ------------------------------------------------
        if unwrap_banned
            && e.is_punct(i, ".")
            && e.is_ident(i + 1, "unwrap")
            && e.is_punct(i + 2, "(")
            && e.is_punct(i + 3, ")")
        {
            e.emit(
                "no-unwrap",
                e.line_of(i + 1),
                "`.unwrap()` in a library crate; return a Result or use \
                 `.expect(\"<invariant>\")`"
                    .to_string(),
            );
        }
        if unwrap_banned && e.is_punct(i, ".") && e.is_ident(i + 1, "expect") && e.is_punct(i + 2, "(")
        {
            if let Some(msg) = e.string_content(i + 3) {
                if msg.len() < MIN_EXPECT_MESSAGE {
                    e.emit(
                        "no-unwrap",
                        e.line_of(i + 1),
                        format!(
                            "`.expect(\"{msg}\")` message too weak to state an \
                             invariant (< {MIN_EXPECT_MESSAGE} chars)"
                        ),
                    );
                }
            }
        }

        // ---- no-panic -------------------------------------------------
        if panic_banned && runtime && e.is_punct(i + 1, "!") {
            if let Some(mac) = e.ident(i).map(str::to_string) {
                if matches!(mac.as_str(), "panic" | "todo" | "unimplemented") {
                    e.emit(
                        "no-panic",
                        line,
                        format!(
                            "`{mac}!` in a library runtime path; fail through the \
                             structured RuntimeError taxonomy instead"
                        ),
                    );
                }
                if mac == "unreachable" && e.is_punct(i + 2, "(") {
                    let weak = match e.string_content(i + 3) {
                        Some(msg) => msg.len() < MIN_EXPECT_MESSAGE,
                        // Bare `unreachable!()` is weak; a computed message
                        // (format!) is accepted, same as `.expect`.
                        None => e.is_punct(i + 3, ")"),
                    };
                    if weak {
                        e.emit(
                            "no-panic",
                            line,
                            format!(
                                "`unreachable!` without a message stating why the arm \
                                 is impossible (< {MIN_EXPECT_MESSAGE} chars)"
                            ),
                        );
                    }
                }
                if assert_banned && mac == "assert" {
                    e.emit(
                        "no-panic",
                        line,
                        "`assert!` aborts release builds; this crate must degrade \
                         through its structured error taxonomy (use `debug_assert!` \
                         for invariants)"
                            .to_string(),
                    );
                }
            }
        }

        // ---- no-unseeded-rng ------------------------------------------
        if rng_banned && e.is_ident(i, "thread_rng") {
            e.emit(
                "no-unseeded-rng",
                line,
                "`thread_rng` is unseeded and breaks reproducibility; \
                 use `ChaCha8Rng::seed_from_u64`"
                    .to_string(),
            );
        }

        // ---- no-ad-hoc-threads ----------------------------------------
        if threads_banned
            && e.is_ident(i, "thread")
            && e.is_punct(i + 1, ":")
            && e.is_punct(i + 2, ":")
            && matches!(e.ident(i + 3), Some("spawn" | "scope" | "Builder"))
        {
            e.emit(
                "no-ad-hoc-threads",
                line,
                "ad-hoc thread spawning risks completion-order \
                 nondeterminism; route parallelism through a \
                 THREAD_POOL_MODULES member (core::pool, dataflow)"
                    .to_string(),
            );
        }

        // ---- no-hash-collections --------------------------------------
        if hash_banned && matches!(e.ident(i), Some("HashMap" | "HashSet")) {
            e.emit(
                "no-hash-collections",
                line,
                "hash collections have hasher-seeded iteration order; \
                 deterministic kernels must use BTreeMap/BTreeSet or \
                 sorted Vecs"
                    .to_string(),
            );
        }

        // ---- float-determinism ----------------------------------------
        if float_banned && runtime {
            if e.is_punct(i, ".") && e.is_ident(i + 1, "partial_cmp") {
                e.emit(
                    "float-determinism",
                    e.line_of(i + 1),
                    "`.partial_cmp(..)` comparator; floats must order through \
                     `total_cmp` (a total order with no NaN-driven `None` arm), \
                     integers through `Ord::cmp`"
                        .to_string(),
                );
            }
            if e.is_punct(i, ".") && matches!(e.ident(i + 1), Some("sum" | "product")) {
                // `.sum::<f64>()` — explicit float turbofish — or a plain
                // `.sum()` whose statement is float-annotated.
                let float_turbofish = e.is_punct(i + 2, ":")
                    && e.is_punct(i + 3, ":")
                    && e.is_punct(i + 4, "<")
                    && matches!(e.ident(i + 5), Some("f32" | "f64"));
                let int_turbofish = e.is_punct(i + 2, ":") && !float_turbofish;
                if float_turbofish || (!int_turbofish && e.statement_mentions_float(i)) {
                    e.emit(
                        "float-determinism",
                        e.line_of(i + 1),
                        "float reduction whose result depends on accumulation \
                         order; route it through an order-asserting helper \
                         (`socialgraph::det::ordered_sum`) or pragma the site \
                         with the ordering argument"
                            .to_string(),
                    );
                }
            }
            if e.is_punct(i, ".")
                && e.is_ident(i + 1, "fold")
                && e.is_punct(i + 2, "(")
                && matches!(e.sig.get(i + 3), Some(t) if t.kind == TokenKind::Float)
            {
                e.emit(
                    "float-determinism",
                    e.line_of(i + 1),
                    "float fold whose result depends on accumulation order; \
                     route it through an order-asserting helper \
                     (`socialgraph::det::ordered_sum`) or pragma the site"
                        .to_string(),
                );
            }
            if matches!(e.ident(i), Some("BTreeMap" | "BTreeSet"))
                && e.is_punct(i + 1, "<")
                && matches!(e.ident(i + 2), Some("f32" | "f64"))
            {
                e.emit(
                    "float-determinism",
                    line,
                    "float-keyed ordered collection; floats are not `Ord` and \
                     any wrapper's order is a determinism hazard — key by an \
                     integer-scaled representation instead"
                        .to_string(),
                );
            }
        }

        // ---- lossy-cast -----------------------------------------------
        if cast_banned && runtime && e.is_ident(i, "as") {
            if let Some(ty) = e.ident(i + 1) {
                if NUMERIC_PRIMITIVES.contains(&ty) {
                    let ty = ty.to_string();
                    e.emit(
                        "lossy-cast",
                        line,
                        format!(
                            "`as {ty}` silently truncates/wraps/saturates; use \
                             `{ty}::from` / `{ty}::try_from`, or pragma the site \
                             with the range invariant \
                             (`// xtask-allow: lossy-cast: <invariant>`)"
                        ),
                    );
                }
            }
        }

        // ---- obs-discipline -------------------------------------------
        if clock_banned
            && runtime
            && matches!(e.ident(i), Some("Instant" | "SystemTime"))
            && e.is_punct(i + 1, ":")
            && e.is_punct(i + 2, ":")
            && e.is_ident(i + 3, "now")
        {
            let ty = e.ident(i).unwrap_or_default().to_string();
            e.emit(
                "obs-discipline",
                line,
                format!(
                    "ad-hoc `{ty}::now()` outside the observability layer; \
                     time spans through `rejecto_obs` (or `rejecto_obs::\
                     Stopwatch` for deadline arithmetic), or pragma the site \
                     with the justification \
                     (`// xtask-allow: obs-discipline: <why>`)"
                ),
            );
        }

        // ---- durable-io -----------------------------------------------
        if durable_banned && runtime {
            if e.is_ident(i, "fs")
                && e.is_punct(i + 1, ":")
                && e.is_punct(i + 2, ":")
                && e.is_ident(i + 3, "write")
            {
                e.emit(
                    "durable-io",
                    line,
                    "bare `fs::write` is not crash-consistent (no temp file, no \
                     fsync, no atomic rename — a crash leaves a torn artifact); \
                     route persistent writes through `rejecto_core::store::\
                     atomic_write`, or pragma the site with the reason the \
                     artifact need not survive a crash \
                     (`// xtask-allow: durable-io: <why>`)"
                        .to_string(),
                );
            }
            if e.is_ident(i, "File")
                && e.is_punct(i + 1, ":")
                && e.is_punct(i + 2, ":")
                && e.is_ident(i + 3, "create")
            {
                e.emit(
                    "durable-io",
                    line,
                    "bare `File::create` truncates in place and is not \
                     crash-consistent; route persistent writes through \
                     `rejecto_core::store::atomic_write`, or pragma the site \
                     with the reason the artifact need not survive a crash \
                     (`// xtask-allow: durable-io: <why>`)"
                        .to_string(),
                );
            }
        }

        // ---- channel-discipline ---------------------------------------
        if channel_banned && runtime {
            if e.is_punct(i, ".")
                && e.is_ident(i + 1, "recv")
                && e.is_punct(i + 2, "(")
                && e.is_punct(i + 3, ")")
            {
                e.emit(
                    "channel-discipline",
                    e.line_of(i + 1),
                    "blocking `.recv()` with no deadline wedges the runtime on a \
                     hung peer; use `recv_timeout` (the watchdog contract, \
                     DESIGN.md §11) or pragma with the liveness argument"
                        .to_string(),
                );
            }
            if matches!(e.ident(i), Some("Mutex" | "RwLock" | "Condvar"))
                && !SYNC_PRIMITIVE_MODULES.contains(&f.rel_path)
            {
                let prim = e.ident(i).unwrap_or_default().to_string();
                e.emit(
                    "channel-discipline",
                    line,
                    format!(
                        "`{prim}` outside the sanctioned cluster/pool modules; \
                         shared-state concurrency belongs in \
                         SYNC_PRIMITIVE_MODULES, everything else communicates \
                         over channels"
                    ),
                );
            }
        }
    }

    // ---- forbid-unsafe ------------------------------------------------
    if f.is_crate_root {
        let mut found = false;
        for i in 0..e.sig.len() {
            if e.is_punct(i, "#")
                && e.is_punct(i + 1, "!")
                && e.is_punct(i + 2, "[")
                && e.is_ident(i + 3, "forbid")
                && e.is_punct(i + 4, "(")
                && e.is_ident(i + 5, "unsafe_code")
                && e.is_punct(i + 6, ")")
                && e.is_punct(i + 7, "]")
            {
                found = true;
                break;
            }
        }
        if !found {
            e.emit(
                "forbid-unsafe",
                1,
                "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    // ---- dead-pragma ----------------------------------------------------
    // Runs last: any pragma the rule passes above never consulted is rot.
    for i in 0..e.pragmas.len() {
        let p = e.pragmas[i].clone();
        if !RULES.contains(&p.rule.as_str()) {
            e.out.push(Violation {
                file: f.rel_path.to_string(),
                line: p.line,
                rule: "dead-pragma",
                message: format!(
                    "pragma names unknown rule `{}` (known rules: {})",
                    p.rule,
                    RULES.join(", ")
                ),
                snippet: e.raw_lines.get(p.line.saturating_sub(1)).unwrap_or(&"").trim().to_string(),
            });
        } else if !e.pragma_used[i] {
            e.out.push(Violation {
                file: f.rel_path.to_string(),
                line: p.line,
                rule: "dead-pragma",
                message: format!(
                    "`xtask-allow: {}` suppresses no diagnostic on this line; \
                     dead pragmas rot into false confidence — delete it",
                    p.rule
                ),
                snippet: e.raw_lines.get(p.line.saturating_sub(1)).unwrap_or(&"").trim().to_string(),
            });
        }
    }

    e.out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    e.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file<'a>(crate_name: &'a str, text: &'a str) -> SourceFile<'a> {
        SourceFile { rel_path: "crates/test/src/x.rs", crate_name, is_crate_root: false, text }
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    // ---- no-unwrap ----------------------------------------------------

    #[test]
    fn unwrap_in_library_crate_is_flagged() {
        let src = "fn f() { let x = opt.unwrap(); }\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["no-unwrap"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].snippet, "fn f() { let x = opt.unwrap(); }");
    }

    #[test]
    fn unwrap_outside_banned_crates_passes() {
        let src = "fn f() { let x = opt.unwrap(); }\n";
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_doc_is_ignored() {
        let src = "// calls .unwrap() internally\n/// like .unwrap()\nfn f() {}\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    /// The PR 2 line scanner kept string *contents* when stripping
    /// comments, so this exact source produced a false positive. The
    /// lexer lints tokens, and a string is one token.
    #[test]
    fn unwrap_inside_string_literal_is_ignored() {
        let src = "fn f() { let s = \"never call .unwrap() here\"; }\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    /// Raw strings desynchronised the PR 2 state machine entirely (the
    /// interior `"` flipped it out of string mode).
    #[test]
    fn unwrap_inside_raw_string_is_ignored() {
        let src = "fn f() { let s = r#\"interior \" then .unwrap() \"#; }\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    #[test]
    fn unwrap_with_pragma_is_allowed() {
        let src = "let x = opt.unwrap(); // xtask-allow: no-unwrap: fixture input is static\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    /// Doc comments describe pragmas without declaring them; a
    /// `xtask-allow:` inside one is neither a suppression nor dead.
    #[test]
    fn pragma_in_doc_comment_is_inert() {
        let src = "/// Suppress with `// xtask-allow: no-unwrap: reason`.\nfn f() {}\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
        let src = "//! `xtask-allow: lossy-cast: ids < 2^32` states the invariant.\nfn f() {}\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn weak_expect_message_is_flagged() {
        let src = "let x = opt.expect(\"oops\");\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["no-unwrap"]);
        assert!(v[0].message.contains("too weak"));
    }

    /// A call split across lines was invisible to the PR 2 line scanner
    /// (false negative); the token stream does not care about newlines.
    #[test]
    fn weak_expect_message_across_lines_is_flagged() {
        let src = "let x = opt.expect(\n    \"oops\",\n);\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["no-unwrap"]);
        assert_eq!(v[0].line, 1, "violation lands on the `.expect` line");
    }

    #[test]
    fn invariant_expect_message_passes() {
        let src = "let x = opt.expect(\"sweep is non-empty\");\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    #[test]
    fn computed_expect_message_passes() {
        let src = "let x = opt.expect(&format!(\"no {u}\"));\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    // ---- no-unseeded-rng ----------------------------------------------

    #[test]
    fn thread_rng_is_flagged_everywhere_but_exempt_crates() {
        let src = "let mut rng = rand::thread_rng();\n";
        let v = lint_file(&file("simulator", src));
        assert_eq!(rules(&v), ["no-unseeded-rng"]);
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    /// `xtask` needed a crate-level exemption under the line scanner
    /// because its own pattern tables mention `thread_rng` in strings.
    /// Token-level linting makes the exemption unnecessary.
    #[test]
    fn thread_rng_in_string_is_ignored_even_in_xtask() {
        let src = "let pats = [\"thread_rng\"];\n";
        assert!(lint_file(&file("xtask", src)).is_empty());
        assert!(lint_file(&file("simulator", src)).is_empty());
    }

    // ---- no-hash-collections ------------------------------------------

    #[test]
    fn hash_collections_flagged_in_kernel_crates_only() {
        let src = "use std::collections::HashMap;\n";
        let v = lint_file(&file("socialgraph", src));
        assert_eq!(rules(&v), ["no-hash-collections"]);
        assert!(lint_file(&file("eval", src)).is_empty());
    }

    #[test]
    fn hash_in_doc_comment_is_ignored() {
        let src = "//! never use HashMap here\nfn f() {}\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    /// Nested block comments defeated naive strippers; the PR 2 scanner
    /// handled one level, the lexer handles arbitrary depth.
    #[test]
    fn hash_in_nested_block_comment_is_ignored() {
        let src = "/* outer /* HashMap */ still HashMap */\nfn f() {}\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    #[test]
    fn hash_inside_string_is_ignored() {
        let src = "let msg = \"HashMap is banned here\";\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    // ---- no-ad-hoc-threads --------------------------------------------

    #[test]
    fn ad_hoc_thread_spawn_is_flagged() {
        for src in [
            "let h = std::thread::spawn(|| 1);\n",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n",
            "let b = std::thread::Builder::new();\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(rules(&v), ["no-ad-hoc-threads"], "{src:?}");
        }
    }

    #[test]
    fn thread_pool_modules_may_spawn() {
        let f = SourceFile {
            rel_path: "crates/core/src/pool.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "crossbeam::thread::scope(|s| { s.spawn(|| {}); });\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn thread_spawn_with_pragma_is_allowed() {
        let src = "std::thread::spawn(f); // xtask-allow: no-ad-hoc-threads\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn thread_mention_in_comment_is_ignored() {
        let src = "// never call thread::spawn here\nfn f() {}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    /// The string-literal pattern table that used to force a crate-wide
    /// `xtask` exemption now lints clean in every crate.
    #[test]
    fn thread_patterns_in_strings_are_ignored_without_exemption() {
        let src = "let pats = [\"thread::spawn\", \"thread::scope\"];\n";
        assert!(lint_file(&file("xtask", src)).is_empty());
        assert!(lint_file(&file("core", src)).is_empty());
    }

    // ---- no-panic -----------------------------------------------------

    #[test]
    fn panic_in_library_runtime_path_is_flagged() {
        for src in [
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { todo!() }\n",
            "fn f() { unimplemented!() }\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(rules(&v), ["no-panic"], "{src:?}");
        }
    }

    #[test]
    fn panic_outside_no_unwrap_crates_passes() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    #[test]
    fn catch_unwind_path_is_not_a_panic_call() {
        let src = "let r = std::panic::catch_unwind(|| 1);\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn panic_with_pragma_is_allowed() {
        let src = "panic!(\"injected fault\") // xtask-allow: no-panic: fault injection trigger\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn panic_below_the_test_module_passes() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { panic!(\"t\"); }\n}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn cfg_test_on_a_lone_item_does_not_end_the_scan() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn f() { panic!(\"boom\"); }\n";
        let v = lint_file(&file("core", src));
        assert_eq!(rules(&v), ["no-panic"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn invariants_modules_may_panic() {
        let f = SourceFile {
            rel_path: "crates/core/src/invariants.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "pub fn check() { panic!(\"corrupted bookkeeping\"); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn test_directories_may_panic() {
        let f = SourceFile {
            rel_path: "crates/core/tests/faults.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "fn f() { panic!(\"assertion\"); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn bare_unreachable_is_flagged_but_messaged_unreachable_passes() {
        let bare = "fn f() { unreachable!() }\n";
        let v = lint_file(&file("dataflow", bare));
        assert_eq!(rules(&v), ["no-panic"]);

        let weak = "fn f() { unreachable!(\"no\") }\n";
        assert_eq!(lint_file(&file("dataflow", weak)).len(), 1);

        let messaged = "fn f() { unreachable!(\"retry loop returns or panics\") }\n";
        assert!(lint_file(&file("dataflow", messaged)).is_empty());

        let computed = "fn f() { unreachable!(\"state {s:?} impossible\") }\n";
        assert!(lint_file(&file("dataflow", computed)).is_empty());
    }

    #[test]
    fn assert_in_no_assert_crates_is_flagged() {
        let src = "fn f(n: usize) { assert!(n > 0, \"n must be positive\"); }\n";
        for krate in ["dataflow", "kl"] {
            let v = lint_file(&file(krate, src));
            assert_eq!(rules(&v), ["no-panic"], "{krate}");
            assert!(v[0].message.contains("degrade"));
        }
    }

    #[test]
    fn debug_assert_in_no_assert_crate_passes() {
        let src = "fn f(n: usize) { debug_assert!(n > 0); }\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn assert_eq_is_not_bare_assert() {
        let src = "fn f(n: usize) { assert_eq!(n, 1); assert_ne!(n, 2); }\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn assert_outside_no_assert_crates_passes() {
        let src = "fn f(n: usize) { assert!(n > 0, \"n must be positive\"); }\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn assert_with_pragma_is_allowed() {
        let src = "assert!(cap > 0, \"capacity\"); // xtask-allow: no-panic: constructor contract\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn panic_mention_in_comment_is_ignored() {
        let src = "// a worker panic!(...) here would abort\nfn f() {}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    // ---- forbid-unsafe ------------------------------------------------

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let f = SourceFile {
            rel_path: "crates/test/src/lib.rs",
            crate_name: "votetrust",
            is_crate_root: true,
            text: "//! docs\npub fn f() {}\n",
        };
        let v = lint_file(&f);
        assert_eq!(rules(&v), ["forbid-unsafe"]);
    }

    #[test]
    fn crate_root_with_forbid_unsafe_passes() {
        let f = SourceFile {
            rel_path: "crates/test/src/lib.rs",
            crate_name: "votetrust",
            is_crate_root: true,
            text: "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    /// The attribute must be real code — quoting it in a doc comment or
    /// string does not satisfy the rule (a PR 2 false-negative class).
    #[test]
    fn forbid_unsafe_inside_string_does_not_count() {
        let f = SourceFile {
            rel_path: "crates/test/src/lib.rs",
            crate_name: "votetrust",
            is_crate_root: true,
            text: "//! `#![forbid(unsafe_code)]`\nconst A: &str = \"#![forbid(unsafe_code)]\";\n",
        };
        let v = lint_file(&f);
        assert_eq!(rules(&v), ["forbid-unsafe"]);
    }

    // ---- float-determinism --------------------------------------------

    #[test]
    fn partial_cmp_chain_in_float_crate_is_flagged() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n";
        let v = lint_file(&file("core", src));
        assert_eq!(rules(&v), ["float-determinism"]);
        assert!(v[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_sort_passes() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn partial_cmp_outside_float_crates_passes() {
        let src = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); }\n";
        assert!(lint_file(&file("simulator", src)).is_empty());
    }

    #[test]
    fn partial_cmp_trait_impl_definition_passes() {
        let src = "impl PartialOrd for K { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn float_sum_turbofish_is_flagged() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let v = lint_file(&file("sybilrank", src));
        assert_eq!(rules(&v), ["float-determinism"]);
    }

    #[test]
    fn float_sum_via_let_annotation_is_flagged() {
        let src = "fn f(xs: &[f64]) { let s: f64 = xs.iter().sum(); }\n";
        let v = lint_file(&file("sybilrank", src));
        assert_eq!(rules(&v), ["float-determinism"]);
    }

    #[test]
    fn integer_sum_passes() {
        let src = "fn f(xs: &[usize]) -> usize { let n: usize = xs.iter().sum(); n }\n";
        assert!(lint_file(&file("sybilrank", src)).is_empty());
    }

    #[test]
    fn integer_turbofish_sum_passes_even_near_floats() {
        let src = "fn f(xs: &[u64], y: f64) -> u64 { let _ = y; xs.iter().sum::<u64>() }\n";
        assert!(lint_file(&file("sybilrank", src)).is_empty());
    }

    #[test]
    fn float_fold_is_flagged() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }\n";
        let v = lint_file(&file("socialgraph", src));
        assert_eq!(rules(&v), ["float-determinism"]);
    }

    #[test]
    fn integer_fold_passes() {
        let src = "fn f(xs: &[u64]) -> u64 { xs.iter().fold(0, |a, b| a + b) }\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    #[test]
    fn float_keyed_btreemap_is_flagged() {
        let src = "fn f() { let m: BTreeMap<f64, u32> = BTreeMap::new(); }\n";
        let v = lint_file(&file("kl", src));
        assert_eq!(rules(&v), ["float-determinism"]);
    }

    #[test]
    fn int_keyed_btreemap_passes() {
        let src = "fn f() { let m: BTreeMap<u32, f64> = BTreeMap::new(); }\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn float_rules_skip_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn float_sum_with_pragma_is_allowed() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() } // xtask-allow: float-determinism: slice order is fixed\n";
        assert!(lint_file(&file("sybilrank", src)).is_empty());
    }

    // ---- lossy-cast ---------------------------------------------------

    #[test]
    fn numeric_as_cast_in_audited_crate_is_flagged() {
        let src = "fn f(n: u64) -> u32 { n as u32 }\n";
        let v = lint_file(&file("kl", src));
        assert_eq!(rules(&v), ["lossy-cast"]);
        assert!(v[0].message.contains("try_from"));
    }

    #[test]
    fn float_int_cast_is_flagged() {
        let src = "fn f(x: f64) -> i64 { x as i64 }\n";
        assert_eq!(rules(&lint_file(&file("core", src))), ["lossy-cast"]);
        let src2 = "fn g(n: usize) -> f64 { n as f64 }\n";
        assert_eq!(rules(&lint_file(&file("votetrust", src2))), ["lossy-cast"]);
    }

    #[test]
    fn cast_outside_audited_crates_passes() {
        let src = "fn f(n: u64) -> u32 { n as u32 }\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    #[test]
    fn cast_in_test_module_passes() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(n: u64) -> u32 { n as u32 }\n}\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn use_rename_as_is_not_a_cast() {
        let src = "use std::collections::BTreeMap as Map;\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn try_from_conversion_passes() {
        let src = "fn f(n: u64) -> u32 { u32::try_from(n).expect(\"node ids fit u32\") }\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn cast_pragma_requires_a_reason() {
        let with_reason =
            "fn f(n: u32) -> usize { n as usize } // xtask-allow: lossy-cast: u32 widens into usize on all supported targets\n";
        assert!(lint_file(&file("kl", with_reason)).is_empty());

        let without_reason = "fn f(n: u32) -> usize { n as usize } // xtask-allow: lossy-cast\n";
        let v = lint_file(&file("kl", without_reason));
        assert_eq!(rules(&v), ["lossy-cast"]);
        assert!(v[0].message.contains("missing the range-invariant reason"));
    }

    // ---- obs-discipline -----------------------------------------------

    #[test]
    fn ad_hoc_clock_reads_are_flagged() {
        for src in [
            "fn f() { let t0 = std::time::Instant::now(); }\n",
            "fn f() { let t0 = Instant::now(); }\n",
            "fn f() { let t0 = SystemTime::now(); }\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(rules(&v), ["obs-discipline"], "{src:?}");
            assert!(v[0].message.contains("rejecto_obs"), "{src:?}");
        }
    }

    #[test]
    fn clock_reads_in_the_obs_and_bench_crates_are_exempt() {
        let src = "fn f() { let t0 = Instant::now(); }\n";
        for c in ["obs", "bench"] {
            assert!(lint_file(&file(c, src)).is_empty(), "{c}");
        }
    }

    #[test]
    fn clock_sanctioned_modules_may_read_the_clock() {
        let f = SourceFile {
            rel_path: "crates/kl/src/cancel.rs",
            crate_name: "kl",
            is_crate_root: false,
            text: "fn f() { let at = Instant::now(); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn clock_reads_in_test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let t0 = Instant::now(); }\n}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn obs_pragma_requires_a_justification() {
        let with_reason = "let t0 = Instant::now(); // xtask-allow: obs-discipline: coarse log throttle, never compared\n";
        assert!(lint_file(&file("core", with_reason)).is_empty());

        let without_reason = "let t0 = Instant::now(); // xtask-allow: obs-discipline\n";
        let v = lint_file(&file("core", without_reason));
        assert_eq!(rules(&v), ["obs-discipline"]);
        assert!(v[0].message.contains("missing the justification"));
    }

    // ---- durable-io ---------------------------------------------------

    #[test]
    fn raw_persistent_writes_are_flagged() {
        for src in [
            "fn f() { std::fs::write(\"out.json\", b\"x\").ok(); }\n",
            "fn f() { fs::write(\"out.json\", b\"x\").ok(); }\n",
            "fn f() { let w = std::fs::File::create(\"out.json\"); }\n",
            "fn f() { let w = File::create(\"out.json\"); }\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(rules(&v), ["durable-io"], "{src:?}");
            assert!(v[0].message.contains("atomic_write"), "{src:?}");
        }
    }

    #[test]
    fn the_store_module_itself_may_use_raw_primitives() {
        let f = SourceFile {
            rel_path: "crates/core/src/store.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "fn f() { let w = File::create(\"t.tmp\"); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn the_root_package_cli_is_covered() {
        let f = SourceFile {
            rel_path: "src/cli/commands.rs",
            crate_name: "rejecto",
            is_crate_root: false,
            text: "fn f() { std::fs::write(\"m.json\", b\"x\").ok(); }\n",
        };
        assert_eq!(rules(&lint_file(&f)), ["durable-io"]);
    }

    #[test]
    fn xtask_and_test_code_may_write_raw() {
        let src = "fn f() { std::fs::write(\"report.json\", b\"x\").ok(); }\n";
        assert!(lint_file(&file("xtask", src)).is_empty());

        let in_test_mod = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::fs::write(\"t\", b\"x\").ok(); }\n}\n";
        assert!(lint_file(&file("core", in_test_mod)).is_empty());

        let tests_dir = SourceFile {
            rel_path: "crates/core/tests/store.rs",
            crate_name: "core",
            is_crate_root: false,
            text: src,
        };
        assert!(lint_file(&tests_dir).is_empty());
    }

    #[test]
    fn durable_io_pragma_requires_a_reason() {
        let with_reason = "std::fs::write(\"scratch\", b\"x\").ok(); // xtask-allow: durable-io: droppable scratch file, rebuilt on every run\n";
        assert!(lint_file(&file("core", with_reason)).is_empty());

        let without_reason = "std::fs::write(\"scratch\", b\"x\").ok(); // xtask-allow: durable-io\n";
        let v = lint_file(&file("core", without_reason));
        assert_eq!(rules(&v), ["durable-io"]);
        assert!(v[0].message.contains("missing the justification"));
    }

    #[test]
    fn non_write_fs_calls_and_mentions_pass() {
        for src in [
            "fn f() { let s = std::fs::read_to_string(\"a\"); }\n",
            "fn f() { std::fs::create_dir_all(\"d\").ok(); }\n",
            "fn f() { let w = File::open(\"a\"); }\n",
            "// never call fs::write here\nfn f() {}\n",
            "fn f() { let pats = [\"fs::write\", \"File::create\"]; }\n",
        ] {
            assert!(lint_file(&file("core", src)).is_empty(), "{src:?}");
        }
    }

    // ---- channel-discipline -------------------------------------------

    #[test]
    fn blocking_recv_in_dataflow_is_flagged() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }\n";
        let v = lint_file(&file("dataflow", src));
        assert_eq!(rules(&v), ["channel-discipline"]);
        assert!(v[0].message.contains("recv_timeout"));
    }

    #[test]
    fn recv_timeout_passes() {
        let src = "fn f(rx: &Receiver<u32>, d: Duration) { let _ = rx.recv_timeout(d); }\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn recv_outside_channel_crates_passes() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn recv_with_pragma_is_allowed() {
        let src = "let _ = rx.recv(); // xtask-allow: channel-discipline: worker loop exits when the master hangs up\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn mutex_outside_sanctioned_modules_is_flagged() {
        let src = "use std::sync::Mutex;\n";
        let v = lint_file(&file("dataflow", src));
        assert_eq!(rules(&v), ["channel-discipline"]);
    }

    #[test]
    fn mutex_in_sanctioned_module_passes() {
        let f = SourceFile {
            rel_path: "crates/dataflow/src/cluster.rs",
            crate_name: "dataflow",
            is_crate_root: false,
            text: "use std::sync::Mutex;\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn mutex_outside_dataflow_passes() {
        let src = "use std::sync::Mutex;\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    // ---- dead-pragma --------------------------------------------------

    #[test]
    fn dead_pragma_is_flagged() {
        let src = "fn f() { let x = 1; } // xtask-allow: no-unwrap\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["dead-pragma"]);
        assert!(v[0].message.contains("suppresses no diagnostic"));
    }

    #[test]
    fn live_pragma_is_not_dead() {
        let src = "let x = opt.unwrap(); // xtask-allow: no-unwrap: static fixture\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    #[test]
    fn pragma_for_unknown_rule_is_flagged() {
        let src = "fn f() {} // xtask-allow: no-such-rule\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["dead-pragma"]);
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn pragma_on_the_wrong_line_is_dead_and_does_not_suppress() {
        let src = "// xtask-allow: no-unwrap\nlet x = opt.unwrap();\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(rules(&v), ["dead-pragma", "no-unwrap"]);
    }

    #[test]
    fn pragma_inside_string_literal_is_not_a_pragma() {
        let src = "let s = \"// xtask-allow: no-unwrap\";\n";
        assert!(lint_file(&file("rejection", src)).is_empty());
    }

    #[test]
    fn pragma_in_rule_exempt_region_is_dead() {
        // A no-panic pragma inside a test module: the rule never runs
        // there, so the pragma suppresses nothing and must go.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { panic!(\"t\"); } // xtask-allow: no-panic\n}\n";
        let v = lint_file(&file("core", src));
        assert_eq!(rules(&v), ["dead-pragma"]);
    }

    // ---- engine plumbing ----------------------------------------------

    #[test]
    fn violations_are_sorted_by_line() {
        let src = "fn a() { x.unwrap(); }\nfn b() { y.unwrap(); }\n";
        let v = lint_file(&file("rejection", src));
        assert_eq!(v.len(), 2);
        assert!(v[0].line < v[1].line);
    }

    #[test]
    fn pragma_reason_is_parsed() {
        let toks = lex("// xtask-allow: lossy-cast: gains fit i64 by construction\n");
        let ps = collect_pragmas(&toks);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].rule, "lossy-cast");
        assert_eq!(ps[0].reason.as_deref(), Some("gains fit i64 by construction"));
    }

    #[test]
    fn pragma_without_reason_parses_with_none() {
        let toks = lex("// xtask-allow: no-panic\n");
        let ps = collect_pragmas(&toks);
        assert_eq!(ps[0].rule, "no-panic");
        assert_eq!(ps[0].reason, None);
    }

    #[test]
    fn pragma_line_inside_block_comment_is_the_marker_line() {
        let toks = lex("/* spanning\n   xtask-allow: no-panic: here\n*/\n");
        let ps = collect_pragmas(&toks);
        assert_eq!(ps[0].line, 2);
    }
}
