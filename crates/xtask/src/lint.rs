//! The source-scanning lint pass behind `cargo xtask check`.
//!
//! Six rules, all enforcing the determinism-and-robustness contract the
//! reproduction depends on (DESIGN.md "Static analysis & invariants"):
//!
//! 1. **no-unwrap** — library crates may not call `.unwrap()`; failures
//!    must surface either as `Result`s or as `.expect("<invariant>")`
//!    with a message long enough to actually state the invariant.
//! 2. **no-unseeded-rng** — `thread_rng()` draws from OS entropy and
//!    destroys run-to-run reproducibility; every RNG in the pipeline must
//!    be seeded (`ChaCha8Rng::seed_from_u64`). The vendored `rand` stub
//!    does not even provide `thread_rng`, so this rule guards against a
//!    future re-introduction when real crates.io access returns.
//! 3. **no-hash-collections** — the deterministic kernels (`socialgraph`,
//!    `kl`, `core`) may not use `std::collections::HashMap`/`HashSet` at
//!    all: iteration order is hasher-seed-dependent, and a single ordered
//!    scan leaking into community detection or a KL pass silently breaks
//!    byte-for-byte reproducibility. Use `BTreeMap`/`BTreeSet` or sorted
//!    `Vec`s.
//! 4. **forbid-unsafe** — every crate root must carry
//!    `#![forbid(unsafe_code)]`.
//! 5. **no-panic** — library *runtime* paths (the `/src/` trees of the
//!    [`NO_UNWRAP_CRATES`], outside `#[cfg(test)]` modules and the
//!    dedicated invariants modules) may not call `panic!`, `todo!`, or
//!    `unimplemented!`: a worker panic used to take down the whole sweep
//!    pool, and even now that the pool confines panics per slot, the
//!    structured `RuntimeError` path is the supported way to fail.
//!    `unreachable!` is allowed only with a message long enough to state
//!    *why* the arm is impossible (same bar as `.expect`). Deliberate
//!    panics (the fault-injection trigger, invariant checkers) opt out
//!    with the pragma or live in exempt modules. The [`NO_ASSERT_CRATES`]
//!    additionally ban `assert!` outright in runtime paths
//!    (`debug_assert!` stays allowed — it vanishes in release builds):
//!    the distributed runtime's whole contract is *degrade, don't abort*,
//!    and a release-mode assert is an abort.
//! 6. **no-ad-hoc-threads** — thread spawning is confined to the
//!    designated pool/cluster modules ([`THREAD_POOL_MODULES`]). Ad-hoc
//!    concurrency is where nondeterminism sneaks in: a completion-order
//!    reduction or a shared mutable accumulator gives answers that vary
//!    with scheduling. The sanctioned modules funnel all parallelism
//!    through index-slotted, order-independent reductions (the MAAR sweep
//!    pool, the dataflow cluster), which is what keeps `--determinism`
//!    meaningful on multicore runs.
//!
//! The scanner is line-based over comment-stripped text (no AST, no
//! dependencies). A line can opt out of a rule with an explicit pragma in
//! a trailing comment: `// xtask-allow: <rule-name>`.

use std::fmt;

/// Crates (by directory name under `crates/`) subject to **no-unwrap**.
/// The binary crates (`rejecto` itself, `bench`'s experiment bins) may
/// still unwrap at the top level where a panic is an acceptable exit.
pub const NO_UNWRAP_CRATES: &[&str] = &[
    "socialgraph",
    "kl",
    "rejection",
    "core",
    "votetrust",
    "sybilrank",
    "eval",
    "dataflow",
];

/// Crates whose kernels must stay free of hash collections entirely.
pub const NO_HASH_CRATES: &[&str] = &["socialgraph", "kl", "core"];

/// Crates whose runtime paths may not use `assert!` at all (**no-panic**):
/// the distributed runtime must degrade through the `ClusterError` /
/// `RuntimeError` taxonomy, never abort. `debug_assert!` is exempt; the
/// `debug-invariants` feature and the invariants modules carry the
/// release-strength checks.
pub const NO_ASSERT_CRATES: &[&str] = &["dataflow"];

/// Crates exempt from **no-unseeded-rng**: `bench` measures wall-clock
/// behavior and may randomize; `xtask` holds this linter's own fixtures.
pub const RNG_EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

/// The only first-party modules allowed to spawn OS threads
/// (**no-ad-hoc-threads**). Everything else must route parallelism
/// through these: `core/pool.rs` is the deterministic MAAR-sweep worker
/// pool; the `dataflow` pair is the scoped map/reduce substrate and the
/// master/worker cluster. Repo-relative paths.
pub const THREAD_POOL_MODULES: &[&str] = &[
    "crates/core/src/pool.rs",
    "crates/dataflow/src/cluster.rs",
    "crates/dataflow/src/rdd.rs",
];

/// Crates exempt from **no-ad-hoc-threads**: `xtask` holds this linter's
/// own pattern list and fixtures, whose string literals would otherwise
/// flag themselves (the scanner keeps string contents when stripping
/// comments).
pub const THREAD_EXEMPT_CRATES: &[&str] = &["xtask"];

/// Minimum `.expect("...")` message length that can plausibly state an
/// invariant ("fixture parses", "sweep is non-empty", ...).
pub const MIN_EXPECT_MESSAGE: usize = 8;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name, as accepted by `xtask-allow:`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A source file plus the workspace context the rules key on.
#[derive(Debug, Clone, Copy)]
pub struct SourceFile<'a> {
    /// Repo-relative path, e.g. `crates/kl/src/bucket.rs`.
    pub rel_path: &'a str,
    /// Directory name under `crates/`, or `"rejecto"` for the root package.
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`lib.rs` / `main.rs`).
    pub is_crate_root: bool,
    /// File contents.
    pub text: &'a str,
}

/// Strips `//` line comments and `/* */` block comments while preserving
/// the line structure (every stripped character that is not a newline
/// becomes a space, so columns and line numbers survive). String literals
/// are respected: comment markers inside them do not start a comment, and
/// string *contents* are kept, since the rules target code tokens that
/// would not normally appear quoted in this workspace.
pub fn strip_comments(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        Str,
        Char,
        Line,
        Block(usize),
    }
    let mut out = String::with_capacity(src.len());
    let mut state = State::Code;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match (c, next) {
                ('/', Some('/')) => {
                    state = State::Line;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                ('/', Some('*')) => {
                    state = State::Block(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                ('"', _) => {
                    state = State::Str;
                    out.push(c);
                }
                ('\'', _) => {
                    // Char literal or lifetime; treat as a literal only
                    // when it closes within a few chars ('a' / '\n').
                    let closes = bytes.get(i + 2) == Some(&'\'')
                        || (bytes.get(i + 1) == Some(&'\\') && bytes.get(i + 3) == Some(&'\''));
                    if closes {
                        state = State::Char;
                    }
                    out.push(c);
                }
                _ => out.push(c),
            },
            State::Str => {
                out.push(c);
                if c == '\\' {
                    if let Some(n) = next {
                        out.push(n);
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    state = State::Code;
                }
            }
            State::Char => {
                out.push(c);
                if c == '\\' {
                    if let Some(n) = next {
                        out.push(n);
                        i += 2;
                        continue;
                    }
                } else if c == '\'' {
                    state = State::Code;
                }
            }
            State::Line => {
                if c == '\n' {
                    out.push('\n');
                    state = State::Code;
                } else {
                    out.push(' ');
                }
            }
            State::Block(depth) => match (c, next) {
                ('*', Some('/')) => {
                    out.push_str("  ");
                    i += 2;
                    state = if depth == 1 { State::Code } else { State::Block(depth - 1) };
                    continue;
                }
                ('/', Some('*')) => {
                    out.push_str("  ");
                    i += 2;
                    state = State::Block(depth + 1);
                    continue;
                }
                ('\n', _) => out.push('\n'),
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Whether the *raw* line carries an `xtask-allow:` pragma for `rule`.
fn allowed(raw_line: &str, rule: &str) -> bool {
    raw_line
        .split("xtask-allow:")
        .nth(1)
        .is_some_and(|rest| rest.trim_start().starts_with(rule))
}

/// Scans one `.expect(` call starting at `idx` (pointing at `.expect(`)
/// and returns the literal message if the argument is a plain string
/// literal, `None` for computed messages (which the rule lets through —
/// a `format!` invariant message is fine).
fn expect_literal(stripped_line: &str, idx: usize) -> Option<&str> {
    string_literal_arg(&stripped_line[idx + ".expect(".len()..])
}

/// The leading string literal of a macro/call argument list (`rest` starts
/// right after the opening parenthesis); `None` when the first argument is
/// not a plain string literal.
fn string_literal_arg(rest: &str) -> Option<&str> {
    let after = rest.trim_start();
    let body = after.strip_prefix('"')?;
    let end = body.find('"')?;
    Some(&body[..end])
}

/// Whether the line invokes `assert!` proper: an `assert!(` occurrence
/// whose preceding character is not part of an identifier, which excludes
/// `debug_assert!(` (and cannot match `assert_eq!`/`assert_ne!`, which do
/// not contain the `assert!(` token at all).
fn contains_bare_assert(stripped_line: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = stripped_line[start..].find("assert!(") {
        let idx = start + pos;
        let preceded_by_ident = idx > 0
            && stripped_line[..idx]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded_by_ident {
            return true;
        }
        start = idx + "assert!(".len();
    }
    false
}

/// The 0-based line of the first `#[cfg(test)]` *module* (the attribute
/// followed by a `mod` item), after which the **no-panic** rule stops:
/// tests panic on purpose. A `#[cfg(test)]` on a lone helper method does
/// not end the scan.
fn test_module_start(stripped: &str) -> usize {
    let lines: Vec<&str> = stripped.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            let follows_mod = lines[i + 1..]
                .iter()
                .map(|l| l.trim_start())
                .find(|l| !l.is_empty())
                .is_some_and(|l| l.starts_with("mod ") || l.starts_with("pub mod "));
            if follows_mod {
                return i;
            }
        }
    }
    usize::MAX
}

/// Runs every applicable rule over one file.
pub fn lint_file(f: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let stripped = strip_comments(f.text);
    let raw_lines: Vec<&str> = f.text.lines().collect();

    let unwrap_banned = NO_UNWRAP_CRATES.contains(&f.crate_name);
    let hash_banned = NO_HASH_CRATES.contains(&f.crate_name);
    let rng_banned = !RNG_EXEMPT_CRATES.contains(&f.crate_name);
    let threads_banned = !THREAD_POOL_MODULES.contains(&f.rel_path)
        && !THREAD_EXEMPT_CRATES.contains(&f.crate_name);
    // no-panic covers library *runtime* paths only: `/src/` trees of the
    // no-unwrap crates, minus the invariants modules (whose whole job is
    // panicking on corrupted state) and everything from the first
    // `#[cfg(test)] mod` down.
    let panic_banned = unwrap_banned
        && f.rel_path.contains("/src/")
        && !f.rel_path.contains("invariants");
    let assert_banned = panic_banned && NO_ASSERT_CRATES.contains(&f.crate_name);
    let test_start = if panic_banned { test_module_start(&stripped) } else { 0 };

    for (lineno0, line) in stripped.lines().enumerate() {
        let raw = raw_lines.get(lineno0).copied().unwrap_or("");
        let line_no = lineno0 + 1;

        if unwrap_banned && line.contains(".unwrap()") && !allowed(raw, "no-unwrap") {
            out.push(Violation {
                file: f.rel_path.to_string(),
                line: line_no,
                rule: "no-unwrap",
                message: "`.unwrap()` in a library crate; return a Result or use \
                          `.expect(\"<invariant>\")`"
                    .to_string(),
            });
        }
        if unwrap_banned && !allowed(raw, "no-unwrap") {
            let mut start = 0;
            while let Some(pos) = line[start..].find(".expect(") {
                let idx = start + pos;
                if let Some(msg) = expect_literal(line, idx) {
                    if msg.len() < MIN_EXPECT_MESSAGE {
                        out.push(Violation {
                            file: f.rel_path.to_string(),
                            line: line_no,
                            rule: "no-unwrap",
                            message: format!(
                                "`.expect(\"{msg}\")` message too weak to state an \
                                 invariant (< {MIN_EXPECT_MESSAGE} chars)"
                            ),
                        });
                    }
                }
                start = idx + ".expect(".len();
            }
        }
        if panic_banned && lineno0 < test_start && !allowed(raw, "no-panic") {
            for mac in ["panic!(", "todo!(", "unimplemented!("] {
                if line.contains(mac) {
                    out.push(Violation {
                        file: f.rel_path.to_string(),
                        line: line_no,
                        rule: "no-panic",
                        message: format!(
                            "`{}` in a library runtime path; fail through the \
                             structured RuntimeError taxonomy instead",
                            &mac[..mac.len() - 1]
                        ),
                    });
                }
            }
            if let Some(idx) = line.find("unreachable!(") {
                let arg = &line[idx + "unreachable!(".len()..];
                let weak = match string_literal_arg(arg) {
                    Some(msg) => msg.len() < MIN_EXPECT_MESSAGE,
                    // Bare `unreachable!()` is weak; a computed message
                    // (format!) is accepted, same as `.expect`.
                    None => arg.trim_start().starts_with(')'),
                };
                if weak {
                    out.push(Violation {
                        file: f.rel_path.to_string(),
                        line: line_no,
                        rule: "no-panic",
                        message: format!(
                            "`unreachable!` without a message stating why the arm \
                             is impossible (< {MIN_EXPECT_MESSAGE} chars)"
                        ),
                    });
                }
            }
            if assert_banned && contains_bare_assert(line) {
                out.push(Violation {
                    file: f.rel_path.to_string(),
                    line: line_no,
                    rule: "no-panic",
                    message: "`assert!` aborts release builds; the distributed \
                              runtime must degrade through ClusterError (use \
                              `debug_assert!` for invariants)"
                        .to_string(),
                });
            }
        }
        if rng_banned && line.contains("thread_rng") && !allowed(raw, "no-unseeded-rng") {
            out.push(Violation {
                file: f.rel_path.to_string(),
                line: line_no,
                rule: "no-unseeded-rng",
                message: "`thread_rng` is unseeded and breaks reproducibility; \
                          use `ChaCha8Rng::seed_from_u64`"
                    .to_string(),
            });
        }
        if threads_banned
            && ["thread::spawn", "thread::scope", "thread::Builder"]
                .iter()
                .any(|pat| line.contains(pat))
            && !allowed(raw, "no-ad-hoc-threads")
        {
            out.push(Violation {
                file: f.rel_path.to_string(),
                line: line_no,
                rule: "no-ad-hoc-threads",
                message: "ad-hoc thread spawning risks completion-order \
                          nondeterminism; route parallelism through a \
                          THREAD_POOL_MODULES member (core::pool, dataflow)"
                    .to_string(),
            });
        }
        if hash_banned
            && (line.contains("HashMap") || line.contains("HashSet"))
            && !allowed(raw, "no-hash-collections")
        {
            out.push(Violation {
                file: f.rel_path.to_string(),
                line: line_no,
                rule: "no-hash-collections",
                message: "hash collections have hasher-seeded iteration order; \
                          deterministic kernels must use BTreeMap/BTreeSet or \
                          sorted Vecs"
                    .to_string(),
            });
        }
    }

    if f.is_crate_root && !stripped.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            file: f.rel_path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file<'a>(crate_name: &'a str, text: &'a str) -> SourceFile<'a> {
        SourceFile { rel_path: "crates/test/src/x.rs", crate_name, is_crate_root: false, text }
    }

    #[test]
    fn unwrap_in_library_crate_is_flagged() {
        let src = "fn f() { let x = opt.unwrap(); }\n";
        let v = lint_file(&file("kl", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_outside_banned_crates_passes() {
        let src = "fn f() { let x = opt.unwrap(); }\n";
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_doc_is_ignored() {
        let src = "// calls .unwrap() internally\n/// like .unwrap()\nfn f() {}\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn unwrap_with_pragma_is_allowed() {
        let src = "let x = opt.unwrap(); // xtask-allow: no-unwrap\n";
        assert!(lint_file(&file("kl", src)).is_empty());
    }

    #[test]
    fn weak_expect_message_is_flagged() {
        let src = "let x = opt.expect(\"oops\");\n";
        let v = lint_file(&file("core", src));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("too weak"));
    }

    #[test]
    fn invariant_expect_message_passes() {
        let src = "let x = opt.expect(\"sweep is non-empty\");\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn computed_expect_message_passes() {
        let src = "let x = opt.expect(&format!(\"no {u}\"));\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn thread_rng_is_flagged_everywhere_but_exempt_crates() {
        let src = "let mut rng = rand::thread_rng();\n";
        let v = lint_file(&file("simulator", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unseeded-rng");
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_kernel_crates_only() {
        let src = "use std::collections::HashMap;\n";
        let v = lint_file(&file("socialgraph", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-hash-collections");
        assert!(lint_file(&file("eval", src)).is_empty());
    }

    #[test]
    fn hash_in_doc_comment_is_ignored() {
        let src = "//! never use HashMap here\nfn f() {}\n";
        assert!(lint_file(&file("socialgraph", src)).is_empty());
    }

    #[test]
    fn ad_hoc_thread_spawn_is_flagged() {
        for src in [
            "let h = std::thread::spawn(|| 1);\n",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n",
            "let b = std::thread::Builder::new();\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(v.len(), 1, "{src:?}");
            assert_eq!(v[0].rule, "no-ad-hoc-threads");
        }
    }

    #[test]
    fn thread_pool_modules_may_spawn() {
        let f = SourceFile {
            rel_path: "crates/core/src/pool.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "crossbeam::thread::scope(|s| { s.spawn(|| {}); });\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn thread_spawn_with_pragma_is_allowed() {
        let src = "std::thread::spawn(f); // xtask-allow: no-ad-hoc-threads\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn thread_mention_in_comment_is_ignored() {
        let src = "// never call thread::spawn here\nfn f() {}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn xtask_fixtures_are_thread_exempt() {
        let src = "let pats = [\"thread::spawn\", \"thread::scope\"];\n";
        assert!(lint_file(&file("xtask", src)).is_empty());
        assert_eq!(lint_file(&file("core", src)).len(), 1);
    }

    #[test]
    fn panic_in_library_runtime_path_is_flagged() {
        for src in [
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { todo!() }\n",
            "fn f() { unimplemented!() }\n",
        ] {
            let v = lint_file(&file("core", src));
            assert_eq!(v.len(), 1, "{src:?}");
            assert_eq!(v[0].rule, "no-panic");
        }
    }

    #[test]
    fn panic_outside_no_unwrap_crates_passes() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert!(lint_file(&file("bench", src)).is_empty());
    }

    #[test]
    fn panic_with_pragma_is_allowed() {
        let src = "panic!(\"injected fault\") // xtask-allow: no-panic\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn panic_below_the_test_module_passes() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { panic!(\"t\"); }\n}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn cfg_test_on_a_lone_item_does_not_end_the_scan() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn f() { panic!(\"boom\"); }\n";
        let v = lint_file(&file("core", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn invariants_modules_may_panic() {
        let f = SourceFile {
            rel_path: "crates/core/src/invariants.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "pub fn check() { panic!(\"corrupted bookkeeping\"); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn test_directories_may_panic() {
        let f = SourceFile {
            rel_path: "crates/core/tests/faults.rs",
            crate_name: "core",
            is_crate_root: false,
            text: "fn f() { panic!(\"assertion\"); }\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn bare_unreachable_is_flagged_but_messaged_unreachable_passes() {
        let bare = "fn f() { unreachable!() }\n";
        let v = lint_file(&file("dataflow", bare));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");

        let weak = "fn f() { unreachable!(\"no\") }\n";
        assert_eq!(lint_file(&file("dataflow", weak)).len(), 1);

        let messaged = "fn f() { unreachable!(\"retry loop returns or panics\") }\n";
        assert!(lint_file(&file("dataflow", messaged)).is_empty());

        let computed = "fn f() { unreachable!(\"state {s:?} impossible\") }\n";
        assert!(lint_file(&file("dataflow", computed)).is_empty());
    }

    #[test]
    fn assert_in_no_assert_crate_is_flagged() {
        let src = "fn f(n: usize) { assert!(n > 0, \"n must be positive\"); }\n";
        let v = lint_file(&file("dataflow", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");
        assert!(v[0].message.contains("degrade"));
    }

    #[test]
    fn debug_assert_in_no_assert_crate_passes() {
        let src = "fn f(n: usize) { debug_assert!(n > 0); }\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn assert_outside_no_assert_crates_passes() {
        let src = "fn f(n: usize) { assert!(n > 0, \"n must be positive\"); }\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn assert_with_pragma_is_allowed() {
        let src = "assert!(cap > 0, \"capacity\"); // xtask-allow: no-panic\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn assert_below_the_test_module_passes() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { assert!(true); }\n}\n";
        assert!(lint_file(&file("dataflow", src)).is_empty());
    }

    #[test]
    fn panic_mention_in_comment_is_ignored() {
        let src = "// a worker panic!(...) here would abort\nfn f() {}\n";
        assert!(lint_file(&file("core", src)).is_empty());
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let f = SourceFile {
            rel_path: "crates/test/src/lib.rs",
            crate_name: "votetrust",
            is_crate_root: true,
            text: "//! docs\npub fn f() {}\n",
        };
        let v = lint_file(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-unsafe");
    }

    #[test]
    fn crate_root_with_forbid_unsafe_passes() {
        let f = SourceFile {
            rel_path: "crates/test/src/lib.rs",
            crate_name: "votetrust",
            is_crate_root: true,
            text: "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        };
        assert!(lint_file(&f).is_empty());
    }

    #[test]
    fn strip_comments_preserves_line_numbers() {
        let src = "a /* x\ny */ b\n// c\nd\n";
        let stripped = strip_comments(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert_eq!(stripped.lines().nth(3), Some("d"));
    }

    #[test]
    fn comment_marker_inside_string_is_kept() {
        let src = "let url = \"https://example.com\"; let x = 1;\n";
        let stripped = strip_comments(src);
        assert!(stripped.contains("let x = 1;"));
    }
}
