//! The seeded chaos-soak harness behind `cargo xtask chaos`.
//!
//! Each seed expands — via [`rejecto_core::chaos`] — into a composite
//! multi-fault schedule (worker deaths × hangs × panics × torn writes ×
//! bit flips × tight deadlines × checkpoint I/O errors) plus an
//! adversarial simulator scenario, and is soaked at threads {1, 4} on the
//! local runtime and workers {1, 4} on the distributed one. Every run is
//! held to the invariant trio:
//!
//! 1. **Typed termination** — each leg ends in `Complete`, `Partial`, or
//!    a typed [`rejecto_core::RuntimeError`]; a panic escaping any leg
//!    fails the seed.
//! 2. **Byte-identity** — legs a plan classifies as comparable render
//!    byte-identically (locally always, cross-runtime unless the plan
//!    arms a persistent panic, never under a wall-clock deadline), and a
//!    kill-and-resume through the durable store reproduces the
//!    uninterrupted run byte-for-byte.
//! 3. **Metrics reconciliation** — `strip_timings` metrics documents are
//!    byte-equal across all compared legs.
//!
//! Some seeds additionally arm resource budgets (`max_suspect_frac`, a
//! tiny checkpoint byte ceiling) so the `ResourceExhausted` /
//! `Partial(ResourceBudget)` paths soak alongside the fault paths.
//!
//! Everything is a pure function of the seed base, so a failing seed
//! reproduces anywhere: the failure message carries the seed and the
//! fault spec (feed it to `detect --inject`).

use crate::determinism::{render_report, scratch, snappy_cluster};
use dataflow::DistributedDetector;
use rejecto_core::chaos::{ChaosPlan, ChaosProfile, ChaosRng};
use rejecto_core::{
    CheckpointStore, Completion, DetectionReport, InterruptReason, IterativeDetector,
    RejectoConfig, ResourceBudget, Seeds, StoreFaults, Termination,
};
use simulator::{Scenario, ScenarioConfig, SelfRejectionConfig, SimOutput};
use socialgraph::surrogates::Surrogate;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pinned seed base: seed `i` of a soak is `SEED_BASE + i`, so CI runs
/// and local reproductions always mean the same schedule by "seed 7".
pub const SEED_BASE: u64 = 0x7E57_5EED;

const THREAD_COUNTS: [usize; 2] = [1, 4];
const WORKER_COUNTS: [usize; 2] = [1, 4];
/// Same scaled-down fixture family as the determinism harness: big enough
/// for several pruning rounds, small enough to soak many seeds.
const SCALE: f64 = 0.02;

/// Everything one seed produced, for the JSON artifact.
struct SeedRecord {
    seed: u64,
    spec: String,
    fakes: usize,
    self_rejection: bool,
    suspect_frac: Option<f64>,
    ckpt_limit: Option<u64>,
    local: Vec<String>,
    distributed: Vec<String>,
    compared_local: bool,
    compared_cross: bool,
    resume: Vec<String>,
}

/// One seed's scenario: parameters drawn from the seed's side stream so
/// the attack shape varies across seeds but never across runs.
fn simulate(seed: u64) -> (SimOutput, usize, bool) {
    let mut rng = ChaosRng::new(seed ^ 0x5CEA_A210);
    let fakes = 30 + usize::try_from(rng.below(31)).expect("fake count fits in usize");
    let self_rejection = rng.chance(1, 2);
    let host = Surrogate::Facebook.generate_scaled(seed, SCALE);
    let config = ScenarioConfig {
        num_fakes: fakes,
        self_rejection: self_rejection.then_some(SelfRejectionConfig {
            whitewashed: fakes / 2,
            requests_per_sender: 20,
            rejection_rate: 0.95,
        }),
        ..ScenarioConfig::default()
    };
    (Scenario::new(config).run(&host, seed), fakes, self_rejection)
}

fn completion_tag(report: &DetectionReport) -> String {
    match &report.completion {
        Completion::Complete => "complete".to_string(),
        Completion::Partial { reason, completed_rounds, .. } => {
            format!("partial:{reason:?}:{completed_rounds}")
        }
        other => format!("{other:?}"),
    }
}

/// Runs the whole soak. `Ok(summary)` when every seed upheld the trio.
pub fn run(seeds: u64, json_path: Option<&str>) -> Result<String, String> {
    if seeds == 0 {
        return Err("chaos: --seeds must be at least 1".to_string());
    }
    // Injected worker panics are *expected* inside the soak and absorbed by
    // the retry machinery; the default hook would spray a backtrace per
    // injection over the log. Escaped panics still fail their seed via
    // `catch_unwind` below, with the seed and fault spec in the message.
    let quiet = PanicHookGuard::install();
    let result = soak(seeds, json_path);
    drop(quiet);
    result
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Restores the pre-soak panic hook on drop, even when the soak errors.
struct PanicHookGuard {
    prior: Option<PanicHook>,
}

impl PanicHookGuard {
    fn install() -> Self {
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Self { prior: Some(prior) }
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        if let Some(prior) = self.prior.take() {
            std::panic::set_hook(prior);
        }
    }
}

fn soak(seeds: u64, json_path: Option<&str>) -> Result<String, String> {
    let profile = ChaosProfile::default();
    let mut records = Vec::new();
    let mut legs = 0usize;
    let mut typed_errors = 0usize;
    let mut resumes_checked = 0usize;
    let mut resumes_skipped = 0usize;
    let mut deadline_plans = 0usize;

    for i in 0..seeds {
        let seed = SEED_BASE + i;
        let plan = ChaosPlan::generate(seed, &profile);
        let spec = plan.spec();
        let ctx = format!("chaos seed {seed} (faults `{spec}`)");
        if plan.has_deadline() {
            deadline_plans += 1;
        }

        let (sim, fakes, self_rejection) = simulate(seed);
        let termination = Termination::SuspectBudget(fakes);

        // A third of the seeds also arm the deterministic suspect-fraction
        // budget; every eighth arms a checkpoint byte ceiling far below any
        // real frame so the store's refusal path soaks too.
        let mut rng = ChaosRng::new(seed ^ 0xB0D6_E7ED);
        let suspect_frac = rng.chance(1, 3).then(|| 0.05 + (rng.below(30) as f64) / 100.0);
        let ckpt_limit = rng.chance(1, 8).then(|| 24 + rng.below(40));
        let resources = ResourceBudget { max_suspect_frac: suspect_frac, ..ResourceBudget::unlimited() };

        let config = |threads: usize| RejectoConfig {
            threads,
            faults: plan.faults.clone(),
            resources,
            ..RejectoConfig::default()
        };

        // --- Invariant 1 legs: local threads {1,4} --------------------
        let mut local_renders: Vec<String> = Vec::new();
        let mut local_metrics: Vec<String> = Vec::new();
        let mut local_tags: Vec<String> = Vec::new();
        for threads in THREAD_COUNTS {
            legs += 1;
            let cfg = config(threads);
            let graph = &sim.graph;
            let obs = rejecto_obs::Obs::default();
            let obs_leg = obs.clone();
            let report = catch_unwind(AssertUnwindSafe(move || {
                let mut det = IterativeDetector::new(cfg);
                det.set_obs(obs_leg);
                det.detect(graph, &Seeds::default(), termination)
            }))
            .map_err(|_| format!("{ctx}: local threads={threads} PANICKED"))?;
            local_tags.push(completion_tag(&report));
            local_renders.push(render_report(&report));
            local_metrics.push(rejecto_obs::strip_timings(&obs.to_json()));
        }
        if plan.locally_comparable() {
            if local_renders[0] != local_renders[1] {
                return Err(format!(
                    "{ctx}: local threads=1 vs threads=4 reports differ\n--- t=1 ---\n{}\
                     --- t=4 ---\n{}",
                    local_renders[0], local_renders[1]
                ));
            }
            if local_metrics[0] != local_metrics[1] {
                return Err(format!(
                    "{ctx}: local stripped metrics differ across thread counts\n\
                     --- t=1 ---\n{}\n--- t=4 ---\n{}",
                    local_metrics[0], local_metrics[1]
                ));
            }
        }

        // --- Distributed legs: workers {1,4} --------------------------
        let mut dist_tags: Vec<String> = Vec::new();
        for workers in WORKER_COUNTS {
            legs += 1;
            let cfg = config(0);
            let graph = &sim.graph;
            let obs = rejecto_obs::Obs::default();
            let obs_leg = obs.clone();
            let result = catch_unwind(AssertUnwindSafe(move || {
                let mut det = DistributedDetector::new(snappy_cluster(workers), cfg);
                det.set_obs(obs_leg);
                det.detect(graph, &Seeds::default(), termination)
            }))
            .map_err(|_| format!("{ctx}: distributed workers={workers} PANICKED"))?;
            match result {
                Ok(report) => {
                    dist_tags.push(completion_tag(&report));
                    if plan.cross_runtime_comparable() {
                        let rendered = render_report(&report);
                        if rendered != local_renders[0] {
                            return Err(format!(
                                "{ctx}: distributed workers={workers} report differs from \
                                 the local run\n--- distributed ---\n{rendered}\
                                 --- local ---\n{}",
                                local_renders[0]
                            ));
                        }
                        let stripped = rejecto_obs::strip_timings(&obs.to_json());
                        if stripped != local_metrics[0] {
                            return Err(format!(
                                "{ctx}: distributed workers={workers} stripped metrics \
                                 differ from the local run\n--- distributed ---\n{stripped}\n\
                                 --- local ---\n{}",
                                local_metrics[0]
                            ));
                        }
                    }
                }
                Err(e) => {
                    // A typed error is a legitimate soak outcome (e.g. a
                    // death schedule outliving the respawn budget).
                    typed_errors += 1;
                    dist_tags.push(format!("error:{e}"));
                }
            }
        }

        // --- Kill-and-resume through the durable store ----------------
        let mut resume_tags: Vec<String> = Vec::new();
        if plan.resume_comparable() {
            for (leg, threads) in THREAD_COUNTS.into_iter().enumerate() {
                let tag = resume_leg(
                    &ctx,
                    &sim,
                    termination,
                    &config(threads),
                    ckpt_limit,
                    seed,
                    threads,
                    &local_renders[leg],
                )?;
                if tag == "ok" {
                    resumes_checked += 1;
                } else {
                    resumes_skipped += 1;
                }
                resume_tags.push(tag);
            }
        } else {
            resume_tags.push("skipped:not-resume-comparable".to_string());
            resumes_skipped += 1;
        }

        records.push(SeedRecord {
            seed,
            spec,
            fakes,
            self_rejection,
            suspect_frac,
            ckpt_limit,
            local: local_tags,
            distributed: dist_tags,
            compared_local: plan.locally_comparable(),
            compared_cross: plan.cross_runtime_comparable(),
            resume: resume_tags,
        });
    }

    if let Some(path) = json_path {
        std::fs::write(path, render_records(&records))
            .map_err(|e| format!("chaos: cannot write {path}: {e}"))?;
    }

    Ok(format!(
        "chaos: OK — {seeds} seed(s) soaked at threads=1/4 and workers=1/4 \
         ({legs} legs, 0 panics); every leg terminated in \
         Complete/Partial/typed-error ({typed_errors} typed error(s) \
         absorbed); {resumes_checked} kill-and-resume leg(s) byte-identical \
         to their uninterrupted runs ({resumes_skipped} skipped: deadline \
         plans, persistent panics, or degenerate fixtures); \
         {deadline_plans} deadline plan(s) soaked for termination only; \
         seed base {SEED_BASE:#x}"
    ))
}

/// One kill-and-resume leg: interrupt after two rounds writing checkpoint
/// generations through the durable store (with the plan's torn-write /
/// bit-flip mangles and any byte ceiling armed), resume from the newest
/// *valid* generation, and demand byte-identity with the uninterrupted
/// leg. Returns `"ok"` or a `skipped:` tag for degenerate fixtures.
#[allow(clippy::too_many_arguments)]
fn resume_leg(
    ctx: &str,
    sim: &SimOutput,
    termination: Termination,
    config: &RejectoConfig,
    ckpt_limit: Option<u64>,
    seed: u64,
    threads: usize,
    full_render: &str,
) -> Result<String, String> {
    let dir = scratch(&format!("chaos-{seed}-t{threads}"));
    let store = CheckpointStore::new(dir.join("run.ckpt"))
        .with_faults(StoreFaults::new(&config.faults))
        .with_limit(ckpt_limit);

    let mut halted_config = config.clone();
    halted_config.budget.max_rounds = Some(1);
    let graph = &sim.graph;
    let store_ref = &store;
    let halted = catch_unwind(AssertUnwindSafe(move || {
        let det = IterativeDetector::new(halted_config);
        let mut sink =
            |ckpt: &rejecto_core::Checkpoint| store_ref.save(ckpt).map_err(std::io::Error::other);
        det.detect_with_checkpoints(graph, &Seeds::default(), termination, &mut sink)
    }))
    .map_err(|_| format!("{ctx}: halted leg threads={threads} PANICKED"))?;

    // Only a round-budget interruption is a real "kill": anything else
    // (graph exhausted early, resource budget tripped inside the window)
    // means there is nothing left to resume into.
    let killed = matches!(
        halted.completion,
        Completion::Partial { reason: InterruptReason::RoundBudget, .. }
    );
    if !killed {
        let _ = std::fs::remove_dir_all(&dir);
        return Ok(format!("skipped:halted-{}", completion_tag(&halted)));
    }

    let resume = match CheckpointStore::new(dir.join("run.ckpt")).load_latest_valid() {
        Ok(resume) => resume,
        Err(e) => {
            // With a tiny byte ceiling or an all-generations mangle the
            // chain can be empty — a typed outcome, not a failure.
            let _ = std::fs::remove_dir_all(&dir);
            return Ok(format!("skipped:no-valid-generation:{e}"));
        }
    };

    let resume_config = config.clone();
    let checkpoint = resume.checkpoint;
    let resumed = catch_unwind(AssertUnwindSafe(move || {
        IterativeDetector::new(resume_config).resume(
            graph,
            &Seeds::default(),
            termination,
            &checkpoint,
        )
    }))
    .map_err(|_| format!("{ctx}: resume leg threads={threads} PANICKED"))?
    .map_err(|e| format!("{ctx}: resume threads={threads} rejected its own checkpoint: {e}"))?;

    let rendered = render_report(&resumed);
    let _ = std::fs::remove_dir_all(&dir);
    if rendered != full_render {
        return Err(format!(
            "{ctx}: kill-and-resume diverged at threads={threads}\n--- resumed ---\n\
             {rendered}--- uninterrupted ---\n{full_render}"
        ));
    }
    Ok("ok".to_string())
}

// --- JSON artifact (hand-rolled: xtask deliberately has no serde) -------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_list(items: &[String]) -> String {
    let rendered: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", rendered.join(", "))
}

fn render_records(records: &[SeedRecord]) -> String {
    let mut s = String::from("{\n  \"format\": \"rejecto-chaos/v1\",\n  \"seeds\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let frac = r
            .suspect_frac
            .map_or("null".to_string(), |f| format!("{f}"));
        let limit = r.ckpt_limit.map_or("null".to_string(), |l| l.to_string());
        s.push_str(&format!(
            "\n    {{\"seed\": {}, \"spec\": {}, \"fakes\": {}, \"self_rejection\": {}, \
             \"suspect_frac\": {frac}, \"ckpt_limit\": {limit}, \"local\": {}, \
             \"distributed\": {}, \"compared_local\": {}, \"compared_cross\": {}, \
             \"resume\": {}}}",
            r.seed,
            json_str(&r.spec),
            r.fakes,
            r.self_rejection,
            json_str_list(&r.local),
            json_str_list(&r.distributed),
            r.compared_local,
            r.compared_cross,
            json_str_list(&r.resume),
        ));
    }
    if records.is_empty() {
        s.push_str("]\n}\n");
    } else {
        s.push_str("\n  ]\n}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_rendering_is_valid_shape() {
        let records = vec![SeedRecord {
            seed: 3,
            spec: "worker_hang@k=1".to_string(),
            fakes: 40,
            self_rejection: true,
            suspect_frac: Some(0.25),
            ckpt_limit: None,
            local: vec!["complete".to_string(), "complete".to_string()],
            distributed: vec!["complete".to_string(), "error:boom \"x\"".to_string()],
            compared_local: true,
            compared_cross: false,
            resume: vec!["ok".to_string()],
        }];
        let doc = render_records(&records);
        assert!(doc.contains("\"format\": \"rejecto-chaos/v1\""));
        assert!(doc.contains("\"spec\": \"worker_hang@k=1\""));
        assert!(doc.contains("\"suspect_frac\": 0.25"));
        assert!(doc.contains("\"ckpt_limit\": null"));
        assert!(doc.contains("error:boom \\\"x\\\""));
        assert!(render_records(&[]).contains("\"seeds\": []"));
    }

    /// A two-seed smoke soak: the real harness, small enough for the
    /// test suite. CI runs the full 16-seed soak via `cargo xtask chaos`.
    #[test]
    fn two_seed_soak_upholds_the_invariant_trio() {
        let summary = run(2, None).expect("two-seed soak fails");
        assert!(summary.contains("chaos: OK"), "{summary}");
        assert!(summary.contains("0 panics"), "{summary}");
    }
}
