//! The in-process determinism harness behind `cargo xtask check
//! --determinism`.
//!
//! Byte-for-byte reproducibility from a fixed seed is a standing contract
//! of this repo (every figure in EXPERIMENTS.md depends on it). The
//! harness runs the full simulate → detect pipeline **twice from the same
//! seed within one process** and diffs every artifact byte-for-byte:
//!
//! * the serialized rejection-augmented graph (`.rjg` bytes), and
//! * a canonical rendering of the detection report, with acceptance rates
//!   and `k` values compared by `f64::to_bits` so `-0.0` vs `0.0` or NaN
//!   payload differences cannot hide behind display rounding.
//!
//! Running in-process (rather than shelling out to the CLI twice) is what
//! makes this a *lint-grade* check: it catches nondeterminism introduced
//! by allocator-address-keyed containers, leftover `HashMap` iteration, or
//! unseeded randomness even when the OS would happily hand both CLI runs
//! the same ASLR layout.

use dataflow::{ClusterConfig, DistributedDetector};
use rejecto_core::{
    Checkpoint, CheckpointStore, Completion, DetectionReport, FaultPlan, IterativeDetector,
    RejectoConfig, Seeds, StoreFaults, Termination,
};
use rejection::io::write_augmented;
use simulator::{Scenario, ScenarioConfig, SelfRejectionConfig, SimOutput};
use socialgraph::surrogates::Surrogate;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Scaled-down copy of the CLI's default simulate flow: Facebook surrogate
/// at 2% scale, 60 fakes — large enough to exercise every pipeline stage
/// (multiple pruning rounds included), small enough for a second-scale run.
const SCALE: f64 = 0.02;
const FAKES: usize = 60;
const SEED: u64 = 7;

fn simulate() -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(SEED, SCALE);
    let config = ScenarioConfig { num_fakes: FAKES, ..ScenarioConfig::default() };
    Scenario::new(config).run(&host, SEED)
}

/// The self-rejection attack variant (Fig 14 shape): whitewashed fakes
/// spam legitimate users while sacrificed fakes absorb internal
/// rejections. Detection needs several productive pruning rounds to peel
/// the layers apart, which gives the durable store a real generation
/// chain to mangle and fall back through — the plain scenario collapses
/// in one productive round and would leave the fallback path unexercised.
fn simulate_self_rejection() -> SimOutput {
    let host = Surrogate::Facebook.generate_scaled(SEED, SCALE);
    let config = ScenarioConfig {
        num_fakes: FAKES,
        self_rejection: Some(SelfRejectionConfig {
            whitewashed: 30,
            requests_per_sender: 20,
            rejection_rate: 0.95,
        }),
        ..ScenarioConfig::default()
    };
    Scenario::new(config).run(&host, SEED)
}

fn graph_bytes(sim: &SimOutput) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    write_augmented(&sim.graph, &mut bytes)
        .map_err(|e| format!("serializing augmented graph: {e:?}"))?;
    Ok(bytes)
}

/// Canonical, bit-exact rendering of a detection report. The winning `k`
/// is an exact rational, rendered as `num/den`; acceptance rates are
/// compared by `f64::to_bits`.
pub(crate) fn render_report(report: &DetectionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rounds={}", report.rounds);
    for g in &report.groups {
        let _ = writeln!(
            out,
            "round={} k={}/{} ac_bits={:016x} nodes={:?}",
            g.round,
            g.k.num(),
            g.k.den(),
            g.acceptance_rate.to_bits(),
            g.nodes
        );
    }
    match &report.completion {
        Completion::Complete => {
            let _ = writeln!(out, "completion=complete");
        }
        Completion::Partial { completed_rounds, completed_k_indices, reason } => {
            let _ = writeln!(
                out,
                "completion=partial reason={reason:?} completed_rounds={completed_rounds} \
                 k_indices={completed_k_indices:?}"
            );
        }
        other => {
            let _ = writeln!(out, "completion={other:?}");
        }
    }
    for f in &report.failures {
        let _ = writeln!(out, "failure={f}");
    }
    out
}

/// The thread counts the parallel-sweep check exercises: the exact serial
/// code path vs a real worker pool.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn detect(sim: &SimOutput) -> DetectionReport {
    let det = IterativeDetector::new(RejectoConfig::default());
    det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
}

fn detect_with_threads(sim: &SimOutput, threads: usize) -> DetectionReport {
    let det = IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() });
    det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
}

/// Runs the harness; `Ok(summary)` when both runs are byte-identical.
pub fn run() -> Result<String, String> {
    let sim1 = simulate();
    let sim2 = simulate();
    let bytes1 = graph_bytes(&sim1)?;
    let bytes2 = graph_bytes(&sim2)?;
    if bytes1 != bytes2 {
        let at = bytes1
            .iter()
            .zip(&bytes2)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| bytes1.len().min(bytes2.len()));
        return Err(format!(
            "simulate is nondeterministic: serialized graphs differ \
             (lengths {} vs {}, first difference at byte {at})",
            bytes1.len(),
            bytes2.len()
        ));
    }

    let r1 = detect(&sim1);
    let r2 = detect(&sim2);
    let report1 = render_report(&r1);
    let report2 = render_report(&r2);
    if report1 != report2 {
        let diff_line = report1
            .lines()
            .zip(report2.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or(0);
        return Err(format!(
            "detect is nondeterministic: reports differ (first differing \
             line {diff_line})\n--- run 1 ---\n{report1}--- run 2 ---\n{report2}"
        ));
    }

    // Parallel-sweep check: the k-sweep worker pool must be invisible in
    // the artifacts. Render the report at each thread count and diff
    // against the default-config run above (which uses auto threads), so
    // serial, fixed-pool, and auto-sized runs all agree byte-for-byte.
    for threads in THREAD_COUNTS {
        let rt = render_report(&detect_with_threads(&sim1, threads));
        if rt != report1 {
            let diff_line = rt
                .lines()
                .zip(report1.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or(0);
            return Err(format!(
                "parallel sweep is nondeterministic: threads={threads} report \
                 differs from the auto-threads report (first differing line \
                 {diff_line})\n--- threads={threads} ---\n{rt}--- auto ---\n{report1}"
            ));
        }
        kill_and_resume(&sim1, threads, &rt)?;
    }

    distributed_legs(&sim1)?;
    metrics_legs(&sim1)?;
    durable_store_legs()?;

    Ok(format!(
        "determinism: OK — {} nodes, {} graph bytes, {} detection rounds, \
         both runs byte-identical; k-sweep artifacts identical at \
         threads=1/4/auto; kill-and-resume byte-identical at threads=1/4 \
         (seed {SEED}); distributed reports byte-identical at workers=1/4 \
         incl. under an injected fault plan and through kill-and-resume; \
         metrics ({}) minus `timings` byte-identical at threads=1/4/auto \
         and workers=1/4 incl. under the fault plan; durable-store \
         fallback resumes (newest generation torn/bit-flipped) \
         byte-identical to the uninterrupted run at threads=1/4 and \
         workers=1/4, with fallback metrics agreeing across all legs",
        sim1.graph.num_nodes(),
        bytes1.len(),
        r1.rounds,
        rejecto_obs::SCHEMA
    ))
}

/// A scratch directory for durable-store legs, unique per process and
/// leg; removed best-effort when the leg succeeds.
pub(crate) fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rejecto-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

/// Durable-store legs (DESIGN.md §14): with the **newest** checkpoint
/// generation mangled on disk (`torn_write@round=N` / `bit_flip@round=N`),
/// `load_latest_valid` must fall back to the surviving generation,
/// record the skip as a structured failure, and the resumed run must
/// render byte-identically to the uninterrupted run — locally at
/// threads=1/4 and through the distributed runtime at workers=1/4. The
/// `strip_timings` metrics of every fallback resume must also agree
/// byte-for-byte across all eight legs (the fallback counters are
/// volatile, so they strip with the timings).
fn durable_store_legs() -> Result<(), String> {
    let sim = simulate_self_rejection();
    let full = render_report(&detect(&sim));

    // Discover the generation chain once with a clean store run; the
    // newest generation is the one every leg below mangles.
    let newest = {
        let dir = scratch("gens");
        let store = CheckpointStore::new(dir.join("run.ckpt"));
        let mut sink = |ckpt: &Checkpoint| store.save(ckpt).map_err(std::io::Error::other);
        IterativeDetector::new(RejectoConfig::default()).detect_with_checkpoints(
            &sim.graph,
            &Seeds::default(),
            Termination::SuspectBudget(FAKES),
            &mut sink,
        );
        let resume = store
            .load_latest_valid()
            .map_err(|e| format!("clean generation chain unreadable: {e}"))?;
        let _ = std::fs::remove_dir_all(&dir);
        resume.checkpoint.rounds
    };
    if newest < 2 {
        return Err(format!(
            "durable-store fixture degenerated: the self-rejection scenario \
             produced only {newest} checkpoint generation(s), so falling back \
             past a mangled newest generation goes unexercised; grow the \
             scenario"
        ));
    }

    let mut reference_metrics: Option<String> = None;
    for form in ["torn_write", "bit_flip"] {
        let spec = format!("{form}@round={newest}");
        let plan =
            FaultPlan::parse(&spec).map_err(|e| format!("fault spec rejected: {e}"))?;

        for threads in THREAD_COUNTS {
            let dir = scratch(&format!("local-{threads}-{form}"));
            let store = CheckpointStore::new(dir.join("run.ckpt"))
                .with_faults(StoreFaults::new(&plan));
            let mut sink =
                |ckpt: &Checkpoint| store.save(ckpt).map_err(std::io::Error::other);
            IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() })
                .detect_with_checkpoints(
                    &sim.graph,
                    &Seeds::default(),
                    Termination::SuspectBudget(FAKES),
                    &mut sink,
                );
            let rendered = fallback_resume_leg(
                &dir,
                &format!("{spec} threads={threads}"),
                &mut reference_metrics,
                |resume, obs| {
                    let mut det = IterativeDetector::new(RejectoConfig {
                        threads,
                        ..RejectoConfig::default()
                    });
                    det.set_obs(obs.clone());
                    det.resume(
                        &sim.graph,
                        &Seeds::default(),
                        Termination::SuspectBudget(FAKES),
                        &resume.checkpoint,
                    )
                    .map_err(|e| e.to_string())
                },
            )?;
            if rendered != full {
                return Err(format!(
                    "durable-store fallback diverged: {spec} threads={threads} \
                     resumed report differs from the uninterrupted run\n\
                     --- resumed ---\n{rendered}--- uninterrupted ---\n{full}"
                ));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        for workers in WORKER_COUNTS {
            let dir = scratch(&format!("dist-{workers}-{form}"));
            let store = CheckpointStore::new(dir.join("run.ckpt"))
                .with_faults(StoreFaults::new(&plan));
            let mut sink =
                |ckpt: &Checkpoint| store.save(ckpt).map_err(std::io::Error::other);
            DistributedDetector::new(snappy_cluster(workers), RejectoConfig::default())
                .detect_with_checkpoints(
                    &sim.graph,
                    &Seeds::default(),
                    Termination::SuspectBudget(FAKES),
                    &mut sink,
                )
                .map_err(|e| {
                    format!("distributed durable-store leg failed at workers={workers}: {e}")
                })?;
            let rendered = fallback_resume_leg(
                &dir,
                &format!("{spec} workers={workers}"),
                &mut reference_metrics,
                |resume, obs| {
                    let mut det = DistributedDetector::new(
                        snappy_cluster(workers),
                        RejectoConfig::default(),
                    );
                    det.set_obs(obs.clone());
                    det.resume(
                        &sim.graph,
                        &Seeds::default(),
                        Termination::SuspectBudget(FAKES),
                        &resume.checkpoint,
                    )
                    .map_err(|e| e.to_string())
                },
            )?;
            if rendered != full {
                return Err(format!(
                    "durable-store fallback diverged: {spec} workers={workers} \
                     resumed report differs from the uninterrupted run\n\
                     --- resumed ---\n{rendered}--- uninterrupted ---\n{full}"
                ));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    Ok(())
}

/// Shared tail of one durable-store leg: resume from the mangled stem
/// through `load_latest_valid`, demand a recorded fallback, run the
/// continuation the caller provides, and fold this leg's stripped metrics
/// into the cross-leg byte-comparison. Returns the resumed report's
/// canonical rendering.
fn fallback_resume_leg(
    dir: &std::path::Path,
    leg: &str,
    reference_metrics: &mut Option<String>,
    run: impl FnOnce(&rejecto_core::StoreResume, &rejecto_obs::Obs) -> Result<DetectionReport, String>,
) -> Result<String, String> {
    let obs = rejecto_obs::Obs::default();
    let reader = CheckpointStore::new(dir.join("run.ckpt")).with_obs(obs.clone());
    let resume = reader
        .load_latest_valid()
        .map_err(|e| format!("{leg}: fallback resume failed outright: {e}"))?;
    if !resume.fell_back() {
        return Err(format!(
            "{leg}: the mangled newest generation was not skipped (resume \
             read {} with no recorded fallback)",
            resume.path.display()
        ));
    }
    if resume.skipped.len() != 1 {
        return Err(format!(
            "{leg}: expected exactly one recorded skip, got {:?}",
            resume.skipped
        ));
    }
    let report = run(&resume, &obs).map_err(|e| format!("{leg}: resume failed: {e}"))?;

    let stripped = rejecto_obs::strip_timings(&obs.to_json());
    if stripped.contains("ckpt/") {
        return Err(format!(
            "{leg}: fallback counters leaked into the deterministic metrics \
             section (they must be volatile):\n{stripped}"
        ));
    }
    match reference_metrics {
        None => *reference_metrics = Some(stripped),
        Some(reference) if *reference != stripped => {
            return Err(format!(
                "{leg}: fallback metrics differ across legs\n--- this leg ---\n\
                 {stripped}\n--- reference ---\n{reference}"
            ));
        }
        Some(_) => {}
    }
    Ok(render_report(&report))
}

/// Observability determinism (DESIGN.md §13): everything the metrics
/// document records outside its `timings` section — counters, spans,
/// histograms — must be byte-invariant to thread count, worker count,
/// and any absorbed fault plan. [`rejecto_obs::strip_timings`] over the
/// full rendering is exactly what CI byte-diffs on collected artifacts,
/// so that is the comparison run here too.
fn metrics_legs(sim: &SimOutput) -> Result<(), String> {
    let local = |threads: usize| -> String {
        let mut det =
            IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() });
        let obs = rejecto_obs::Obs::default();
        det.set_obs(obs.clone());
        det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES));
        rejecto_obs::strip_timings(&obs.to_json())
    };

    // Auto-threads is the baseline; the textual strip must agree with the
    // structured deterministic rendering it claims to recover.
    let baseline = {
        let mut det = IterativeDetector::new(RejectoConfig::default());
        let obs = rejecto_obs::Obs::default();
        det.set_obs(obs.clone());
        det.detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES));
        let stripped = rejecto_obs::strip_timings(&obs.to_json());
        if stripped != obs.deterministic_json() {
            return Err(
                "strip_timings does not recover the deterministic metrics document".to_string()
            );
        }
        stripped
    };

    for threads in THREAD_COUNTS {
        let doc = local(threads);
        if doc != baseline {
            return Err(format!(
                "metrics are thread-count dependent: threads={threads} differs \
                 from auto\n--- threads={threads} ---\n{doc}\n--- auto ---\n{baseline}"
            ));
        }
    }

    for workers in WORKER_COUNTS {
        let mut clean_det =
            DistributedDetector::new(snappy_cluster(workers), RejectoConfig::default());
        let obs = rejecto_obs::Obs::default();
        clean_det.set_obs(obs.clone());
        clean_det
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
            .map_err(|e| format!("distributed metrics leg failed at workers={workers}: {e}"))?;
        let clean = rejecto_obs::strip_timings(&obs.to_json());
        if clean != baseline {
            return Err(format!(
                "metrics are runtime dependent: distributed workers={workers} \
                 differs from the local run\n--- workers={workers} ---\n{clean}\n\
                 --- local ---\n{baseline}"
            ));
        }

        let faulted_config = RejectoConfig {
            faults: FaultPlan::parse(
                "worker_death@fetch=3,worker_death@fetch=9:x2,worker_hang@k=2",
            )
            .map_err(|e| format!("fault spec rejected: {e}"))?,
            ..RejectoConfig::default()
        };
        let mut faulted_det = DistributedDetector::new(snappy_cluster(workers), faulted_config);
        let obs = rejecto_obs::Obs::default();
        faulted_det.set_obs(obs.clone());
        faulted_det
            .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
            .map_err(|e| format!("faulted metrics leg failed at workers={workers}: {e}"))?;
        let faulted = rejecto_obs::strip_timings(&obs.to_json());
        if faulted != baseline {
            return Err(format!(
                "fault recovery leaked into the metrics at workers={workers}\n\
                 --- faulted ---\n{faulted}\n--- failure-free ---\n{baseline}"
            ));
        }
    }
    Ok(())
}

/// The worker counts the distributed legs exercise: the degenerate
/// single-shard layout vs a real multi-shard cluster.
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// A cluster shape that keeps fault recovery fast in-harness: a tight
/// watchdog deadline and no respawn backoff. Correctness must not depend
/// on either knob — only wall time does.
pub(crate) fn snappy_cluster(workers: usize) -> ClusterConfig {
    ClusterConfig {
        num_workers: workers,
        request_deadline: Duration::from_millis(50),
        backoff_base: Duration::ZERO,
        ..ClusterConfig::default()
    }
}

fn detect_distributed(
    sim: &SimOutput,
    workers: usize,
    config: RejectoConfig,
) -> Result<DetectionReport, String> {
    DistributedDetector::new(snappy_cluster(workers), config)
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES))
        .map_err(|e| format!("distributed detect failed at workers={workers}: {e}"))
}

/// Distributed determinism: the report must be byte-invariant to (a) the
/// worker count, (b) any injected fault plan that leaves a survivor, and
/// (c) a kill-and-resume through the checkpoint wire format. All three
/// diffs use the same canonical rendering as the single-process legs.
fn distributed_legs(sim: &SimOutput) -> Result<(), String> {
    let baseline = render_report(&detect_distributed(sim, WORKER_COUNTS[0], RejectoConfig::default())?);

    for workers in WORKER_COUNTS {
        let rt = render_report(&detect_distributed(sim, workers, RejectoConfig::default())?);
        if rt != baseline {
            return Err(format!(
                "distributed sweep is worker-count dependent: workers={workers} \
                 report differs from workers={} \n--- workers={workers} ---\n{rt}\
                 --- baseline ---\n{baseline}",
                WORKER_COUNTS[0]
            ));
        }

        // Injected worker deaths (including a repeated-death schedule) and
        // a hung worker must be absorbed by respawn/rebalance without a
        // trace in the report.
        let faulted = RejectoConfig {
            faults: FaultPlan::parse(
                "worker_death@fetch=3,worker_death@fetch=9:x2,worker_hang@k=2",
            )
            .map_err(|e| format!("fault spec rejected: {e}"))?,
            ..RejectoConfig::default()
        };
        let rf = render_report(&detect_distributed(sim, workers, faulted)?);
        if rf != baseline {
            return Err(format!(
                "fault recovery leaked into the artifacts at workers={workers}: \
                 the faulted report differs from the failure-free report\n\
                 --- faulted ---\n{rf}--- failure-free ---\n{baseline}"
            ));
        }

        distributed_kill_and_resume(sim, workers, &baseline)?;
    }
    Ok(())
}

/// The distributed twin of [`kill_and_resume`]: halt after one pruning
/// round via the deterministic round budget, round-trip the checkpoint
/// through JSON, resume on a fresh cluster, and demand byte-identity with
/// the uninterrupted distributed run.
fn distributed_kill_and_resume(
    sim: &SimOutput,
    workers: usize,
    full_render: &str,
) -> Result<(), String> {
    let mut config = RejectoConfig::default();
    config.budget.max_rounds = Some(1);
    let halted = detect_distributed(sim, workers, config)?;
    if !halted.is_partial() {
        return Err(format!(
            "distributed kill-and-resume fixture degenerated: the \
             max_rounds=1 run at workers={workers} completed in one round, \
             so the resume path went unexercised; grow the scenario"
        ));
    }

    let json = Checkpoint::capture(&sim.graph, &halted).to_json();
    let restored = Checkpoint::from_json(&json).map_err(|e| {
        format!("distributed checkpoint JSON round-trip failed at workers={workers}: {e}")
    })?;
    let resumed = DistributedDetector::new(snappy_cluster(workers), RejectoConfig::default())
        .resume(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES), &restored)
        .map_err(|e| {
            format!("distributed resume rejected its own checkpoint at workers={workers}: {e}")
        })?;
    let rr = render_report(&resumed);
    if rr != full_render {
        let diff_line = rr
            .lines()
            .zip(full_render.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or(0);
        return Err(format!(
            "distributed kill-and-resume diverged at workers={workers}: \
             resumed report differs from the uninterrupted run (first \
             differing line {diff_line})\n--- resumed ---\n{rr}\
             --- uninterrupted ---\n{full_render}"
        ));
    }
    Ok(())
}

/// Kill-and-resume check: interrupt the run after one pruning round (the
/// deterministic `max_rounds` budget), serialize the checkpoint through
/// its JSON wire format, resume from the deserialized copy, and demand the
/// resumed report render byte-identically to the uninterrupted run at the
/// same thread count.
fn kill_and_resume(sim: &SimOutput, threads: usize, full_render: &str) -> Result<(), String> {
    let mut config = RejectoConfig { threads, ..RejectoConfig::default() };
    config.budget.max_rounds = Some(1);
    let halted = IterativeDetector::new(config)
        .detect(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES));
    if !halted.is_partial() {
        return Err(format!(
            "kill-and-resume fixture degenerated: the max_rounds=1 run at \
             threads={threads} completed in one round, so the resume path \
             went unexercised; grow the scenario"
        ));
    }

    let json = Checkpoint::capture(&sim.graph, &halted).to_json();
    let restored = Checkpoint::from_json(&json)
        .map_err(|e| format!("checkpoint JSON round-trip failed at threads={threads}: {e}"))?;
    let resumed = IterativeDetector::new(RejectoConfig { threads, ..RejectoConfig::default() })
        .resume(&sim.graph, &Seeds::default(), Termination::SuspectBudget(FAKES), &restored)
        .map_err(|e| format!("resume rejected its own checkpoint at threads={threads}: {e}"))?;
    let rr = render_report(&resumed);
    if rr != full_render {
        let diff_line = rr
            .lines()
            .zip(full_render.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or(0);
        return Err(format!(
            "kill-and-resume diverged at threads={threads}: resumed report \
             differs from the uninterrupted run (first differing line \
             {diff_line})\n--- resumed ---\n{rr}--- uninterrupted ---\n{full_render}"
        ));
    }
    Ok(())
}
