//! Repo-local task runner, invoked as `cargo xtask <command>` via the
//! alias in `.cargo/config.toml`.
//!
//! Commands:
//!
//! * `check` — run the token-level static-analysis pass ([`lint`], built
//!   on the hand-rolled lexer in [`lexer`]) over the workspace sources.
//! * `check --json` — emit the diagnostics as a JSON array on stdout
//!   (`{"file", "line", "rule", "message", "snippet"}` objects) for CI
//!   annotation; the human summary moves to stderr.
//! * `check --fix-dry-run` — additionally list mechanically fixable
//!   sites ([`fix`]), e.g. `partial_cmp(..).expect(..)` → `total_cmp`,
//!   without editing anything.
//! * `check --determinism` — additionally run the in-process determinism
//!   harness ([`determinism`]): simulate → detect twice from one seed,
//!   diff byte-for-byte.
//! * `chaos --seeds N [--json <path>]` — seeded chaos soak ([`chaos`]):
//!   expand each seed into a composite multi-fault schedule plus an
//!   adversarial scenario, run it at threads {1,4} and workers {1,4},
//!   and hold every leg to the typed-termination / byte-identity /
//!   metrics-reconciliation invariants.
//!
//! Exit code 0 means clean; 1 means violations (each printed as
//! `file:line: [rule] message`) or a determinism failure; 2 means usage
//! error. `--fix-dry-run` findings are informational and never affect
//! the exit code.

#![forbid(unsafe_code)]

mod chaos;
mod determinism;
mod fix;
mod lexer;
mod lint;

#[cfg(test)]
mod fixtures_test;

use lint::{SourceFile, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask check [--determinism] [--json] [--fix-dry-run]\n\
                     \x20      cargo xtask chaos [--seeds N] [--json <path>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let mut with_determinism = false;
            let mut json = false;
            let mut fix_dry_run = false;
            for flag in it {
                match flag {
                    "--determinism" => with_determinism = true,
                    "--json" => json = true,
                    "--fix-dry-run" => fix_dry_run = true,
                    other => {
                        eprintln!("unknown flag {other:?}; {USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            check(with_determinism, json, fix_dry_run)
        }
        Some("chaos") => {
            let mut seeds: u64 = 16;
            let mut json_path: Option<String> = None;
            loop {
                match it.next() {
                    Some("--seeds") => match it.next().map(str::parse) {
                        Some(Ok(n)) => seeds = n,
                        _ => {
                            eprintln!("--seeds needs an integer; {USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    Some("--json") => match it.next() {
                        Some(path) => json_path = Some(path.to_string()),
                        None => {
                            eprintln!("--json needs a path; {USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    Some(other) => {
                        eprintln!("unknown flag {other:?}; {USAGE}");
                        return ExitCode::from(2);
                    }
                    None => break,
                }
            }
            match chaos::run(seeds, json_path.as_deref()) {
                Ok(summary) => {
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(why) => {
                    eprintln!("chaos: FAILED — {why}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; {USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(with_determinism: bool, json: bool, fix_dry_run: bool) -> ExitCode {
    let root = repo_root();
    let mut failed = false;

    let sources = read_sources(&root);
    let violations = run_lints(&sources);
    let fixable: Vec<fix::FixCandidate> = if fix_dry_run {
        sources.iter().flat_map(|(rel, _, _, text)| fix::scan_file(rel, text)).collect()
    } else {
        Vec::new()
    };

    if json {
        println!("{}", render_json(&violations, fix_dry_run.then_some(&fixable)));
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    let summary_line = format!(
        "lint: {} — {} files scanned, {} violation(s)",
        if violations.is_empty() { "OK" } else { "FAILED" },
        sources.len(),
        violations.len()
    );
    if json {
        eprintln!("{summary_line}");
    } else {
        println!("{summary_line}");
    }
    failed |= !violations.is_empty();

    if fix_dry_run && !json {
        for c in &fixable {
            println!("{}:{}: {} → {}", c.file, c.line, c.found, c.suggestion);
        }
        println!("fix-dry-run: {} mechanically fixable site(s); nothing edited", fixable.len());
    }

    if with_determinism {
        match determinism::run() {
            Ok(summary) => eprintln_or_println(json, &summary),
            Err(why) => {
                eprintln_or_println(json, &format!("determinism: FAILED — {why}"));
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// In `--json` mode everything except the JSON document goes to stderr,
/// so stdout stays machine-parseable.
fn eprintln_or_println(json: bool, line: &str) {
    if json {
        eprintln!("{line}");
    } else {
        println!("{line}");
    }
}

/// The machine-readable diagnostics document. Hand-rolled (the xtask
/// crate deliberately has no serde dependency): an object with the
/// violation list and, under `--fix-dry-run`, the fixable sites.
fn render_json(violations: &[Violation], fixable: Option<&Vec<fix::FixCandidate>>) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(&v.file),
            v.line,
            json_str(v.rule),
            json_str(&v.message),
            json_str(&v.snippet),
        ));
    }
    if violations.is_empty() {
        s.push(']');
    } else {
        s.push_str("\n  ]");
    }
    if let Some(fixable) = fixable {
        s.push_str(",\n  \"fixable\": [");
        for (i, c) in fixable.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"found\": {}, \"suggestion\": {}}}",
                json_str(&c.file),
                c.line,
                json_str(&c.found),
                json_str(&c.suggestion),
            ));
        }
        if fixable.is_empty() {
            s.push(']');
        } else {
            s.push_str("\n  ]");
        }
    }
    s.push_str("\n}");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root: two levels above this crate's manifest dir.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Every first-party `.rs` file, as `(absolute path, crate name,
/// is_crate_root)`. Scans `crates/*/{src,tests,benches}` and the root
/// package's `src/`; `vendor/` (third-party stubs), `target/`, and the
/// lint fixture corpus (`crates/xtask/fixtures/`, deliberately full of
/// violations) are out of scope. Deterministic order (sorted walk).
fn collect_sources(root: &Path) -> Vec<(PathBuf, String, bool)> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir) {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .expect("crate directory has a utf-8 name")
            .to_string();
        for sub in ["src", "tests", "benches"] {
            walk_rs(&crate_dir.join(sub), &mut |path| {
                let is_root = sub == "src"
                    && path.parent() == Some(crate_dir.join("src").as_path())
                    && matches!(
                        path.file_name().and_then(|n| n.to_str()),
                        Some("lib.rs") | Some("main.rs")
                    );
                out.push((path.to_path_buf(), crate_name.clone(), is_root));
            });
        }
    }
    let root_src = root.join("src");
    walk_rs(&root_src, &mut |path| {
        let is_root = path.parent() == Some(root_src.as_path())
            && matches!(
                path.file_name().and_then(|n| n.to_str()),
                Some("lib.rs") | Some("main.rs")
            );
        out.push((path.to_path_buf(), "rejecto".to_string(), is_root));
    });
    out
}

/// Reads every source file once: `(rel path, crate, is_root, text)`.
/// Unreadable files become synthetic entries whose "text" is empty; the
/// lint runner reports them as `io` violations.
fn read_sources(root: &Path) -> Vec<(String, String, bool, String)> {
    collect_sources(root)
        .into_iter()
        .map(|(path, crate_name, is_root)| {
            let rel = rel(root, &path);
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| format!("\u{0}io error: {e}"));
            (rel, crate_name, is_root, text)
        })
        .collect()
}

fn run_lints(sources: &[(String, String, bool, String)]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (rel_path, crate_name, is_crate_root, text) in sources {
        if let Some(err) = text.strip_prefix('\u{0}') {
            violations.push(Violation {
                file: rel_path.clone(),
                line: 0,
                rule: "io",
                message: format!("unreadable source file: {err}"),
                snippet: String::new(),
            });
            continue;
        }
        violations.extend(lint::lint_file(&SourceFile {
            rel_path,
            crate_name,
            is_crate_root: *is_crate_root,
            text,
        }));
    }
    violations
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Depth-first sorted walk collecting `.rs` files under `dir` (no-op when
/// the directory does not exist).
fn walk_rs(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, visit);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            visit(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_document_shape() {
        let v = vec![Violation {
            file: "crates/x/src/a.rs".to_string(),
            line: 3,
            rule: "no-unwrap",
            message: "msg with \"quotes\"".to_string(),
            snippet: "let x = y.unwrap();".to_string(),
        }];
        let doc = render_json(&v, None);
        assert!(doc.contains("\"violations\""));
        assert!(doc.contains("\"rule\": \"no-unwrap\""));
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(!doc.contains("\"fixable\""));
        let with_fix = render_json(&[], Some(&vec![]));
        assert!(with_fix.contains("\"violations\": []"));
        assert!(with_fix.contains("\"fixable\": []"));
    }

    /// The whole-repo lint pass over the real working tree: this is the
    /// same invariant CI enforces, kept here so `cargo test` fails fast
    /// when a kernel change violates a rule.
    #[test]
    fn working_tree_is_lint_clean() {
        let sources = read_sources(&repo_root());
        assert!(!sources.is_empty(), "source walk found nothing");
        let violations = run_lints(&sources);
        assert!(
            violations.is_empty(),
            "working tree has lint violations:\n{}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
