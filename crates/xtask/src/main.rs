//! Repo-local task runner, invoked as `cargo xtask <command>` via the
//! alias in `.cargo/config.toml`.
//!
//! Commands:
//!
//! * `check` — run the static-analysis lint pass ([`lint`]) over the
//!   workspace sources.
//! * `check --determinism` — additionally run the in-process determinism
//!   harness ([`determinism`]): simulate → detect twice from one seed,
//!   diff byte-for-byte.
//!
//! Exit code 0 means clean; 1 means violations (each printed as
//! `file:line: [rule] message`) or a determinism failure; 2 means usage
//! error.

#![forbid(unsafe_code)]

mod determinism;
mod lint;

use lint::{SourceFile, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let mut with_determinism = false;
            for flag in it {
                match flag {
                    "--determinism" => with_determinism = true,
                    other => {
                        eprintln!("unknown flag {other:?}; usage: cargo xtask check [--determinism]");
                        return ExitCode::from(2);
                    }
                }
            }
            check(with_determinism)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; usage: cargo xtask check [--determinism]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask check [--determinism]");
            ExitCode::from(2)
        }
    }
}

fn check(with_determinism: bool) -> ExitCode {
    let root = repo_root();
    let mut failed = false;

    let violations = run_lints(&root);
    let files = collect_sources(&root).len();
    if violations.is_empty() {
        println!("lint: OK — {files} files scanned, 0 violations");
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("lint: FAILED — {files} files scanned, {} violation(s)", violations.len());
        failed = true;
    }

    if with_determinism {
        match determinism::run() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                println!("determinism: FAILED — {why}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Every first-party `.rs` file, as `(absolute path, crate name,
/// is_crate_root)`. Scans `crates/*/{src,tests,benches}` and the root
/// package's `src/`; `vendor/` (third-party stubs) and `target/` are out
/// of scope. Deterministic order (sorted walk).
fn collect_sources(root: &Path) -> Vec<(PathBuf, String, bool)> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir) {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .expect("crate directory has a utf-8 name")
            .to_string();
        for sub in ["src", "tests", "benches"] {
            walk_rs(&crate_dir.join(sub), &mut |path| {
                let is_root = sub == "src"
                    && path.parent() == Some(crate_dir.join("src").as_path())
                    && matches!(
                        path.file_name().and_then(|n| n.to_str()),
                        Some("lib.rs") | Some("main.rs")
                    );
                out.push((path.to_path_buf(), crate_name.clone(), is_root));
            });
        }
    }
    let root_src = root.join("src");
    walk_rs(&root_src, &mut |path| {
        let is_root = path.parent() == Some(root_src.as_path())
            && matches!(
                path.file_name().and_then(|n| n.to_str()),
                Some("lib.rs") | Some("main.rs")
            );
        out.push((path.to_path_buf(), "rejecto".to_string(), is_root));
    });
    out
}

fn run_lints(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (path, crate_name, is_crate_root) in collect_sources(root) {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                violations.push(Violation {
                    file: rel(root, &path),
                    line: 0,
                    rule: "io",
                    message: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        let rel_path = rel(root, &path);
        violations.extend(lint::lint_file(&SourceFile {
            rel_path: &rel_path,
            crate_name: &crate_name,
            is_crate_root,
            text: &text,
        }));
    }
    violations
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Depth-first sorted walk collecting `.rs` files under `dir` (no-op when
/// the directory does not exist).
fn walk_rs(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, visit);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            visit(&path);
        }
    }
}
