//! Corpus-driven rule fixtures (`crates/xtask/fixtures/*.rs`).
//!
//! Each fixture is a standalone Rust source (never compiled — read as
//! data) with `//~` directives:
//!
//! * `//~ crate: <name>` / `//~ path: <rel path>` / `//~ root` headers
//!   set the [`SourceFile`] context the rules key on;
//! * `//~ expect: <rule>[@<line>][, <rule>...]` markers state exactly
//!   which diagnostics the file must produce. Without `@<line>` the
//!   marker's own line is the expected line; the `@` form exists for
//!   diagnostics that cannot share a line with a marker (file-level
//!   `forbid-unsafe`, lines already carrying an `xtask-allow` pragma
//!   whose reason parse would swallow the marker).
//!
//! The harness lints every fixture and requires the violation set to
//! match the markers *exactly* — so `*_pass` fixtures (no markers) must
//! lint completely clean, and `*_fail` fixtures must fire each rule on
//! each marked line and nowhere else. A second test enforces corpus
//! coverage: every rule in [`RULES`] has at least one `<rule>_fail*`
//! and one `<rule>_pass*` fixture.

use crate::lint::{lint_file, SourceFile, RULES};
use std::path::Path;

struct Fixture {
    name: String,
    crate_name: String,
    rel_path: String,
    is_root: bool,
    expects: Vec<(String, usize)>,
    text: String,
}

fn load_corpus() -> Vec<Fixture> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("crates/xtask/fixtures exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    paths.iter().map(|p| parse_fixture(p)).collect()
}

fn parse_fixture(path: &Path) -> Fixture {
    let name =
        path.file_stem().and_then(|s| s.to_str()).expect("utf-8 fixture name").to_string();
    let text = std::fs::read_to_string(path).expect("fixture is readable utf-8");
    let mut crate_name = String::new();
    let mut rel_path = String::new();
    let mut is_root = false;
    let mut expects = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(rest) = line.trim().strip_prefix("//~ crate:") {
            crate_name = rest.trim().to_string();
        } else if let Some(rest) = line.trim().strip_prefix("//~ path:") {
            rel_path = rest.trim().to_string();
        } else if line.trim() == "//~ root" {
            is_root = true;
        }
        if let Some(at) = line.find("//~ expect:") {
            let spec = &line[at + "//~ expect:".len()..];
            for entry in spec.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                match entry.split_once('@') {
                    Some((rule, n)) => expects.push((
                        rule.trim().to_string(),
                        n.trim().parse().expect("`@<line>` is a line number"),
                    )),
                    None => expects.push((entry.to_string(), lineno)),
                }
            }
        }
    }
    assert!(!crate_name.is_empty(), "{name}: missing `//~ crate:` header");
    assert!(!rel_path.is_empty(), "{name}: missing `//~ path:` header");
    Fixture { name, crate_name, rel_path, is_root, expects, text }
}

fn sorted(mut v: Vec<(String, usize)>) -> Vec<(String, usize)> {
    v.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[test]
fn corpus_matches_expectations() {
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "fixture corpus is empty");
    for f in &corpus {
        let got: Vec<(String, usize)> = lint_file(&SourceFile {
            rel_path: &f.rel_path,
            crate_name: &f.crate_name,
            is_crate_root: f.is_root,
            text: &f.text,
        })
        .iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect();
        assert_eq!(
            sorted(got),
            sorted(f.expects.clone()),
            "{}: violations diverge from the `//~ expect` markers",
            f.name
        );
    }
}

#[test]
fn every_rule_has_pass_and_fail_fixtures() {
    let corpus = load_corpus();
    for rule in RULES {
        let slug = rule.replace('-', "_");
        let fail = corpus.iter().any(|f| {
            f.name.starts_with(&format!("{slug}_fail"))
                && f.expects.iter().any(|(r, _)| r == rule)
        });
        let pass = corpus
            .iter()
            .any(|f| f.name.starts_with(&format!("{slug}_pass")) && f.expects.is_empty());
        assert!(fail, "rule `{rule}` has no failing fixture in the corpus");
        assert!(pass, "rule `{rule}` has no passing fixture in the corpus");
    }
}

/// The PR 2 line scanner produced false positives on every construct in
/// this fixture (strings, raw strings, nested block comments); it must
/// exist and — via [`corpus_matches_expectations`] — lint clean.
#[test]
fn line_scanner_regression_fixture_is_present() {
    let corpus = load_corpus();
    assert!(
        corpus.iter().any(|f| f.name.starts_with("regression_line_scanner") && f.expects.is_empty()),
        "missing the line-scanner regression fixture"
    );
}
