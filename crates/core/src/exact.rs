//! Exact MAAR solving by exhaustive enumeration — a test oracle.
//!
//! The MAAR problem is NP-hard (§IV-B), so this is only feasible for tiny
//! graphs; it exists to validate the extended-KL sweep (does the heuristic
//! find the true optimum?) and to demonstrate Theorem 1 concretely (the
//! optimal cut is the minimizer of the linear objective at `k = k*`).

use rejection::{AugmentedGraph, NodeId, Partition, Region};

/// Hard limit on the exhaustive search (2^n cuts).
pub const EXACT_NODE_LIMIT: usize = 20;

/// The exact minimum-aggregate-acceptance-rate cut of `g`, enumerating all
/// non-trivial suspect sets with `|U| <= max_suspects`. Returns `None` when
/// no cut carries any request (friendship or rejection) across it.
///
/// Ties are broken toward the lexicographically smallest suspect bitmask,
/// which makes the oracle deterministic.
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_NODE_LIMIT`] nodes.
pub fn exact_maar_cut(g: &AugmentedGraph, max_suspects: usize) -> Option<(Partition, f64)> {
    let n = g.num_nodes();
    assert!(
        n <= EXACT_NODE_LIMIT,
        "exhaustive MAAR is limited to {EXACT_NODE_LIMIT} nodes, got {n}"
    );
    let mut best: Option<(u32, Partition, f64)> = None;
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) > max_suspects { // xtask-allow: lossy-cast: a u32 popcount is at most 32 and always fits usize
            continue;
        }
        let regions: Vec<Region> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    Region::Suspect
                } else {
                    Region::Legit
                }
            })
            .collect();
        let p = Partition::from_regions(g, regions);
        let Some(ac) = p.acceptance_rate() else { continue };
        let better = match &best {
            None => true,
            Some((_, _, b)) => ac < *b - 1e-15,
        };
        if better {
            best = Some((mask, p, ac));
        }
    }
    best.map(|(_, p, ac)| (p, ac))
}

/// Theorem-1 check: the exact minimizer of the *linear* objective
/// `|F| − k·|R|` over all cuts, for a rational `k = num/den`. Used by tests
/// to verify that the MAAR cut is the zero of the linear family at
/// `k = k*`.
///
/// Returns `(suspect_ids, objective_value_scaled_by_den)`.
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_NODE_LIMIT`] nodes.
pub fn exact_linear_cut(g: &AugmentedGraph, num: i64, den: i64) -> (Vec<NodeId>, i64) {
    let n = g.num_nodes();
    assert!(
        n <= EXACT_NODE_LIMIT,
        "exhaustive search is limited to {EXACT_NODE_LIMIT} nodes, got {n}"
    );
    let mut best_mask = 0u32;
    let mut best_obj = 0i64; // empty cut
    for mask in 1u32..(1u32 << n) {
        let regions: Vec<Region> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    Region::Suspect
                } else {
                    Region::Legit
                }
            })
            .collect();
        let p = Partition::from_regions(g, regions);
        let cf = i64::try_from(p.cross_friendships()).expect("edge count fits in i64");
        let cr = i64::try_from(p.cross_rejections()).expect("edge count fits in i64");
        let obj = den * cf - num * cr;
        if obj < best_obj {
            best_obj = obj;
            best_mask = mask;
        }
    }
    let suspects = (0..n)
        .filter(|i| best_mask & (1 << i) != 0)
        .map(NodeId::from_index)
        .collect();
    (suspects, best_obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaarSolver, RejectoConfig};
    use rejection::AugmentedGraphBuilder;

    fn spam_graph() -> AugmentedGraph {
        // 4 legit (clique-ish), 3 fakes (triangle), 1 attack edge,
        // 5 rejections onto the fakes.
        let mut b = AugmentedGraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)] {
            b.add_friendship(NodeId(u), NodeId(v));
        }
        for (u, v) in [(4, 5), (5, 6), (4, 6)] {
            b.add_friendship(NodeId(u), NodeId(v));
        }
        b.add_friendship(NodeId(3), NodeId(4));
        for (r, s) in [(0, 4), (1, 5), (2, 6), (1, 4), (3, 6)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        b.build()
    }

    #[test]
    fn exact_oracle_finds_the_fake_triangle() {
        let g = spam_graph();
        let (p, ac) = exact_maar_cut(&g, 3).expect("cut exists");
        assert_eq!(p.suspects(), vec![NodeId(4), NodeId(5), NodeId(6)]);
        assert!((ac - 1.0 / 6.0).abs() < 1e-12); // 1 friendship vs 5 rejections
    }

    #[test]
    fn heuristic_sweep_matches_the_oracle() {
        let g = spam_graph();
        let (exact, exact_ac) = exact_maar_cut(&g, 3).expect("cut exists");
        let heur = MaarSolver::new(RejectoConfig::default())
            .solve(&g, &[], &[])
            .expect("heuristic cut");
        assert_eq!(heur.suspects(), exact.suspects());
        assert!((heur.acceptance_rate - exact_ac).abs() < 1e-12);
    }

    #[test]
    fn theorem1_zero_at_k_star() {
        // The MAAR cut has F=1, R=5 ⇒ k* = 1/5. At k = k*, the linear
        // objective of the optimal cut is exactly zero and no cut is
        // negative; just below k*, every cut is positive (empty wins);
        // just above, the MAAR cut's objective goes negative.
        let g = spam_graph();
        let (at_star, obj_star) = exact_linear_cut(&g, 1, 5);
        assert_eq!(obj_star, 0, "objective at k* must be zero");
        // The zero may be attained by the empty cut or the MAAR cut; both
        // are admissible minimizers at exactly k*.
        assert!(at_star.is_empty() || at_star == vec![NodeId(4), NodeId(5), NodeId(6)]);

        let (below, obj_below) = exact_linear_cut(&g, 1, 6); // k < k*
        assert_eq!(obj_below, 0);
        assert!(below.is_empty(), "below k* the empty cut is strictly optimal");

        let (above, obj_above) = exact_linear_cut(&g, 1, 4); // k > k*
        assert!(obj_above < 0);
        assert_eq!(above, vec![NodeId(4), NodeId(5), NodeId(6)]);
    }

    #[test]
    fn no_requests_no_cut() {
        let mut b = AugmentedGraphBuilder::new(3);
        b.add_friendship(NodeId(0), NodeId(1));
        let g = b.build();
        // Friendship-only graphs have no rejection to cut; every candidate
        // has AC = 1 which is still "a cut", so the oracle returns the
        // best available (AC 1.0).
        let (_, ac) = exact_maar_cut(&g, 3).expect("friendship cut exists");
        assert_eq!(ac, 1.0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oracle_refuses_large_graphs() {
        let g = AugmentedGraphBuilder::new(25).build();
        let _ = exact_maar_cut(&g, 5);
    }
}
