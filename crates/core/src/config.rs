use crate::faults::FaultPlan;
use crate::resources::ResourceBudget;
use kl::KParam;
use std::time::Duration;

/// Runtime budgets for one detection run. All limits are optional;
/// [`RunBudget::unlimited`] (the default) reproduces the legacy behavior
/// exactly. A run that exhausts any budget stops at the next safe boundary
/// and returns a well-formed report marked
/// [`crate::Completion::Partial`] — it never aborts.
///
/// These budgets are deliberately distinct from the *convergence caps*
/// ([`RejectoConfig::max_kl_passes`], [`RejectoConfig::max_rounds`]): a
/// run that hits a cap has still converged per configuration and reports
/// [`crate::Completion::Complete`]; a run that hits a budget was cut short.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline for the whole run, polled at KL pass and sweep
    /// boundaries. Interruption points depend on elapsed time, so the
    /// *content* of a deadline-tripped partial report is machine-dependent
    /// — only its well-formedness is guaranteed.
    pub deadline: Option<Duration>,
    /// Global budget of KL passes across every `k` and every round.
    /// Allocation of passes to concurrent workers is scheduling-dependent,
    /// so like `deadline` this trades determinism for boundedness.
    pub max_kl_passes: Option<u64>,
    /// Total pruning rounds to execute before stopping with a partial
    /// report. Unlike the other two limits this one is *deterministic*
    /// (the round boundary is a pure function of the input), which makes
    /// it the interruption mode of choice for kill-and-resume tests.
    pub max_rounds: Option<usize>,
}

impl RunBudget {
    /// No limits — the legacy run-to-completion behavior.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Whether any limit is armed.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_kl_passes.is_some() || self.max_rounds.is_some()
    }
}

/// How the KL search is initialized for each `k` in the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum InitialPlacement {
    /// Every node starts in the legitimate region; the first KL pass must
    /// discover the suspect region through its best-prefix mechanism.
    AllLegit,
    /// Nodes whose individual rejection ratio
    /// (`rejections_received / (friends + rejections_received)`) is at
    /// least the threshold start in the suspect region. A cheap warm start
    /// that shortens convergence without affecting what the cut converges
    /// to (the ablation bench quantifies this).
    RejectionRatio(f64),
}

/// Configuration of the Rejecto detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectoConfig {
    /// Lower end of the geometric `k` sweep (friends-to-rejections ratio).
    pub k_min: f64,
    /// Upper end of the geometric `k` sweep.
    pub k_max: f64,
    /// Geometric factor between consecutive `k` values (> 1).
    pub k_factor: f64,
    /// Denominator resolution for rationalizing `k` (exact integer gains).
    pub k_denominator: u64,
    /// Cap on KL passes per `k`.
    pub max_kl_passes: usize,
    /// Cap on iterative pruning rounds.
    pub max_rounds: usize,
    /// KL warm start.
    pub initial_placement: InitialPlacement,
    /// Largest admissible suspect region, as a fraction of the (residual)
    /// graph. Candidate cuts whose suspect side exceeds it are discarded
    /// as the "problematic legitimate-user cuts" of §IV-F: in a large OSN
    /// there always exist near-complement cuts whose tiny `Ū` side is the
    /// unlucky legitimate users that rejected the most spam, and those
    /// cuts can undercut the true spammer cut's acceptance rate. Rejecting
    /// majority-sized suspect regions encodes the standard Sybil-defense
    /// assumption (shared by SybilRank/SybilLimit and this paper's threat
    /// model) that fakes are a minority of the user base. The default 0.6
    /// leaves slack above one-half so a spam region of exactly half the
    /// graph (the paper's stress setup) plus a few absorbed careless users
    /// stays admissible, while the near-complement cuts (≈0.98) are
    /// rejected.
    pub max_suspect_fraction: f64,
    /// Worker threads for the `k` sweep. `0` (the default) resolves to the
    /// machine's available parallelism at solve time; `1` runs the exact
    /// serial code path (no pool machinery). Results are byte-identical
    /// for every value — the sweep's reduction is ordered by sweep index,
    /// not completion order — so this is purely a wall-clock knob.
    pub threads: usize,
    /// Runtime budgets (deadline / global KL passes / total rounds). The
    /// default is unlimited, which reproduces the legacy behavior exactly.
    pub budget: RunBudget,
    /// Synthetic faults to arm for this run ([`crate::faults`]); empty by
    /// default. Used by the fault-injection tests and the CI fault matrix.
    pub faults: FaultPlan,
    /// Resource ceilings (node/edge counts, checkpoint bytes, cumulative
    /// suspect fraction). The default is unlimited, which reproduces the
    /// legacy behavior exactly; see [`ResourceBudget`].
    pub resources: ResourceBudget,
}

impl Default for RejectoConfig {
    /// Defaults matched to the paper's operating regime: legitimate
    /// acceptance is high (rejection rate ≈ 0.2 ⇒ ratio `k ≈ 4`) while
    /// spam acceptance is low (rejection ≈ 0.7 ⇒ `k ≈ 0.43`), so the sweep
    /// `[0.05, 20]` brackets every cut of interest with margin.
    fn default() -> Self {
        RejectoConfig {
            k_min: 0.05,
            k_max: 20.0,
            k_factor: 1.5,
            k_denominator: 64,
            max_kl_passes: 16,
            max_rounds: 64,
            initial_placement: InitialPlacement::RejectionRatio(0.5),
            max_suspect_fraction: 0.6,
            threads: 0,
            budget: RunBudget::unlimited(),
            faults: FaultPlan::none(),
            resources: ResourceBudget::unlimited(),
        }
    }
}

impl RejectoConfig {
    /// The rationalized geometric `k` sweep this config describes.
    ///
    /// # Panics
    ///
    /// Panics if the bounds or factor are invalid (see
    /// [`KParam::geometric_sequence`]).
    pub fn k_sweep(&self) -> Vec<KParam> {
        KParam::geometric_sequence(self.k_min, self.k_max, self.k_factor, self.k_denominator)
    }

    /// The sweep worker count this config resolves to: `threads`, or the
    /// machine's available parallelism when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            crate::pool::available_threads()
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_brackets_both_regimes() {
        let sweep = RejectoConfig::default().k_sweep();
        let values: Vec<f64> = sweep.iter().map(|k| k.value()).collect();
        // Spam regime ratio ≈ 0.43 and legit regime ratio ≈ 4 both inside.
        assert!(values.first().expect("sweep is non-empty") < &0.43);
        assert!(values.last().expect("sweep is non-empty") > &4.0);
        assert!(values.len() >= 10, "sweep too coarse: {values:?}");
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let auto = RejectoConfig::default();
        assert_eq!(auto.threads, 0);
        assert!(auto.effective_threads() >= 1);
        let pinned = RejectoConfig { threads: 3, ..RejectoConfig::default() };
        assert_eq!(pinned.effective_threads(), 3);
    }

    #[test]
    fn sweep_is_strictly_increasing() {
        let sweep = RejectoConfig::default().k_sweep();
        for w in sweep.windows(2) {
            assert!(w[0].value() < w[1].value());
        }
    }
}
