//! Versioned round checkpoints for kill-and-resume detection.
//!
//! The iterative pruning loop is *rng-free*: its entire state after round
//! `r` is (a) the groups detected so far and (b) the set of surviving
//! node ids — the residual graph is a pure function of the original graph
//! and that id set, because [`rejection::AugmentedGraph::induced_subgraph`]
//! relabels survivors in ascending id order and composes (inducing round
//! by round equals inducing once on the final survivor set). A
//! [`Checkpoint`] therefore captures exactly those two pieces, and
//! [`crate::IterativeDetector::resume`] reproduces the uninterrupted run
//! *byte-identically* — the property `cargo xtask check --determinism`
//! kills and resumes a real run to verify.
//!
//! The on-disk form is a single line of JSON with an explicit
//! `format`/`version` envelope. Acceptance rates are stored as the hex of
//! their IEEE-754 bit pattern (`ac_bits`): JSON numbers are doubles, and a
//! double that took a decimal round trip may not be the same double — the
//! bit pattern is the only representation the determinism contract can
//! accept.

use crate::detect::{DetectedGroup, DetectionReport};
use crate::runtime::RuntimeError;
use kl::KParam;
use rejection::{AugmentedGraph, NodeId};
use serde_json::Value;

/// Magic string identifying a checkpoint document.
pub const CHECKPOINT_FORMAT: &str = "rejecto-checkpoint";

/// The checkpoint schema version this build writes and reads.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One detected group, in checkpoint form (original-graph ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointGroup {
    /// 1-based round in which the group was found.
    pub round: usize,
    /// Numerator of the winning sweep `k`.
    pub k_num: u64,
    /// Denominator of the winning sweep `k`.
    pub k_den: u64,
    /// IEEE-754 bit pattern of the group's aggregate acceptance rate.
    pub acceptance_bits: u64,
    /// Members, ascending.
    pub nodes: Vec<u32>,
}

/// A snapshot of the pruning loop after a completed round (module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u64,
    /// Node count of the original graph, for resume validation.
    pub num_nodes: usize,
    /// Rounds completed so far.
    pub rounds: usize,
    /// Surviving (un-pruned) node ids, ascending.
    pub remaining: Vec<u32>,
    /// Groups detected so far, in detection order.
    pub groups: Vec<CheckpointGroup>,
}

impl Checkpoint {
    /// Captures the loop state after the last completed round of `report`
    /// on original graph `g`. The survivor set is derived from the report
    /// (every node not in a detected group), which is exactly the pruning
    /// loop's residual id set.
    pub fn capture(g: &AugmentedGraph, report: &DetectionReport) -> Checkpoint {
        let mut pruned = vec![false; g.num_nodes()];
        let mut groups = Vec::with_capacity(report.groups.len());
        for group in &report.groups {
            for &u in &group.nodes {
                pruned[u.index()] = true;
            }
            groups.push(CheckpointGroup {
                round: group.round,
                k_num: group.k.num(),
                k_den: group.k.den(),
                acceptance_bits: group.acceptance_rate.to_bits(),
                nodes: group.nodes.iter().map(|u| u.0).collect(),
            });
        }
        let remaining = (0..g.num_nodes())
            .filter(|&u| !pruned[u])
            .map(|u| u32::try_from(u).expect("node ids fit in u32"))
            .collect();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            num_nodes: g.num_nodes(),
            rounds: report.rounds,
            remaining,
            groups,
        }
    }

    /// Renders the checkpoint as one line of versioned JSON.
    pub fn to_json(&self) -> String {
        let groups: Vec<Value> = self
            .groups
            .iter()
            .map(|g| {
                serde_json::json!({
                    "round": g.round,
                    "k_num": g.k_num,
                    "k_den": g.k_den,
                    "ac_bits": format!("{:016x}", g.acceptance_bits),
                    "nodes": g.nodes,
                })
            })
            .collect();
        serde_json::json!({
            "format": CHECKPOINT_FORMAT,
            "version": self.version,
            "num_nodes": self.num_nodes,
            "rounds": self.rounds,
            "remaining": self.remaining,
            "groups": Value::Array(groups),
        })
        .to_string()
    }

    /// Parses a checkpoint document.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CheckpointFormat`] for anything unparsable or
    /// missing, [`RuntimeError::CheckpointVersion`] for a well-formed
    /// document of an unsupported version.
    pub fn from_json(text: &str) -> Result<Checkpoint, RuntimeError> {
        let doc: Value = serde_json::from_str(text).map_err(|e| RuntimeError::CheckpointFormat {
            message: format!("not valid JSON: {e}"),
        })?;
        let format = doc
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| bad_format("missing `format` marker"))?;
        if format != CHECKPOINT_FORMAT {
            return Err(bad_format(&format!("`format` is `{format}`, not `{CHECKPOINT_FORMAT}`")));
        }
        let version = field_u64(&doc, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(RuntimeError::CheckpointVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let num_nodes = usize::try_from(field_u64(&doc, "num_nodes")?)
            .map_err(|_| bad_format("`num_nodes` exceeds the address space"))?;
        let rounds = usize::try_from(field_u64(&doc, "rounds")?)
            .map_err(|_| bad_format("`rounds` exceeds the address space"))?;
        let remaining = id_array(&doc, "remaining")?;
        let raw_groups = doc
            .get("groups")
            .and_then(Value::as_array)
            .ok_or_else(|| bad_format("missing `groups` array"))?;
        let mut groups = Vec::with_capacity(raw_groups.len());
        for (i, g) in raw_groups.iter().enumerate() {
            let ac_hex = g
                .get("ac_bits")
                .and_then(Value::as_str)
                .ok_or_else(|| bad_format(&format!("group {i}: missing `ac_bits` hex string")))?;
            let acceptance_bits = u64::from_str_radix(ac_hex, 16).map_err(|_| {
                bad_format(&format!("group {i}: `ac_bits` is not 64-bit hex: `{ac_hex}`"))
            })?;
            let k_den = field_u64(g, "k_den")
                .map_err(|_| bad_format(&format!("group {i}: missing integer `k_den`")))?;
            if k_den == 0 {
                return Err(bad_format(&format!("group {i}: `k_den` must be nonzero")));
            }
            groups.push(CheckpointGroup {
                round: field_u64(g, "round")
                    .map_err(|_| bad_format(&format!("group {i}: missing integer `round`")))
                    .and_then(|r| {
                        usize::try_from(r).map_err(|_| {
                            bad_format(&format!("group {i}: `round` exceeds the address space"))
                        })
                    })?,
                k_num: field_u64(g, "k_num")
                    .map_err(|_| bad_format(&format!("group {i}: missing integer `k_num`")))?,
                k_den,
                acceptance_bits,
                nodes: id_array(g, "nodes")
                    .map_err(|_| bad_format(&format!("group {i}: missing `nodes` id array")))?,
            });
        }
        Ok(Checkpoint { version, num_nodes, rounds, remaining, groups })
    }

    /// Checks that this checkpoint describes a run over `g`: node counts
    /// match, every id is in range, the survivor set and the group members
    /// are sorted, mutually disjoint, and together cover the graph, and
    /// round numbers are consistent.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CheckpointMismatch`] naming the first disagreement.
    pub fn validate_against(&self, g: &AugmentedGraph) -> Result<(), RuntimeError> {
        if self.num_nodes != g.num_nodes() {
            return Err(mismatch(&format!(
                "checkpoint is for {} nodes, graph has {}",
                self.num_nodes,
                g.num_nodes()
            )));
        }
        let mut seen = vec![false; g.num_nodes()];
        let mut mark = |ids: &[u32], what: &str| -> Result<(), RuntimeError> {
            for w in ids.windows(2) {
                if w[0] >= w[1] {
                    return Err(mismatch(&format!("{what} ids are not strictly ascending")));
                }
            }
            for &u in ids {
                let Some(slot) = usize::try_from(u).ok().and_then(|i| seen.get_mut(i)) else {
                    return Err(mismatch(&format!("{what} id {u} out of range")));
                };
                if *slot {
                    return Err(mismatch(&format!("{what} id {u} appears twice")));
                }
                *slot = true;
            }
            Ok(())
        };
        mark(&self.remaining, "survivor")?;
        let mut last_round = 0usize;
        for (i, group) in self.groups.iter().enumerate() {
            mark(&group.nodes, &format!("group {i} member"))?;
            if group.round <= last_round {
                return Err(mismatch(&format!("group {i} round {} out of order", group.round)));
            }
            last_round = group.round;
            if group.nodes.is_empty() {
                return Err(mismatch(&format!("group {i} is empty")));
            }
        }
        if last_round > self.rounds {
            return Err(mismatch(&format!(
                "last group round {last_round} exceeds completed rounds {}",
                self.rounds
            )));
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(mismatch(&format!(
                "node {missing} is neither surviving nor detected"
            )));
        }
        Ok(())
    }

    /// Reconstructs the report-so-far this checkpoint encodes. Failures
    /// and completion state are per-run diagnostics and are deliberately
    /// *not* checkpointed: a resumed run reports its own.
    pub fn report(&self) -> DetectionReport {
        DetectionReport {
            groups: self
                .groups
                .iter()
                .map(|g| DetectedGroup {
                    nodes: g.nodes.iter().map(|&u| NodeId(u)).collect(),
                    acceptance_rate: f64::from_bits(g.acceptance_bits),
                    k: KParam::new(g.k_num, g.k_den),
                    round: g.round,
                })
                .collect(),
            rounds: self.rounds,
            ..DetectionReport::default()
        }
    }
}

fn bad_format(message: &str) -> RuntimeError {
    RuntimeError::CheckpointFormat { message: message.to_string() }
}

fn mismatch(message: &str) -> RuntimeError {
    RuntimeError::CheckpointMismatch { message: message.to_string() }
}

fn field_u64(doc: &Value, key: &str) -> Result<u64, RuntimeError> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| bad_format(&format!("missing non-negative integer field `{key}`")))
}

fn id_array(doc: &Value, key: &str) -> Result<Vec<u32>, RuntimeError> {
    let items = doc
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| bad_format(&format!("missing `{key}` array")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| bad_format(&format!("`{key}` contains a non-u32 entry")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejection::AugmentedGraphBuilder;

    fn graph(n: usize) -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(n);
        for u in 1..n as u32 {
            b.add_friendship(NodeId(0), NodeId(u));
        }
        b.build()
    }

    fn sample_report() -> DetectionReport {
        DetectionReport {
            groups: vec![DetectedGroup {
                nodes: vec![NodeId(2), NodeId(4)],
                acceptance_rate: 0.125,
                k: KParam::new(3, 2),
                round: 1,
            }],
            rounds: 1,
            ..DetectionReport::default()
        }
    }

    #[test]
    fn capture_round_trips_through_json() {
        let g = graph(6);
        let ckpt = Checkpoint::capture(&g, &sample_report());
        assert_eq!(ckpt.remaining, vec![0, 1, 3, 5]);
        let text = ckpt.to_json();
        let back = Checkpoint::from_json(&text).expect("own output parses");
        assert_eq!(back, ckpt);
        back.validate_against(&g).expect("captured state validates");
        let report = back.report();
        assert_eq!(report, sample_report());
        assert_eq!(
            report.groups[0].acceptance_rate.to_bits(),
            0.125f64.to_bits(),
            "bit-exact acceptance rate"
        );
    }

    #[test]
    fn unsupported_version_is_a_typed_error() {
        let g = graph(4);
        let text = Checkpoint::capture(&g, &DetectionReport::default())
            .to_json()
            .replace("\"version\":1", "\"version\":99");
        match Checkpoint::from_json(&text) {
            Err(RuntimeError::CheckpointVersion { found: 99, supported }) => {
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_foreign_documents_are_format_errors() {
        for text in ["", "{", "{\"format\":\"something-else\",\"version\":1}", "[1,2,3]"] {
            match Checkpoint::from_json(text) {
                Err(RuntimeError::CheckpointFormat { .. }) => {}
                other => panic!("{text:?}: expected format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_graph_fails_validation() {
        let g = graph(6);
        let ckpt = Checkpoint::capture(&g, &sample_report());
        let smaller = graph(5);
        match ckpt.validate_against(&smaller) {
            Err(RuntimeError::CheckpointMismatch { message }) => {
                assert!(message.contains("6 nodes"), "{message}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_groups_fail_validation() {
        let g = graph(6);
        let mut ckpt = Checkpoint::capture(&g, &sample_report());
        // Claim node 2 also survived — now it is both pruned and alive.
        ckpt.remaining.insert(2, 2);
        assert!(matches!(
            ckpt.validate_against(&g),
            Err(RuntimeError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn uncovered_node_fails_validation() {
        let g = graph(6);
        let mut ckpt = Checkpoint::capture(&g, &sample_report());
        ckpt.remaining.retain(|&u| u != 5);
        match ckpt.validate_against(&g) {
            Err(RuntimeError::CheckpointMismatch { message }) => {
                assert!(message.contains("node 5"), "{message}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }
}
