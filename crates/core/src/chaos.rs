//! Deterministic seeded generation of composite fault schedules for the
//! chaos-soak harness (`cargo xtask chaos`).
//!
//! A chaos *seed* expands into a [`ChaosPlan`]: a multi-fault
//! [`FaultPlan`] drawn from a splitmix64 stream, plus classification
//! predicates telling the harness which invariants each plan can be held
//! to. The generator honours the same conflict rules as
//! [`FaultPlan::parse`] — one directive per injection point — so every
//! generated plan round-trips through its textual spec, and the spec is
//! what the harness prints when a seed fails (reproduce with
//! `--faults <spec>`).
//!
//! Everything here is a pure function of the seed: no OS entropy, no
//! clocks, no allocator addresses. Two machines soaking the same seed
//! range exercise byte-identical schedules.

use crate::faults::{Fault, FaultPlan};

/// A splitmix64 stream: the 64-bit finalizer recommended by Vigna as a
/// seeding primitive, tiny and dependency-free. Not cryptographic — it
/// only has to be deterministic and well-spread across seeds.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream rooted at `seed`. Distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[0, n)`. `n` must be nonzero; the slight modulo bias is
    /// irrelevant for schedule generation.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n.max(1)
    }

    /// A draw in `[lo, hi)` (`lo < hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).max(1))
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Bounds on the schedules [`ChaosPlan::generate`] draws. Defaults match
/// the harness fixture (a few pruning rounds, a ~15-entry `k` sweep, a
/// handful of fetch batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Most faults composed into one plan (at least 1 is always drawn).
    pub max_faults: usize,
    /// Round-indexed faults draw rounds in `1..=max_round`.
    pub max_round: usize,
    /// Sweep-indexed faults draw indices in `0..max_k_index`.
    pub max_k_index: usize,
    /// Worker deaths draw fetch batches in `1..=max_fetch`.
    pub max_fetch: u64,
    /// Whether `deadline=` directives may be drawn. Deadline trips are
    /// wall-clock dependent, so plans carrying one forfeit every
    /// byte-compare invariant; the harness still soaks them for clean
    /// termination.
    pub allow_deadline: bool,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            max_faults: 4,
            max_round: 4,
            max_k_index: 10,
            max_fetch: 12,
            allow_deadline: true,
        }
    }
}

/// The plan generator draws bounds from `usize`-typed profile fields.
fn as_u64(n: usize) -> u64 {
    u64::try_from(n).expect("usize fits in u64 on every supported target")
}

/// One seed's expanded schedule plus the invariant classification the
/// harness keys on.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed this plan expands (printed on failure for reproduction).
    pub seed: u64,
    /// The composite fault schedule, conflict-free by construction.
    pub faults: FaultPlan,
}

impl ChaosPlan {
    /// Expands `seed` into a composite schedule within `profile`'s bounds.
    /// Pure: the same `(seed, profile)` always yields the same plan.
    pub fn generate(seed: u64, profile: &ChaosProfile) -> ChaosPlan {
        let mut rng = ChaosRng::new(seed);
        let mut faults = FaultPlan::none();
        let mut taken: Vec<(&'static str, u64)> = Vec::new();
        let want = 1 + usize::try_from(rng.below(as_u64(profile.max_faults.max(1))))
            .expect("fault count fits in usize");
        // Bounded rejection sampling: a draw landing on an armed injection
        // point is discarded. The attempt cap keeps generation total even
        // for tiny profiles where every point is already armed.
        let mut attempts = 0;
        while faults.faults().len() < want && attempts < 64 {
            attempts += 1;
            let fault = match rng.below(if profile.allow_deadline { 7 } else { 6 }) {
                0 => Fault::WorkerPanic {
                    k_index: usize::try_from(rng.below(as_u64(profile.max_k_index.max(1))))
                        .expect("sweep index fits in usize"),
                    persistent: rng.chance(1, 3),
                },
                1 => Fault::CheckpointIoError {
                    round: usize::try_from(rng.range(1, as_u64(profile.max_round) + 1))
                        .expect("round fits in usize"),
                },
                2 => Fault::WorkerDeath {
                    fetch: rng.range(1, profile.max_fetch.max(2)),
                    deaths: u32::try_from(rng.range(1, 4)).expect("death count fits in u32"),
                },
                3 => Fault::WorkerHang {
                    k_index: usize::try_from(rng.below(as_u64(profile.max_k_index.max(1))))
                        .expect("sweep index fits in usize"),
                },
                4 => Fault::TornWrite {
                    round: usize::try_from(rng.range(1, as_u64(profile.max_round) + 1))
                        .expect("round fits in usize"),
                },
                5 => Fault::BitFlip {
                    round: usize::try_from(rng.range(1, as_u64(profile.max_round) + 1))
                        .expect("round fits in usize"),
                },
                _ => Fault::Deadline { millis: rng.range(5, 120) },
            };
            let key = fault.injection_point();
            if taken.contains(&key) {
                continue;
            }
            taken.push(key);
            faults.push(fault);
        }
        ChaosPlan { seed, faults }
    }

    /// The textual spec of this schedule, accepted verbatim by
    /// [`FaultPlan::parse`] (and the CLI's `--faults`).
    pub fn spec(&self) -> String {
        self.faults.to_string()
    }

    /// Whether the plan arms a wall-clock deadline. Deadline interruption
    /// points are scheduling-dependent, so such plans are soaked for clean
    /// termination only — every byte-compare invariant is skipped.
    pub fn has_deadline(&self) -> bool {
        self.faults.faults().iter().any(|f| matches!(f, Fault::Deadline { .. }))
    }

    /// Whether the plan arms a persistent worker panic. Its deterministic
    /// degradation is a *local* contract (threads 1/4 agree byte-for-byte)
    /// but the distributed runtime absorbs worker loss differently, so
    /// cross-runtime byte-compares are off for these plans.
    pub fn has_persistent_panic(&self) -> bool {
        self.faults
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::WorkerPanic { persistent: true, .. }))
    }

    /// Whether a sinkless uninterrupted run under this plan must render
    /// byte-identically across thread counts (everything except deadline
    /// plans: absorbed faults leave no report trace without a checkpoint
    /// sink, and persistent-panic degradation is deterministic locally).
    pub fn locally_comparable(&self) -> bool {
        !self.has_deadline()
    }

    /// Whether local and distributed legs of this plan must agree
    /// byte-for-byte (and hence also reconcile stripped metrics).
    pub fn cross_runtime_comparable(&self) -> bool {
        !self.has_deadline() && !self.has_persistent_panic()
    }

    /// Whether a kill-and-resume leg under this plan must reproduce the
    /// uninterrupted run byte-for-byte. Persistent panics are excluded:
    /// their recorded failures straddle the checkpoint boundary, so the
    /// resumed report legitimately carries a different failure tally.
    pub fn resume_comparable(&self) -> bool {
        !self.has_deadline() && !self.has_persistent_panic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_expands_to_the_same_plan() {
        let profile = ChaosProfile::default();
        for seed in 0..64 {
            let a = ChaosPlan::generate(seed, &profile);
            let b = ChaosPlan::generate(seed, &profile);
            assert_eq!(a, b, "seed {seed} is not reproducible");
        }
    }

    #[test]
    fn every_generated_plan_round_trips_through_its_spec() {
        let profile = ChaosProfile::default();
        for seed in 0..256 {
            let plan = ChaosPlan::generate(seed, &profile);
            assert!(!plan.faults.faults().is_empty(), "seed {seed} drew no faults");
            let spec = plan.spec();
            let reparsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("seed {seed}: spec `{spec}` rejected: {e}"));
            assert_eq!(reparsed, plan.faults, "seed {seed}: `{spec}`");
        }
    }

    #[test]
    fn the_seed_range_covers_every_fault_kind() {
        let profile = ChaosProfile::default();
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..256 {
            for f in ChaosPlan::generate(seed, &profile).faults.faults() {
                kinds.insert(f.injection_point().0);
            }
        }
        for expected in
            ["worker_panic", "io_error", "deadline", "worker_death", "worker_hang", "store mangle"]
        {
            assert!(kinds.contains(expected), "no seed in 0..256 drew {expected}");
        }
    }

    #[test]
    fn deadline_free_profiles_never_draw_deadlines() {
        let profile = ChaosProfile { allow_deadline: false, ..ChaosProfile::default() };
        for seed in 0..128 {
            let plan = ChaosPlan::generate(seed, &profile);
            assert!(!plan.has_deadline(), "seed {seed}: {}", plan.spec());
            assert!(plan.locally_comparable());
        }
    }

    #[test]
    fn classification_matches_the_drawn_faults() {
        let mut plan = ChaosPlan { seed: 0, faults: FaultPlan::none() };
        plan.faults.push(Fault::WorkerDeath { fetch: 2, deaths: 1 });
        assert!(plan.cross_runtime_comparable() && plan.resume_comparable());
        plan.faults.push(Fault::WorkerPanic { k_index: 1, persistent: true });
        assert!(plan.locally_comparable());
        assert!(!plan.cross_runtime_comparable());
        plan.faults.push(Fault::Deadline { millis: 10 });
        assert!(!plan.locally_comparable() && !plan.resume_comparable());
    }
}
