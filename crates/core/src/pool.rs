//! Deterministic fixed-size worker pool for the MAAR `k` sweep.
//!
//! Each `k` in the sweep is an *independent* extended-KL run against the
//! same immutable [`rejection::AugmentedGraph`] (the CSR adjacency is
//! read-only for the whole sweep), so the sweep is embarrassingly
//! parallel. What must NOT vary with thread count is the *answer*: the
//! sweep's reduction picks the winner by lowest acceptance rate with ties
//! broken by sweep index, so the caller needs every job's result slotted
//! back at its own index, not in completion order.
//!
//! [`run_indexed`] provides exactly that contract: a shared atomic cursor
//! hands out job indices to a fixed pool of `crossbeam` scoped workers,
//! each worker writes its result into the slot owned by the job index, and
//! the caller receives `Vec<JobOutcome<T>>` in job order. Scheduling
//! order, thread interleaving, and pool size are all invisible in the
//! output — which is what lets `cargo xtask check --determinism` assert
//! that `threads = 1` and `threads = 4` produce byte-identical artifacts.
//!
//! Two runtime-robustness properties are enforced *here*, at the scope
//! boundary, rather than trusted to every worker body:
//!
//! * **Panic isolation.** A worker panic is caught per job with
//!   `catch_unwind` and returned as [`JobOutcome::Panicked`] carrying the
//!   payload message. Before this layer existed, a single panicking job
//!   unwound across the scoped-thread join and took the entire process
//!   down with it — the caller never got the other slots' finished work.
//! * **Cooperative cancellation.** Workers poll a [`CancelToken`] before
//!   pulling each job; once it trips, unclaimed jobs are left as
//!   [`JobOutcome::Skipped`] and the pool drains promptly.

use kl::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fate of one pool job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JobOutcome<T> {
    /// The worker returned normally.
    Done(T),
    /// The worker panicked; the payload message is preserved for
    /// [`crate::RuntimeError::WorkerFailed`] diagnostics.
    Panicked(String),
    /// The job was never claimed because the cancel token tripped first.
    Skipped,
}

impl<T> JobOutcome<T> {
    /// The `Done` value, if any.
    #[cfg(test)]
    fn done(self) -> Option<T> {
        match self {
            JobOutcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// Renders a panic payload: string payloads (the overwhelmingly common
/// case — every `panic!("...")`) are preserved verbatim.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job under the panic shield. `AssertUnwindSafe` is sound here
/// because a panicked job's only observable artifact is its own slot,
/// which is overwritten with the panic outcome — no partially-mutated
/// state escapes into other jobs.
fn run_one<T, F>(worker: &F, i: usize) -> JobOutcome<T>
where
    F: Fn(usize) -> T + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| worker(i))) {
        Ok(v) => JobOutcome::Done(v),
        Err(payload) => JobOutcome::Panicked(panic_message(payload)),
    }
}

/// Runs `worker(i)` for every `i in 0..jobs` on up to `threads` scoped
/// worker threads and returns the outcomes in job order.
///
/// * `threads <= 1` (or `jobs <= 1`) runs everything on the calling thread
///   — the exact serial code path, no pool machinery at all.
/// * Workers pull the next job index from a shared atomic cursor, so a
///   slow job never blocks the remaining jobs behind a static chunking.
/// * The output is indexed by job, never by completion order; two calls
///   with the same `worker` yield identical vectors for any `threads`.
/// * Worker panics never cross the scope: each job lands as
///   [`JobOutcome::Done`], [`JobOutcome::Panicked`], or (after `cancel`
///   trips) [`JobOutcome::Skipped`].
pub(crate) fn run_indexed<T, F>(
    threads: usize,
    jobs: usize,
    cancel: &CancelToken,
    worker: F,
) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                if cancel.is_cancelled() {
                    JobOutcome::Skipped
                } else {
                    run_one(&worker, i)
                }
            })
            .collect();
    }
    let pool_size = threads.min(jobs);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome<T>>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..pool_size {
            s.spawn(|| loop {
                if cancel.is_cancelled() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let outcome = run_one(&worker, i);
                *slots[i].lock().expect("no worker holding a slot lock panics") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("all workers joined before slots are drained")
                .unwrap_or(JobOutcome::Skipped)
        })
        .collect()
}

/// The machine's available parallelism, used when
/// [`crate::RejectoConfig::threads`] is 0 (auto).
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free() -> CancelToken {
        CancelToken::new()
    }

    fn done<T>(outcomes: Vec<JobOutcome<T>>) -> Vec<Option<T>> {
        outcomes.into_iter().map(JobOutcome::done).collect()
    }

    #[test]
    fn results_are_in_job_order_regardless_of_thread_count() {
        let serial = done(run_indexed(1, 37, &free(), |i| i * i));
        for threads in [2, 3, 4, 8] {
            let parallel = done(run_indexed(threads, 37, &free(), |i| i * i));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn zero_jobs_yield_empty_output() {
        let out: Vec<JobOutcome<u32>> = run_indexed(4, 0, &free(), |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = done(run_indexed(16, 3, &free(), |i| i));
        assert_eq!(out, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    /// Regression test: a panicking worker used to unwind across the
    /// thread-scope join and abort the whole process. It must now land in
    /// its own slot as `Panicked` while every other job's result survives.
    #[test]
    fn worker_panic_is_confined_to_its_slot() {
        for threads in [1, 4] {
            let out = run_indexed(threads, 8, &free(), |i| {
                assert!(i != 5, "job five detonates");
                i * 10
            });
            for (i, outcome) in out.iter().enumerate() {
                if i == 5 {
                    match outcome {
                        JobOutcome::Panicked(msg) => {
                            assert!(msg.contains("job five detonates"), "threads={threads}: {msg}");
                        }
                        other => {
                            panic!("threads={threads}: expected Panicked, got {other:?}");
                        }
                    }
                } else {
                    assert_eq!(*outcome, JobOutcome::Done(i * 10), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn tripped_token_skips_unclaimed_jobs() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let out: Vec<JobOutcome<usize>> = run_indexed(threads, 6, &token, |i| i);
            assert!(
                out.iter().all(|o| *o == JobOutcome::Skipped),
                "threads={threads}: pre-tripped token must skip everything"
            );
        }
    }

    #[test]
    fn token_tripped_by_a_job_skips_later_serial_jobs() {
        let token = CancelToken::new();
        let out = run_indexed(1, 5, &token, |i| {
            if i == 2 {
                token.cancel();
            }
            i
        });
        assert_eq!(out[..3], [JobOutcome::Done(0), JobOutcome::Done(1), JobOutcome::Done(2)]);
        assert_eq!(out[3..], [JobOutcome::Skipped, JobOutcome::Skipped]);
    }
}
