//! Deterministic fixed-size worker pool for the MAAR `k` sweep.
//!
//! Each `k` in the sweep is an *independent* extended-KL run against the
//! same immutable [`rejection::AugmentedGraph`] (the CSR adjacency is
//! read-only for the whole sweep), so the sweep is embarrassingly
//! parallel. What must NOT vary with thread count is the *answer*: the
//! sweep's reduction picks the winner by lowest acceptance rate with ties
//! broken by sweep index, so the caller needs every job's result slotted
//! back at its own index, not in completion order.
//!
//! [`run_indexed`] provides exactly that contract: a shared atomic cursor
//! hands out job indices to a fixed pool of `crossbeam` scoped workers,
//! each worker writes its result into the slot owned by the job index, and
//! the caller receives `Vec<Option<T>>` in job order. Scheduling order,
//! thread interleaving, and pool size are all invisible in the output —
//! which is what lets `cargo xtask check --determinism` assert that
//! `threads = 1` and `threads = 4` produce byte-identical artifacts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `worker(i)` for every `i in 0..jobs` on up to `threads` scoped
/// worker threads and returns the results in job order.
///
/// * `threads <= 1` (or `jobs <= 1`) runs everything on the calling thread
///   — the exact serial code path, no pool machinery at all.
/// * Workers pull the next job index from a shared atomic cursor, so a
///   slow job never blocks the remaining jobs behind a static chunking.
/// * The output is indexed by job, never by completion order; two calls
///   with the same `worker` yield identical vectors for any `threads`.
///
/// # Panics
///
/// Propagates a panic from any worker after the scope joins the rest.
pub(crate) fn run_indexed<T, F>(threads: usize, jobs: usize, worker: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(&worker).collect();
    }
    let pool_size = threads.min(jobs);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..pool_size {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = worker(i);
                *slots[i].lock().expect("no worker holding a slot lock panics") = result;
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("all workers joined before slots are drained"))
        .collect()
}

/// The machine's available parallelism, used when
/// [`crate::RejectoConfig::threads`] is 0 (auto).
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_regardless_of_thread_count() {
        let serial = run_indexed(1, 37, |i| Some(i * i));
        for threads in [2, 3, 4, 8] {
            let parallel = run_indexed(threads, 37, |i| Some(i * i));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn none_results_keep_their_slots() {
        let out = run_indexed(4, 10, |i| (i % 3 == 0).then_some(i));
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, (i % 3 == 0).then_some(i));
        }
    }

    #[test]
    fn zero_jobs_yield_empty_output() {
        let out: Vec<Option<u32>> = run_indexed(4, 0, |_| None);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(16, 3, Some);
        assert_eq!(out, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
