//! Debug-build invariant checkers for the detection pipeline, compiled only
//! under the `debug-invariants` feature.
//!
//! Two bookkeeping schemes in this crate are incremental and therefore
//! corruptible by a wrong delta: [`rejection::Partition`] maintains its
//! cross-edge counters through `switch`, and
//! [`crate::IterativeDetector::detect`] accumulates disjoint spammer groups
//! across pruning rounds. The checkers here re-derive both from scratch and
//! panic on the first disagreement. They are wired into [`crate::MaarSolver`]
//! and the pruning loop, and public so tests (and `cargo xtask check`'s
//! determinism harness) can apply them to arbitrary outputs.

use crate::DetectionReport;
use rejection::{AugmentedGraph, Partition, Region};

/// Re-derives a partition's incremental cut counters from the graph and
/// asserts they match: coverage (`p` assigns a region to exactly the nodes
/// of `g`), the suspect count, `cross_friendships` (friendships with
/// endpoints in different regions), and `cross_rejections` (rejections cast
/// by the legit region on the suspect region).
///
/// # Panics
///
/// Panics on the first counter that disagrees with recomputation.
pub fn assert_partition_bookkeeping(g: &AugmentedGraph, p: &Partition) {
    assert_eq!(
        p.len(),
        g.num_nodes(),
        "partition covers {} nodes, graph has {}",
        p.len(),
        g.num_nodes()
    );
    let suspects = g.nodes().filter(|&u| p.region(u) == Region::Suspect).count();
    assert_eq!(
        suspects,
        p.suspect_count(),
        "suspect_count {} but {suspects} nodes are in the suspect region",
        p.suspect_count()
    );

    let mut cross_f = 0u64;
    let mut cross_r = 0u64;
    for u in g.nodes() {
        for &v in g.friends(u) {
            if u < v && p.region(u) != p.region(v) {
                cross_f += 1;
            }
        }
        // `u` rejected `v`: counts iff the rejector is Legit and the
        // rejectee Suspect (the ⟨Ū, U⟩ direction of §IV-B).
        if p.region(u) == Region::Legit {
            for &v in g.rejected_by(u) {
                if p.region(v) == Region::Suspect {
                    cross_r += 1;
                }
            }
        }
    }
    assert_eq!(
        p.cross_friendships(),
        cross_f,
        "cross_friendships counter {} but {cross_f} friendships cross the cut",
        p.cross_friendships()
    );
    assert_eq!(
        p.cross_rejections(),
        cross_r,
        "cross_rejections counter {} but {cross_r} rejections cross the cut",
        p.cross_rejections()
    );
}

/// Checks the pruning loop's accumulated state on the *original* graph `g`:
/// groups must be pairwise disjoint (a pruned node can never resurface),
/// every member must name a node of `g`, round numbers must be recorded in
/// order, and every group's acceptance rate must be a valid rate in
/// `[0, 1]`.
///
/// Per-round acceptance rates are deliberately NOT asserted monotone.
/// §IV-E's prune-and-repeat intuition (each round removes the currently
/// most-rejected group, so the residual graph looks more legitimate) holds
/// on the paper's spam scenarios and is pinned by scenario-level tests,
/// but it is not an invariant of the algorithm: the k-sweep runs a *local*
/// search, so a later round can surface a low-rate pocket the earlier
/// sweep missed — random small graphs with noise rejections produce
/// counterexamples (found by the checkpoint round-trip proptest).
///
/// # Panics
///
/// Panics on the first violated property.
pub fn assert_report_bookkeeping(g: &AugmentedGraph, report: &DetectionReport) {
    let mut seen = vec![false; g.num_nodes()];
    for group in &report.groups {
        assert!(
            group.round >= 1 && group.round <= report.rounds,
            "group round {} outside 1..={}",
            group.round,
            report.rounds
        );
        for &u in &group.nodes {
            assert!(
                u.index() < g.num_nodes(),
                "detected node {u} out of range ({} nodes)",
                g.num_nodes()
            );
            assert!(!seen[u.index()], "node {u} detected in two groups");
            seen[u.index()] = true;
        }
    }
    for group in &report.groups {
        assert!(
            (0.0..=1.0).contains(&group.acceptance_rate),
            "acceptance rate out of range in round {}: {}",
            group.round,
            group.acceptance_rate
        );
    }
    for w in report.groups.windows(2) {
        assert!(
            w[0].round < w[1].round,
            "group rounds out of order: {} then {}",
            w[0].round,
            w[1].round
        );
    }
}
