use crate::{InitialPlacement, RejectoConfig};
use kl::{ExtendedKl, ExtendedKlConfig, KParam};
use rejection::{AugmentedGraph, NodeId, Partition, Region};

/// A minimum-aggregate-acceptance-rate cut found by [`MaarSolver`].
#[derive(Debug, Clone)]
pub struct MaarCut {
    /// The partition; its suspect region is the detected group.
    pub partition: Partition,
    /// `AC⟨U,Ū⟩` of the cut.
    pub acceptance_rate: f64,
    /// The sweep value of `k` that produced the winning cut.
    pub k: KParam,
}

impl MaarCut {
    /// The detected suspect group, ascending by node id.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.partition.suspects()
    }
}

/// Solves the MAAR problem on one augmented graph by sweeping `k` over a
/// geometric sequence and keeping the extended-KL cut with the lowest
/// aggregate acceptance rate (§IV-D, Theorem 1).
#[derive(Debug, Clone)]
pub struct MaarSolver {
    config: RejectoConfig,
}

impl MaarSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: RejectoConfig) -> Self {
        MaarSolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RejectoConfig {
        &self.config
    }

    /// Finds the best cut on `g`. `legit_seeds` are pinned to the
    /// legitimate region and `spammer_seeds` to the suspect region for the
    /// whole search (§IV-F). Returns `None` when no non-degenerate cut
    /// exists (i.e., every candidate leaves the suspect region empty or
    /// cuts no requests at all).
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range.
    pub fn solve(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
    ) -> Option<MaarCut> {
        let first = self.sweep(g, legit_seeds, spammer_seeds, self.config.initial_placement);
        if first.is_some() || self.config.initial_placement == InitialPlacement::AllLegit {
            return first;
        }
        // The warm start can steer every k toward a cut larger than the
        // admissible suspect region (KL optimizes unconstrained); fall back
        // to the all-legit start, whose best-prefix mechanism grows cuts
        // incrementally and stays small when small cuts suffice.
        self.sweep(g, legit_seeds, spammer_seeds, InitialPlacement::AllLegit)
    }

    /// The largest admissible suspect-region size on an `n`-node residual
    /// graph. Clamped to at least 1: on small graphs
    /// `floor(max_suspect_fraction · n)` rounds to 0, which would silently
    /// reject *every* candidate cut — even a single blatant spammer.
    fn suspect_cap(&self, n: usize) -> usize {
        ((self.config.max_suspect_fraction * n as f64).floor() as usize).max(1)
    }

    /// Sweeps every `k`, each an independent extended-KL run, and reduces
    /// to the admissible cut with the lowest acceptance rate.
    ///
    /// The per-`k` runs execute on a fixed-size worker pool
    /// ([`crate::pool::run_indexed`]) sized by
    /// [`RejectoConfig::effective_threads`]; the graph is shared immutably
    /// across workers and each run's result lands in its own sweep-index
    /// slot. The reduction below then scans slots in sweep order and keeps
    /// a candidate only when *strictly* better — exactly the serial loop's
    /// tie-break (lowest acceptance rate, earliest sweep index wins) — so
    /// thread count cannot change the winner.
    fn sweep(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
        placement: InitialPlacement,
    ) -> Option<MaarCut> {
        let cap = self.suspect_cap(g.num_nodes());
        let ks = self.config.k_sweep();
        let solve_one = |i: usize| -> Option<MaarCut> {
            let k = ks[i];
            let mut kl = ExtendedKl::new(
                g,
                ExtendedKlConfig { k, max_passes: self.config.max_kl_passes },
            );
            for &s in legit_seeds.iter().chain(spammer_seeds) {
                kl.lock(s);
            }
            let init = self.initial_partition(g, legit_seeds, spammer_seeds, placement);
            let out = kl.run(init);
            let p = out.partition;
            #[cfg(feature = "debug-invariants")]
            crate::invariants::assert_partition_bookkeeping(g, &p);
            if p.suspect_count() == 0 || p.suspect_count() > cap {
                return None;
            }
            let ac = p.acceptance_rate()?;
            Some(MaarCut { partition: p, acceptance_rate: ac, k })
        };
        let threads = self.config.effective_threads();
        let candidates = crate::pool::run_indexed(threads, ks.len(), solve_one);

        let mut best: Option<MaarCut> = None;
        for cut in candidates.into_iter().flatten() {
            let better = match &best {
                None => true,
                Some(b) => cut.acceptance_rate < b.acceptance_rate,
            };
            if better {
                best = Some(cut);
            }
        }
        best
    }

    fn initial_partition(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
        placement: InitialPlacement,
    ) -> Partition {
        let cap = self.suspect_cap(g.num_nodes());
        let mut region = match placement {
            InitialPlacement::AllLegit => vec![Region::Legit; g.num_nodes()],
            InitialPlacement::RejectionRatio(threshold) => {
                // Candidates above the threshold, capped at the admissible
                // suspect-region size (highest ratios first) so the warm
                // start never starts outside the feasible family.
                let mut candidates: Vec<(f64, NodeId)> = g
                    .nodes()
                    .filter_map(|u| {
                        g.rejection_ratio(u)
                            .filter(|&r| r >= threshold)
                            .map(|r| (r, u))
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("finite ratios").then(a.1.cmp(&b.1))
                });
                let mut region = vec![Region::Legit; g.num_nodes()];
                for (_, u) in candidates.into_iter().take(cap) {
                    region[u.index()] = Region::Suspect;
                }
                region
            }
        };
        for &s in legit_seeds {
            region[s.index()] = Region::Legit;
        }
        for &s in spammer_seeds {
            region[s.index()] = Region::Suspect;
        }
        Partition::from_regions(g, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejection::AugmentedGraphBuilder;

    /// 5 legit users in a ring; 3 fakes in a triangle; 2 attack edges;
    /// heavy rejections toward the fakes.
    fn scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(8);
        for i in 0..5u32 {
            b.add_friendship(NodeId(i), NodeId((i + 1) % 5));
        }
        b.add_friendship(NodeId(5), NodeId(6));
        b.add_friendship(NodeId(6), NodeId(7));
        b.add_friendship(NodeId(5), NodeId(7));
        b.add_friendship(NodeId(0), NodeId(5)); // attack edges
        b.add_friendship(NodeId(1), NodeId(6));
        for (r, s) in [(0, 6), (1, 5), (2, 5), (2, 7), (3, 6), (3, 7), (4, 5), (4, 7)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        b.build()
    }

    #[test]
    fn finds_the_fake_triangle() {
        let g = scenario();
        let cut = MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).expect("scenario admits a cut");
        assert_eq!(cut.suspects(), vec![NodeId(5), NodeId(6), NodeId(7)]);
        // 2 attack friendships, 8 rejections → AC = 2/10.
        assert!((cut.acceptance_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_legit_initialization_agrees() {
        let g = scenario();
        let config = RejectoConfig {
            initial_placement: InitialPlacement::AllLegit,
            ..RejectoConfig::default()
        };
        let cut = MaarSolver::new(config).solve(&g, &[], &[]).expect("scenario admits a cut");
        assert_eq!(cut.suspects(), vec![NodeId(5), NodeId(6), NodeId(7)]);
    }

    #[test]
    fn no_rejections_means_no_cut() {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(2), NodeId(3));
        let g = b.build();
        assert!(MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).is_none());
    }

    #[test]
    fn legit_seed_pin_overrides_warm_start() {
        let g = scenario();
        // Deliberately bad warm start marks node 0 suspect via seeds:
        // a legit seed on node 0 must keep it out of any detected group.
        let cut = MaarSolver::new(RejectoConfig::default())
            .solve(&g, &[NodeId(0)], &[NodeId(5)])
            .expect("scenario admits a cut");
        assert!(!cut.suspects().contains(&NodeId(0)));
        assert!(cut.suspects().contains(&NodeId(5)));
    }

    #[test]
    fn tiny_graph_cap_clamps_to_one() {
        // 3 legit users, 1 obvious spammer, rejected by everyone. With
        // max_suspect_fraction = 0.2 the unclamped cap would floor to 0
        // (0.2 · 4 = 0.8) and every candidate cut would be discarded.
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(1), NodeId(2));
        b.add_friendship(NodeId(0), NodeId(2));
        for r in 0..3u32 {
            b.add_rejection(NodeId(r), NodeId(3));
        }
        let g = b.build();
        let config = RejectoConfig { max_suspect_fraction: 0.2, ..RejectoConfig::default() };
        let cut = MaarSolver::new(config)
            .solve(&g, &[], &[])
            .expect("the clamped cap must admit the single-spammer cut");
        assert_eq!(cut.suspects(), vec![NodeId(3)]);
    }

    #[test]
    fn thread_count_does_not_change_the_cut() {
        let g = scenario();
        let serial = MaarSolver::new(RejectoConfig { threads: 1, ..RejectoConfig::default() })
            .solve(&g, &[], &[])
            .expect("scenario admits a cut");
        for threads in [2, 4, 7] {
            let config = RejectoConfig { threads, ..RejectoConfig::default() };
            let cut = MaarSolver::new(config)
                .solve(&g, &[], &[])
                .expect("scenario admits a cut");
            assert_eq!(cut.suspects(), serial.suspects(), "threads={threads}");
            assert_eq!(cut.k, serial.k, "threads={threads}");
            assert_eq!(
                cut.acceptance_rate.to_bits(),
                serial.acceptance_rate.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn reports_the_winning_k() {
        let g = scenario();
        let cut = MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).expect("scenario admits a cut");
        // The winning cut's friends-to-rejections ratio is 2/8 = 0.25.
        // The winning k need not equal it, but must be a sweep member.
        let sweep = RejectoConfig::default().k_sweep();
        assert!(sweep.contains(&cut.k));
    }
}
