use crate::faults::trigger_injected_panic;
use crate::runtime::{RunContext, RuntimeError};
use crate::{InitialPlacement, RejectoConfig};
use kl::{ExtendedKl, ExtendedKlConfig, KParam};
use rejection::{AugmentedGraph, NodeId, Partition, Region};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A minimum-aggregate-acceptance-rate cut found by [`MaarSolver`].
#[derive(Debug, Clone)]
pub struct MaarCut {
    /// The partition; its suspect region is the detected group.
    pub partition: Partition,
    /// `AC⟨U,Ū⟩` of the cut.
    pub acceptance_rate: f64,
    /// The sweep value of `k` that produced the winning cut.
    pub k: KParam,
}

impl MaarCut {
    /// The detected suspect group, ascending by node id.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.partition.suspects()
    }
}

/// What one sweep worker produced for its `k`.
enum KResult {
    /// A converged, admissible cut.
    Cut(MaarCut),
    /// Converged, but the cut was degenerate or inadmissible.
    NoCut,
    /// The KL run was stopped by the cancel token before convergence; its
    /// partition is discarded (a half-optimized cut must never compete in
    /// the reduction).
    Interrupted,
}

/// Everything one monitored sweep (or its warm-start fallback pair)
/// produced, for the pruning loop's bookkeeping.
#[derive(Debug)]
pub(crate) struct SweepOutcome {
    /// The winning cut, when the sweep ran to completion and found one.
    pub(crate) cut: Option<MaarCut>,
    /// Sweep indices whose workers ran to convergence (including
    /// successfully retried ones), ascending. On interruption this is the
    /// progress record a `Partial` report carries.
    pub(crate) completed_k_indices: Vec<usize>,
    /// Persistent per-`k` failures: the worker panicked *and* its
    /// deterministic serial retry panicked again, so the index was skipped.
    pub(crate) failures: Vec<RuntimeError>,
    /// Whether the cancel token stopped the sweep before every `k`
    /// converged. When set, `cut` is `None`.
    pub(crate) interrupted: bool,
}

/// Solves the MAAR problem on one augmented graph by sweeping `k` over a
/// geometric sequence and keeping the extended-KL cut with the lowest
/// aggregate acceptance rate (§IV-D, Theorem 1).
#[derive(Debug, Clone)]
pub struct MaarSolver {
    config: RejectoConfig,
}

impl MaarSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: RejectoConfig) -> Self {
        MaarSolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RejectoConfig {
        &self.config
    }

    /// Finds the best cut on `g`. `legit_seeds` are pinned to the
    /// legitimate region and `spammer_seeds` to the suspect region for the
    /// whole search (§IV-F). Returns `None` when no non-degenerate cut
    /// exists (i.e., every candidate leaves the suspect region empty or
    /// cuts no requests at all).
    ///
    /// This is the unmonitored entry point: no budgets, no fault
    /// injection. [`crate::IterativeDetector`] goes through the monitored
    /// path instead.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range.
    pub fn solve(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
    ) -> Option<MaarCut> {
        self.solve_monitored(g, legit_seeds, spammer_seeds, &RunContext::unmonitored()).cut
    }

    /// [`MaarSolver::solve`] under a [`RunContext`]: the context's cancel
    /// token can interrupt the sweep at KL pass boundaries, its injector
    /// can detonate workers, and the outcome records per-`k` progress and
    /// failures instead of panicking or silently skipping.
    pub(crate) fn solve_monitored(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
        ctx: &RunContext,
    ) -> SweepOutcome {
        let first = self.sweep(g, legit_seeds, spammer_seeds, self.config.initial_placement, ctx);
        if first.cut.is_some()
            || first.interrupted
            || self.config.initial_placement == InitialPlacement::AllLegit
        {
            return first;
        }
        // The warm start can steer every k toward a cut larger than the
        // admissible suspect region (KL optimizes unconstrained); fall back
        // to the all-legit start, whose best-prefix mechanism grows cuts
        // incrementally and stays small when small cuts suffice.
        let mut fallback = self.sweep(g, legit_seeds, spammer_seeds, InitialPlacement::AllLegit, ctx);
        // Failures from the primary sweep stay on the record: a skipped k
        // degrades the primary sweep's answer whether or not the fallback
        // ran cleanly.
        let mut failures = first.failures;
        failures.append(&mut fallback.failures);
        fallback.failures = failures;
        fallback
    }

    /// The largest admissible suspect-region size on an `n`-node residual
    /// graph. Clamped to at least 1: on small graphs
    /// `floor(max_suspect_fraction · n)` rounds to 0, which would silently
    /// reject *every* candidate cut — even a single blatant spammer.
    fn suspect_cap(&self, n: usize) -> usize {
        ((self.config.max_suspect_fraction * n as f64).floor() as usize).max(1) // xtask-allow: lossy-cast: n < 2^53 converts exactly and the floored fraction lies in [0, n]
    }

    /// Sweeps every `k`, each an independent extended-KL run, and reduces
    /// to the admissible cut with the lowest acceptance rate.
    ///
    /// The per-`k` runs execute on a fixed-size worker pool
    /// ([`crate::pool::run_indexed`]) sized by
    /// [`RejectoConfig::effective_threads`]; the graph is shared immutably
    /// across workers and each run's result lands in its own sweep-index
    /// slot. The reduction below then scans slots in sweep order and keeps
    /// a candidate only when *strictly* better — exactly the serial loop's
    /// tie-break (lowest acceptance rate, earliest sweep index wins) — so
    /// thread count cannot change the winner.
    ///
    /// Panicked slots are retried *serially in index order* before the
    /// reduction: a transient panic therefore yields the identical answer
    /// the clean sweep would have produced, and only a panic that
    /// reproduces on retry degrades the sweep (recorded as
    /// [`RuntimeError::WorkerFailed`], slot skipped).
    fn sweep(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
        placement: InitialPlacement,
        ctx: &RunContext,
    ) -> SweepOutcome {
        let cap = self.suspect_cap(g.num_nodes());
        let ks = self.config.k_sweep();
        let _sweep_span = ctx.obs.as_ref().map(|o| o.span("detect/round/sweep"));
        let solve_one = |i: usize| -> KResult {
            if ctx.injector.should_panic(i) {
                trigger_injected_panic(i);
            }
            // Opened only after the injection probe: a detonated worker
            // must record nothing, so its deterministic serial retry leaves
            // the metrics identical to a clean run's.
            let _k_span = ctx.obs.as_ref().map(|o| o.span("detect/round/sweep/k_index"));
            let k = ks[i];
            let mut kl = ExtendedKl::new(
                g,
                ExtendedKlConfig { k, max_passes: self.config.max_kl_passes },
            );
            kl.set_cancel(ctx.token.clone());
            if let Some(obs) = &ctx.obs {
                kl.set_obs(obs.clone());
            }
            for &s in legit_seeds.iter().chain(spammer_seeds) {
                kl.lock(s);
            }
            let init = self.initial_partition(g, legit_seeds, spammer_seeds, placement);
            let out = kl.run(init);
            if out.interrupted {
                return KResult::Interrupted;
            }
            let p = out.partition;
            #[cfg(feature = "debug-invariants")]
            crate::invariants::assert_partition_bookkeeping(g, &p);
            if p.suspect_count() == 0 || p.suspect_count() > cap {
                return KResult::NoCut;
            }
            match p.acceptance_rate() {
                Some(ac) => {
                    KResult::Cut(MaarCut { partition: p, acceptance_rate: ac, k })
                }
                None => KResult::NoCut,
            }
        };
        let threads = self.config.effective_threads();
        let mut slots = crate::pool::run_indexed(threads, ks.len(), &ctx.token, solve_one);

        // Deterministic serial retry of panicked slots, in index order. A
        // retry that panics again records the failure and skips the index.
        let mut failures = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            if let crate::pool::JobOutcome::Panicked(_) = slot {
                match catch_unwind(AssertUnwindSafe(|| solve_one(i))) {
                    Ok(result) => *slot = crate::pool::JobOutcome::Done(result),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        failures.push(RuntimeError::WorkerFailed {
                            round: ctx.round,
                            k_index: i,
                            message,
                        });
                    }
                }
            }
        }

        let mut completed_k_indices = Vec::new();
        let mut interrupted = false;
        let mut best: Option<MaarCut> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                crate::pool::JobOutcome::Done(KResult::Interrupted)
                | crate::pool::JobOutcome::Skipped => interrupted = true,
                crate::pool::JobOutcome::Done(result) => {
                    completed_k_indices.push(i);
                    if let KResult::Cut(cut) = result {
                        let better = match &best {
                            None => true,
                            Some(b) => cut.acceptance_rate < b.acceptance_rate,
                        };
                        if better {
                            best = Some(cut);
                        }
                    }
                }
                // Retried above: a surviving Panicked slot is a recorded
                // failure, not a candidate.
                crate::pool::JobOutcome::Panicked(_) => {}
            }
        }
        SweepOutcome {
            cut: if interrupted { None } else { best },
            completed_k_indices,
            failures,
            interrupted,
        }
    }

    fn initial_partition(
        &self,
        g: &AugmentedGraph,
        legit_seeds: &[NodeId],
        spammer_seeds: &[NodeId],
        placement: InitialPlacement,
    ) -> Partition {
        let cap = self.suspect_cap(g.num_nodes());
        let mut region = match placement {
            InitialPlacement::AllLegit => vec![Region::Legit; g.num_nodes()],
            InitialPlacement::RejectionRatio(threshold) => {
                // Candidates above the threshold, capped at the admissible
                // suspect-region size (highest ratios first) so the warm
                // start never starts outside the feasible family.
                let mut candidates: Vec<(f64, NodeId)> = g
                    .nodes()
                    .filter_map(|u| {
                        g.rejection_ratio(u)
                            .filter(|&r| r >= threshold)
                            .map(|r| (r, u))
                    })
                    .collect();
                candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut region = vec![Region::Legit; g.num_nodes()];
                for (_, u) in candidates.into_iter().take(cap) {
                    region[u.index()] = Region::Suspect;
                }
                region
            }
        };
        for &s in legit_seeds {
            region[s.index()] = Region::Legit;
        }
        for &s in spammer_seeds {
            region[s.index()] = Region::Suspect;
        }
        Partition::from_regions(g, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use rejection::AugmentedGraphBuilder;

    /// 5 legit users in a ring; 3 fakes in a triangle; 2 attack edges;
    /// heavy rejections toward the fakes.
    fn scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(8);
        for i in 0..5u32 {
            b.add_friendship(NodeId(i), NodeId((i + 1) % 5));
        }
        b.add_friendship(NodeId(5), NodeId(6));
        b.add_friendship(NodeId(6), NodeId(7));
        b.add_friendship(NodeId(5), NodeId(7));
        b.add_friendship(NodeId(0), NodeId(5)); // attack edges
        b.add_friendship(NodeId(1), NodeId(6));
        for (r, s) in [(0, 6), (1, 5), (2, 5), (2, 7), (3, 6), (3, 7), (4, 5), (4, 7)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        b.build()
    }

    #[test]
    fn finds_the_fake_triangle() {
        let g = scenario();
        let cut = MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).expect("scenario admits a cut");
        assert_eq!(cut.suspects(), vec![NodeId(5), NodeId(6), NodeId(7)]);
        // 2 attack friendships, 8 rejections → AC = 2/10.
        assert!((cut.acceptance_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_legit_initialization_agrees() {
        let g = scenario();
        let config = RejectoConfig {
            initial_placement: InitialPlacement::AllLegit,
            ..RejectoConfig::default()
        };
        let cut = MaarSolver::new(config).solve(&g, &[], &[]).expect("scenario admits a cut");
        assert_eq!(cut.suspects(), vec![NodeId(5), NodeId(6), NodeId(7)]);
    }

    #[test]
    fn no_rejections_means_no_cut() {
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(2), NodeId(3));
        let g = b.build();
        assert!(MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).is_none());
    }

    #[test]
    fn legit_seed_pin_overrides_warm_start() {
        let g = scenario();
        // Deliberately bad warm start marks node 0 suspect via seeds:
        // a legit seed on node 0 must keep it out of any detected group.
        let cut = MaarSolver::new(RejectoConfig::default())
            .solve(&g, &[NodeId(0)], &[NodeId(5)])
            .expect("scenario admits a cut");
        assert!(!cut.suspects().contains(&NodeId(0)));
        assert!(cut.suspects().contains(&NodeId(5)));
    }

    #[test]
    fn tiny_graph_cap_clamps_to_one() {
        // 3 legit users, 1 obvious spammer, rejected by everyone. With
        // max_suspect_fraction = 0.2 the unclamped cap would floor to 0
        // (0.2 · 4 = 0.8) and every candidate cut would be discarded.
        let mut b = AugmentedGraphBuilder::new(4);
        b.add_friendship(NodeId(0), NodeId(1));
        b.add_friendship(NodeId(1), NodeId(2));
        b.add_friendship(NodeId(0), NodeId(2));
        for r in 0..3u32 {
            b.add_rejection(NodeId(r), NodeId(3));
        }
        let g = b.build();
        let config = RejectoConfig { max_suspect_fraction: 0.2, ..RejectoConfig::default() };
        let cut = MaarSolver::new(config)
            .solve(&g, &[], &[])
            .expect("the clamped cap must admit the single-spammer cut");
        assert_eq!(cut.suspects(), vec![NodeId(3)]);
    }

    #[test]
    fn thread_count_does_not_change_the_cut() {
        let g = scenario();
        let serial = MaarSolver::new(RejectoConfig { threads: 1, ..RejectoConfig::default() })
            .solve(&g, &[], &[])
            .expect("scenario admits a cut");
        for threads in [2, 4, 7] {
            let config = RejectoConfig { threads, ..RejectoConfig::default() };
            let cut = MaarSolver::new(config)
                .solve(&g, &[], &[])
                .expect("scenario admits a cut");
            assert_eq!(cut.suspects(), serial.suspects(), "threads={threads}");
            assert_eq!(cut.k, serial.k, "threads={threads}");
            assert_eq!(
                cut.acceptance_rate.to_bits(),
                serial.acceptance_rate.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn reports_the_winning_k() {
        let g = scenario();
        let cut = MaarSolver::new(RejectoConfig::default()).solve(&g, &[], &[]).expect("scenario admits a cut");
        // The winning cut's friends-to-rejections ratio is 2/8 = 0.25.
        // The winning k need not equal it, but must be a sweep member.
        let sweep = RejectoConfig::default().k_sweep();
        assert!(sweep.contains(&cut.k));
    }

    #[test]
    fn one_shot_injected_panic_is_retried_to_the_clean_answer() {
        let g = scenario();
        let clean = MaarSolver::new(RejectoConfig::default())
            .solve(&g, &[], &[])
            .expect("scenario admits a cut");
        for threads in [1, 4] {
            let plan = FaultPlan::parse("worker_panic@k=3").expect("spec is well-formed");
            let config = RejectoConfig { threads, faults: plan, ..RejectoConfig::default() };
            let solver = MaarSolver::new(config);
            let mut ctx = RunContext::unmonitored();
            ctx.injector = crate::faults::FaultInjector::new(&solver.config().faults);
            let out = solver.solve_monitored(&g, &[], &[], &ctx);
            assert!(out.failures.is_empty(), "threads={threads}: retry must clear the failure");
            assert!(!out.interrupted);
            let cut = out.cut.expect("retried sweep still finds the cut");
            assert_eq!(cut.suspects(), clean.suspects(), "threads={threads}");
            assert_eq!(cut.acceptance_rate.to_bits(), clean.acceptance_rate.to_bits());
        }
    }

    #[test]
    fn persistent_injected_panic_degrades_deterministically() {
        let g = scenario();
        let mut reference: Option<(Vec<NodeId>, Vec<usize>)> = None;
        for threads in [1, 4] {
            let plan = FaultPlan::parse("worker_panic@k=3:always").expect("spec is well-formed");
            let config = RejectoConfig { threads, faults: plan, ..RejectoConfig::default() };
            let solver = MaarSolver::new(config);
            let mut ctx = RunContext::unmonitored();
            ctx.round = 1;
            ctx.injector = crate::faults::FaultInjector::new(&solver.config().faults);
            let out = solver.solve_monitored(&g, &[], &[], &ctx);
            assert!(!out.interrupted, "a failed slot is a skip, not an interruption");
            assert_eq!(out.failures.len(), 1, "threads={threads}");
            match &out.failures[0] {
                RuntimeError::WorkerFailed { round, k_index, message } => {
                    assert_eq!(*round, 1);
                    assert_eq!(*k_index, 3);
                    assert!(message.contains("injected worker panic"));
                }
                other => panic!("threads={threads}: unexpected failure {other:?}"),
            }
            assert!(
                !out.completed_k_indices.contains(&3),
                "failed index must not count as completed"
            );
            let suspects = out.cut.as_ref().map(MaarCut::suspects).unwrap_or_default();
            match &reference {
                None => reference = Some((suspects, out.completed_k_indices.clone())),
                Some((ref_suspects, ref_completed)) => {
                    assert_eq!(&suspects, ref_suspects, "threads={threads}");
                    assert_eq!(&out.completed_k_indices, ref_completed, "threads={threads}");
                }
            }
        }
    }
}
