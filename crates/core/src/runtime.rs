//! The structured failure model of the detection runtime.
//!
//! Rejecto's production posture (ROADMAP north star) is *degrade, don't
//! abort*: a worker panic, a failed checkpoint write, or an unreadable
//! checkpoint must surface as data — a [`RuntimeError`] attached to the
//! [`crate::DetectionReport`] or returned from a resume — never as a
//! process abort. Every variant carries enough position context (round,
//! sweep index, versions) to reproduce the failure deterministically.

use std::error::Error;
use std::fmt;

/// A structured runtime failure of the detection pipeline.
///
/// Failures recorded on a report ([`crate::DetectionReport::failures`])
/// describe *degraded* operation: the run continued and the report is
/// well-formed, but some work was skipped or some side effect (a
/// checkpoint write) was lost. Failures returned as `Err` from
/// [`crate::IterativeDetector::resume`] describe inputs the run could not
/// start from at all.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A `k`-sweep worker panicked, its deterministic serial retry panicked
    /// again, and the sweep index was skipped by the reduction.
    WorkerFailed {
        /// 1-based pruning round of the failed sweep.
        round: usize,
        /// Index of the failed `k` in the sweep sequence.
        k_index: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Writing a round checkpoint failed; detection continued without it.
    CheckpointIo {
        /// 1-based round whose checkpoint was lost.
        round: usize,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A checkpoint could not be parsed.
    CheckpointFormat {
        /// What was wrong with the document.
        message: String,
    },
    /// A checkpoint's version is not supported by this build.
    CheckpointVersion {
        /// The version the document declares.
        found: u64,
        /// The version this build writes and reads.
        supported: u64,
    },
    /// A checkpoint is internally consistent but does not describe the
    /// graph passed to resume.
    CheckpointMismatch {
        /// What disagreed.
        message: String,
    },
    /// The distributed cluster could not serve a request even after
    /// bounded respawns and shard rebalancing (e.g. every worker is gone),
    /// or was misconfigured. Carries the rendered
    /// `dataflow::ClusterError`.
    ClusterFailed {
        /// The underlying cluster error, rendered.
        message: String,
    },
    /// A durable-store protocol step (temp create, fsync, rename, ...)
    /// failed for a persistent artifact.
    StoreFailed {
        /// Path of the artifact involved.
        path: String,
        /// The protocol step that failed.
        op: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// An input or artifact would grow a resource past an explicit
    /// [`crate::ResourceBudget`] limit (or a structural ceiling such as the
    /// `u32` dense-id space), so the runtime refused to keep allocating.
    /// Over-budget growth surfaces here instead of ballooning memory until
    /// the allocator aborts.
    ResourceExhausted {
        /// Which resource ran out (`"nodes"`, `"edges"`, `"rejections"`,
        /// `"checkpoint bytes"`, `"suspect fraction"`, ...).
        resource: &'static str,
        /// The configured (or structural) limit.
        limit: u64,
        /// The observed demand that exceeded it.
        observed: u64,
    },
    /// A checkpoint artifact exists but failed its integrity check (bad
    /// frame magic, truncation, checksum mismatch, or an unparsable
    /// payload); resume skipped it and fell back to an older generation
    /// when one survived.
    CheckpointCorrupt {
        /// Path of the corrupt artifact.
        path: String,
        /// Byte offset of the first offending byte.
        offset: usize,
        /// What failed there.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerFailed { round, k_index, message } => write!(
                f,
                "sweep worker failed (round {round}, k index {k_index}): {message}"
            ),
            RuntimeError::CheckpointIo { round, message } => {
                write!(f, "checkpoint write failed after round {round}: {message}")
            }
            RuntimeError::CheckpointFormat { message } => {
                write!(f, "malformed checkpoint: {message}")
            }
            RuntimeError::CheckpointVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build supports {supported})"
            ),
            RuntimeError::CheckpointMismatch { message } => {
                write!(f, "checkpoint does not match the graph: {message}")
            }
            RuntimeError::ClusterFailed { message } => {
                write!(f, "distributed cluster failed: {message}")
            }
            RuntimeError::StoreFailed { path, op, message } => {
                write!(f, "durable store {op} failed for {path}: {message}")
            }
            RuntimeError::ResourceExhausted { resource, limit, observed } => write!(
                f,
                "resource budget exhausted: {resource}: observed {observed} exceeds limit {limit}"
            ),
            RuntimeError::CheckpointCorrupt { path, offset, message } => {
                write!(f, "corrupt checkpoint {path} (byte {offset}): {message}")
            }
        }
    }
}

impl Error for RuntimeError {}

/// Per-run plumbing shared by the pruning loop and the sweep workers: the
/// cancellation token budgets arm, the fault injector tests arm, and the
/// current 1-based round for diagnostics.
#[derive(Debug, Clone)]
pub(crate) struct RunContext {
    pub(crate) token: kl::CancelToken,
    pub(crate) injector: crate::faults::FaultInjector,
    pub(crate) round: usize,
    /// Metrics registry shared by the pruning loop and every sweep worker;
    /// `None` keeps the unmonitored hot path allocation-free.
    pub(crate) obs: Option<rejecto_obs::Obs>,
}

impl RunContext {
    /// A context with no budgets armed and no faults planned — the exact
    /// legacy code path.
    pub(crate) fn unmonitored() -> Self {
        RunContext {
            token: kl::CancelToken::new(),
            injector: crate::faults::FaultInjector::new(&crate::faults::FaultPlan::default()),
            round: 0,
            obs: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position_context() {
        let e = RuntimeError::WorkerFailed {
            round: 2,
            k_index: 3,
            message: "injected worker panic".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("round 2"), "missing round in: {s}");
        assert!(s.contains("k index 3"), "missing k index in: {s}");

        let v = RuntimeError::CheckpointVersion { found: 9, supported: 1 };
        assert!(v.to_string().contains("version 9"));

        let c = RuntimeError::ClusterFailed { message: "all workers lost".to_string() };
        assert!(c.to_string().contains("all workers lost"));

        let r = RuntimeError::ResourceExhausted { resource: "nodes", limit: 8, observed: 9 };
        let s = r.to_string();
        assert!(s.contains("nodes"), "{s}");
        assert!(s.contains("9 exceeds limit 8"), "{s}");
    }
}
