//! Resource budgets: hard ceilings on how much an input may make the
//! runtime allocate.
//!
//! Rejecto's input graph is *attacker-shaped* (PAPER.md §1): fakes control
//! a large fraction of the edges they appear in, and a hostile operator
//! export (or a corrupted one) can declare absurd node counts, repeat
//! edges without bound, or inflate checkpoint artifacts. The existing
//! [`crate::RunBudget`] bounds *time* (deadline, passes, rounds); a
//! [`ResourceBudget`] bounds *space and structure*. Where `RunBudget`
//! trips become [`crate::Completion::Partial`], `ResourceBudget` trips on
//! ingest become the typed
//! [`crate::RuntimeError::ResourceExhausted`] — refusing the input is the
//! only safe degradation before anything was computed — while the
//! in-loop `max_suspect_frac` trip rolls the round back and reports
//! `Partial`, exactly like a round budget.

use rejection::io::IngestGuards;

/// Optional ceilings on input size and in-run growth. The default is
/// fully unlimited, which reproduces the historical behavior exactly.
///
/// Threaded alongside [`crate::RunBudget`] through the loaders (via
/// [`ResourceBudget::ingest_guards`]), the checkpoint store
/// (`max_checkpoint_bytes`), and the detection loop (`max_suspect_frac`).
/// Surfaced on the CLI as `--max-nodes`, `--max-edges`,
/// `--max-rejections`, `--max-checkpoint-bytes`, `--max-suspect-frac`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceBudget {
    /// Maximum node count an input may declare.
    pub max_nodes: Option<u64>,
    /// Maximum friendship-edge lines an input may carry.
    pub max_edges: Option<u64>,
    /// Maximum rejection-edge lines an input may carry.
    pub max_rejections: Option<u64>,
    /// Maximum size of a checkpoint artifact, both when writing and before
    /// a resume reads one back (gated on file metadata, before the bytes
    /// are loaded).
    pub max_checkpoint_bytes: Option<u64>,
    /// Hard ceiling on the cumulative suspect fraction across pruning
    /// rounds: if accepting a round's cut would push
    /// `total suspects / initial nodes` past this, the round is rolled
    /// back and the run reports `Partial`. Distinct from
    /// [`crate::RejectoConfig::max_suspect_fraction`], which discards
    /// individual over-wide *candidate cuts* inside a sweep; this budget
    /// bounds what the whole run may condemn.
    pub max_suspect_frac: Option<f64>,
}

impl ResourceBudget {
    /// No ceilings — the historical run-anything behavior.
    #[must_use]
    pub fn unlimited() -> Self {
        ResourceBudget::default()
    }

    /// Whether any ceiling is armed.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.max_nodes.is_some()
            || self.max_edges.is_some()
            || self.max_rejections.is_some()
            || self.max_checkpoint_bytes.is_some()
            || self.max_suspect_frac.is_some()
    }

    /// The loader-side guards this budget implies (node/edge/rejection
    /// ceilings; conflict rejection stays a separate loader policy).
    #[must_use]
    pub fn ingest_guards(&self) -> IngestGuards {
        IngestGuards {
            max_nodes: self.max_nodes,
            max_friendships: self.max_edges,
            max_rejections: self.max_rejections,
            reject_conflicts: false,
        }
    }

    /// Translates a loader budget failure into the runtime taxonomy,
    /// passing every other loader error through unchanged.
    pub fn runtime_error_from_ingest(
        e: &rejection::io::AugmentedIoError,
    ) -> Option<crate::RuntimeError> {
        match e {
            rejection::io::AugmentedIoError::ResourceExhausted { resource, limit, observed } => {
                Some(crate::RuntimeError::ResourceExhausted {
                    resource,
                    limit: *limit,
                    observed: *observed,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(!ResourceBudget::default().is_limited());
        assert!(!ResourceBudget::unlimited().is_limited());
        assert!(!ResourceBudget::default().ingest_guards().is_active());
    }

    #[test]
    fn each_ceiling_arms_the_budget() {
        let cases = [
            ResourceBudget { max_nodes: Some(1), ..ResourceBudget::default() },
            ResourceBudget { max_edges: Some(1), ..ResourceBudget::default() },
            ResourceBudget { max_rejections: Some(1), ..ResourceBudget::default() },
            ResourceBudget { max_checkpoint_bytes: Some(1), ..ResourceBudget::default() },
            ResourceBudget { max_suspect_frac: Some(0.5), ..ResourceBudget::default() },
        ];
        for b in cases {
            assert!(b.is_limited(), "{b:?}");
        }
    }

    #[test]
    fn ingest_guards_carry_the_loader_ceilings() {
        let b = ResourceBudget {
            max_nodes: Some(10),
            max_edges: Some(20),
            max_rejections: Some(30),
            ..ResourceBudget::default()
        };
        let g = b.ingest_guards();
        assert_eq!(g.max_nodes, Some(10));
        assert_eq!(g.max_friendships, Some(20));
        assert_eq!(g.max_rejections, Some(30));
        assert!(!g.reject_conflicts);
    }

    #[test]
    fn ingest_budget_errors_map_into_the_runtime_taxonomy() {
        let e = rejection::io::AugmentedIoError::ResourceExhausted {
            resource: "nodes",
            limit: 4,
            observed: 5,
        };
        assert_eq!(
            ResourceBudget::runtime_error_from_ingest(&e),
            Some(crate::RuntimeError::ResourceExhausted {
                resource: "nodes",
                limit: 4,
                observed: 5
            })
        );
        let other = rejection::io::AugmentedIoError::BadHeader { found: "x".to_string() };
        assert_eq!(ResourceBudget::runtime_error_from_ingest(&other), None);
    }
}
