//! Deterministic fault injection for the detection runtime.
//!
//! The fault-tolerance contract (worker panics become
//! [`crate::RuntimeError::WorkerFailed`], lost checkpoints become
//! [`crate::RuntimeError::CheckpointIo`], deadlines become `Partial`
//! reports) is only trustworthy if it is *exercised*, and real faults are
//! rare and nondeterministic. This module arms synthetic faults that fire
//! at exact, reproducible points — a named sweep index, a named pruning
//! round, a fixed deadline — so `crates/core/tests/faults.rs` and the CI
//! fault matrix can assert the degraded outputs byte-for-byte.
//!
//! A plan is declarative ([`FaultPlan`], parsed from
//! `--inject worker_panic@k=3,io_error@round=2,deadline=50ms` or the
//! `REJECTO_INJECT` environment variable) and carried in
//! [`crate::RejectoConfig::faults`]; the runtime consults a shared
//! [`FaultInjector`] built from it. An empty plan is free: every probe is
//! a single cheap check against an empty table.

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One synthetic fault at a deterministic trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Panic inside the sweep worker solving sweep index `k_index`.
    /// One-shot by default (the deterministic retry then succeeds, proving
    /// retry-equality); `persistent` also panics on every retry (proving
    /// the degraded-report path).
    WorkerPanic {
        /// Sweep index whose worker panics.
        k_index: usize,
        /// Whether the retry panics too.
        persistent: bool,
    },
    /// Fail the checkpoint write after pruning round `round` (1-based)
    /// with a synthetic I/O error.
    CheckpointIoError {
        /// Round whose checkpoint write fails.
        round: usize,
    },
    /// Arm a wall-clock deadline of `millis` milliseconds on the run, as
    /// if [`crate::RunBudget::deadline`] had been set.
    Deadline {
        /// Deadline in milliseconds.
        millis: u64,
    },
}

/// A declarative list of faults to arm for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Parses the CLI/env injection syntax: a comma-separated list of
    /// `worker_panic@k=<i>`, `worker_panic@k=<i>:always`,
    /// `io_error@round=<r>`, and `deadline=<ms>ms` specs. An empty string
    /// parses to the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed spec.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(rest) = part.strip_prefix("worker_panic@k=") {
                let (num, persistent) = match rest.strip_suffix(":always") {
                    Some(n) => (n, true),
                    None => (rest, false),
                };
                let k_index = num.parse::<usize>().map_err(|_| {
                    format!("bad sweep index in `{part}`: expected worker_panic@k=<index>")
                })?;
                plan.push(Fault::WorkerPanic { k_index, persistent });
            } else if let Some(rest) = part.strip_prefix("io_error@round=") {
                let round = rest.parse::<usize>().map_err(|_| {
                    format!("bad round in `{part}`: expected io_error@round=<round>")
                })?;
                if round == 0 {
                    return Err(format!("bad round in `{part}`: rounds are 1-based"));
                }
                plan.push(Fault::CheckpointIoError { round });
            } else if let Some(rest) = part.strip_prefix("deadline=") {
                let digits = rest.strip_suffix("ms").unwrap_or(rest);
                let millis = digits.parse::<u64>().map_err(|_| {
                    format!("bad deadline in `{part}`: expected deadline=<millis>ms")
                })?;
                plan.push(Fault::Deadline { millis });
            } else {
                return Err(format!(
                    "unknown fault `{part}`: expected worker_panic@k=<i>[:always], \
                     io_error@round=<r>, or deadline=<ms>ms"
                ));
            }
        }
        Ok(plan)
    }

    /// Reads a plan from the `REJECTO_INJECT` environment variable; unset
    /// or empty means the empty plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("REJECTO_INJECT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }
}

#[derive(Debug)]
struct ArmedPanic {
    k_index: usize,
    persistent: bool,
    spent: bool,
}

#[derive(Debug)]
struct ArmedIoError {
    round: usize,
    spent: bool,
}

#[derive(Debug)]
struct InjectorState {
    panics: Vec<ArmedPanic>,
    io_errors: Vec<ArmedIoError>,
}

/// The runtime side of a [`FaultPlan`]: probes the workers and the
/// checkpoint sink call at their trigger points. Clones share state, so a
/// one-shot fault fires exactly once per run no matter how many workers
/// probe it concurrently.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    inner: Arc<Mutex<InjectorState>>,
    deadline: Option<Duration>,
}

impl FaultInjector {
    /// Arms every fault in `plan` for one run.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let mut panics = Vec::new();
        let mut io_errors = Vec::new();
        let mut deadline: Option<Duration> = None;
        for &fault in plan.faults() {
            match fault {
                Fault::WorkerPanic { k_index, persistent } => {
                    panics.push(ArmedPanic { k_index, persistent, spent: false });
                }
                Fault::CheckpointIoError { round } => {
                    io_errors.push(ArmedIoError { round, spent: false });
                }
                Fault::Deadline { millis } => {
                    let d = Duration::from_millis(millis);
                    deadline = Some(deadline.map_or(d, |prev| prev.min(d)));
                }
            }
        }
        FaultInjector {
            inner: Arc::new(Mutex::new(InjectorState { panics, io_errors })),
            deadline,
        }
    }

    /// The injected wall-clock deadline, if the plan armed one.
    pub(crate) fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the worker solving sweep index `k_index` should panic now.
    /// One-shot faults are consumed by the first probe that fires.
    pub(crate) fn should_panic(&self, k_index: usize) -> bool {
        let mut state = self.inner.lock().expect("fault-injector mutex poisoned");
        for armed in &mut state.panics {
            if armed.k_index != k_index {
                continue;
            }
            if armed.persistent {
                return true;
            }
            if !armed.spent {
                armed.spent = true;
                return true;
            }
        }
        false
    }

    /// Whether the checkpoint write after `round` should fail. Consumed by
    /// the first probe that fires.
    pub(crate) fn should_fail_checkpoint(&self, round: usize) -> bool {
        let mut state = self.inner.lock().expect("fault-injector mutex poisoned");
        for armed in &mut state.io_errors {
            if armed.round == round && !armed.spent {
                armed.spent = true;
                return true;
            }
        }
        false
    }
}

/// Trips an injected worker panic. The single sanctioned `panic!` of the
/// runtime path: it exists to *test* the panic-catching machinery, and the
/// pool converts it straight back into a [`crate::RuntimeError`].
pub(crate) fn trigger_injected_panic(k_index: usize) -> ! {
    panic!("injected worker panic at sweep index {k_index}") // xtask-allow: no-panic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_syntax() {
        let plan = FaultPlan::parse("worker_panic@k=3,io_error@round=2,deadline=50ms")
            .expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[
                Fault::WorkerPanic { k_index: 3, persistent: false },
                Fault::CheckpointIoError { round: 2 },
                Fault::Deadline { millis: 50 },
            ]
        );
    }

    #[test]
    fn parses_persistent_panics_and_bare_deadlines() {
        let plan =
            FaultPlan::parse("worker_panic@k=0:always, deadline=120").expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[
                Fault::WorkerPanic { k_index: 0, persistent: true },
                Fault::Deadline { millis: 120 },
            ]
        );
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert!(FaultPlan::parse("").expect("empty spec parses").is_empty());
        assert!(FaultPlan::parse(" , ").expect("blank items parse").is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in ["worker_panic@k=x", "io_error@round=0", "io_error@round=", "boom", "deadline=fast"] {
            let err = FaultPlan::parse(bad).expect_err("spec must be rejected");
            assert!(err.contains(bad.split('=').next().unwrap_or(bad)), "{bad}: {err}");
        }
    }

    #[test]
    fn one_shot_panic_fires_exactly_once() {
        let plan = FaultPlan::parse("worker_panic@k=2").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        assert!(!inj.should_panic(1));
        assert!(inj.should_panic(2));
        assert!(!inj.should_panic(2), "one-shot fault must be consumed");
    }

    #[test]
    fn persistent_panic_keeps_firing() {
        let plan = FaultPlan::parse("worker_panic@k=2:always").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        assert!(inj.should_panic(2));
        assert!(inj.should_panic(2));
    }

    #[test]
    fn clones_share_consumption_state() {
        let plan = FaultPlan::parse("io_error@round=1").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        let clone = inj.clone();
        assert!(clone.should_fail_checkpoint(1));
        assert!(!inj.should_fail_checkpoint(1), "clone must consume the shared fault");
    }

    #[test]
    fn tightest_injected_deadline_wins() {
        let plan = FaultPlan::parse("deadline=80ms,deadline=50ms,deadline=90ms")
            .expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.deadline(), Some(Duration::from_millis(50)));
    }
}
