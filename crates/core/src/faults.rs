//! Deterministic fault injection for the detection runtime.
//!
//! The fault-tolerance contract (worker panics become
//! [`crate::RuntimeError::WorkerFailed`], lost checkpoints become
//! [`crate::RuntimeError::CheckpointIo`], deadlines become `Partial`
//! reports) is only trustworthy if it is *exercised*, and real faults are
//! rare and nondeterministic. This module arms synthetic faults that fire
//! at exact, reproducible points — a named sweep index, a named pruning
//! round, a fixed deadline — so `crates/core/tests/faults.rs` and the CI
//! fault matrix can assert the degraded outputs byte-for-byte.
//!
//! A plan is declarative ([`FaultPlan`], parsed from
//! `--inject worker_panic@k=3,io_error@round=2,deadline=50ms` or the
//! `REJECTO_INJECT` environment variable) and carried in
//! [`crate::RejectoConfig::faults`]; the runtime consults a shared
//! [`FaultInjector`] built from it. An empty plan is free: every probe is
//! a single cheap check against an empty table.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One synthetic fault at a deterministic trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Panic inside the sweep worker solving sweep index `k_index`.
    /// One-shot by default (the deterministic retry then succeeds, proving
    /// retry-equality); `persistent` also panics on every retry (proving
    /// the degraded-report path).
    WorkerPanic {
        /// Sweep index whose worker panics.
        k_index: usize,
        /// Whether the retry panics too.
        persistent: bool,
    },
    /// Fail the checkpoint write after pruning round `round` (1-based)
    /// with a synthetic I/O error.
    CheckpointIoError {
        /// Round whose checkpoint write fails.
        round: usize,
    },
    /// Arm a wall-clock deadline of `millis` milliseconds on the run, as
    /// if [`crate::RunBudget::deadline`] had been set.
    Deadline {
        /// Deadline in milliseconds.
        millis: u64,
    },
    /// Kill a distributed worker immediately before the cluster's
    /// `fetch`-numbered fetch batch (1-based), `deaths` times in a row —
    /// each lineage respawn dies again until the schedule is spent, so
    /// `deaths` larger than the cluster's respawn budget exercises shard
    /// rebalancing. Parsed from `worker_death@fetch=<n>[:x<m>]`.
    WorkerDeath {
        /// 1-based fetch batch at which the schedule starts firing.
        fetch: u64,
        /// Consecutive deaths (respawns that die again); at least 1.
        deaths: u32,
    },
    /// Make one master↔worker request during sweep index `k_index` hang
    /// (the request is swallowed, the worker never answers), so the
    /// per-request watchdog — not channel disconnection — must detect it.
    /// One-shot. Parsed from `worker_hang@k=<i>`.
    WorkerHang {
        /// Sweep index during which one request hangs.
        k_index: usize,
    },
    /// Tear the durable write of the checkpoint generation for round
    /// `round` (1-based): only the first half of the framed bytes reach
    /// disk, as if the process died mid-write on a filesystem without the
    /// atomic-rename protocol. Parsed from `torn_write@round=<r>`;
    /// consumed by [`crate::StoreFaults`].
    TornWrite {
        /// 1-based round whose generation file is truncated.
        round: usize,
    },
    /// Flip one bit in the middle of the framed checkpoint generation for
    /// round `round` (1-based) before it reaches disk — silent media
    /// corruption that only the CRC32 envelope can catch. Parsed from
    /// `bit_flip@round=<r>`; consumed by [`crate::StoreFaults`].
    BitFlip {
        /// 1-based round whose generation file is corrupted.
        round: usize,
    },
}

impl Fault {
    /// The injection point this fault occupies, as a `(kind, position)`
    /// key. [`FaultPlan::parse`] rejects two directives with the same key:
    /// which one "wins" would otherwise be silent order-dependence. Both
    /// store mangles share a key — the checkpoint store consumes exactly
    /// one mangle per generation write, so `torn_write` and `bit_flip` at
    /// the same round *conflict* rather than compose. Likewise only one
    /// deadline directive is admitted; "tightest wins" stays documented
    /// behavior for plans built programmatically via [`FaultPlan::push`].
    pub(crate) fn injection_point(&self) -> (&'static str, u64) {
        match *self {
            Fault::WorkerPanic { k_index, .. } => {
                ("worker_panic", u64::try_from(k_index).expect("sweep index fits in u64"))
            }
            Fault::CheckpointIoError { round } => {
                ("io_error", u64::try_from(round).expect("round fits in u64"))
            }
            Fault::Deadline { .. } => ("deadline", 0),
            Fault::WorkerDeath { fetch, .. } => ("worker_death", fetch),
            Fault::WorkerHang { k_index } => {
                ("worker_hang", u64::try_from(k_index).expect("sweep index fits in u64"))
            }
            Fault::TornWrite { round } | Fault::BitFlip { round } => {
                ("store mangle", u64::try_from(round).expect("round fits in u64"))
            }
        }
    }
}

impl fmt::Display for Fault {
    /// Renders the exact [`FaultPlan::parse`] grammar, so plans round-trip:
    /// `parse(plan.to_string()) == plan` for every parseable plan.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::WorkerPanic { k_index, persistent: false } => {
                write!(f, "worker_panic@k={k_index}")
            }
            Fault::WorkerPanic { k_index, persistent: true } => {
                write!(f, "worker_panic@k={k_index}:always")
            }
            Fault::CheckpointIoError { round } => write!(f, "io_error@round={round}"),
            Fault::Deadline { millis } => write!(f, "deadline={millis}ms"),
            Fault::WorkerDeath { fetch, deaths: 1 } => write!(f, "worker_death@fetch={fetch}"),
            Fault::WorkerDeath { fetch, deaths } => {
                write!(f, "worker_death@fetch={fetch}:x{deaths}")
            }
            Fault::WorkerHang { k_index } => write!(f, "worker_hang@k={k_index}"),
            Fault::TornWrite { round } => write!(f, "torn_write@round={round}"),
            Fault::BitFlip { round } => write!(f, "bit_flip@round={round}"),
        }
    }
}

/// A declarative list of faults to arm for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl fmt::Display for FaultPlan {
    /// The comma-separated [`FaultPlan::parse`] syntax; the empty plan
    /// renders as the empty string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a fault to the plan. Unlike [`FaultPlan::parse`], `push` does
    /// not police injection-point conflicts: programmatic plans may rely
    /// on documented runtime semantics (e.g. tightest-deadline-wins).
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// [`FaultPlan::push`] for parsed directives: rejects a fault whose
    /// injection point an earlier directive already claimed, instead of
    /// the silent last-wins (or first-wins, depending on the consumer)
    /// order-dependence the plan text would otherwise have.
    fn push_directive(&mut self, fault: Fault, part: &str) -> Result<(), String> {
        let key = fault.injection_point();
        if let Some(prior) = self.faults.iter().find(|f| f.injection_point() == key) {
            return Err(format!(
                "conflicting directive `{part}`: `{prior}` already arms the \
                 {} injection point",
                key.0
            ));
        }
        self.faults.push(fault);
        Ok(())
    }

    /// Parses the CLI/env injection syntax: a comma-separated list of
    /// `worker_panic@k=<i>`, `worker_panic@k=<i>:always`,
    /// `io_error@round=<r>`, `deadline=<ms>ms`, the distributed forms
    /// `worker_death@fetch=<n>[:x<m>]` (a repeated-death schedule) and
    /// `worker_hang@k=<i>`, and the durable-store forms
    /// `torn_write@round=<r>` and `bit_flip@round=<r>`. An empty string
    /// parses to the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed spec.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(rest) = part.strip_prefix("worker_panic@k=") {
                let (num, persistent) = match rest.strip_suffix(":always") {
                    Some(n) => (n, true),
                    None => (rest, false),
                };
                let k_index = num.parse::<usize>().map_err(|_| {
                    format!("bad sweep index in `{part}`: expected worker_panic@k=<index>")
                })?;
                plan.push_directive(Fault::WorkerPanic { k_index, persistent }, part)?;
            } else if let Some(rest) = part.strip_prefix("io_error@round=") {
                let round = rest.parse::<usize>().map_err(|_| {
                    format!("bad round in `{part}`: expected io_error@round=<round>")
                })?;
                if round == 0 {
                    return Err(format!("bad round in `{part}`: rounds are 1-based"));
                }
                plan.push_directive(Fault::CheckpointIoError { round }, part)?;
            } else if let Some(rest) = part.strip_prefix("deadline=") {
                let digits = rest.strip_suffix("ms").unwrap_or(rest);
                let millis = digits.parse::<u64>().map_err(|_| {
                    format!("bad deadline in `{part}`: expected deadline=<millis>ms")
                })?;
                plan.push_directive(Fault::Deadline { millis }, part)?;
            } else if let Some(rest) = part.strip_prefix("worker_death@fetch=") {
                let (num, deaths) = match rest.split_once(":x") {
                    Some((n, m)) => {
                        let deaths = m.parse::<u32>().map_err(|_| {
                            format!(
                                "bad repeat count in `{part}`: expected \
                                 worker_death@fetch=<n>:x<m>"
                            )
                        })?;
                        if deaths == 0 {
                            return Err(format!(
                                "bad repeat count in `{part}`: at least one death"
                            ));
                        }
                        (n, deaths)
                    }
                    None => (rest, 1),
                };
                let fetch = num.parse::<u64>().map_err(|_| {
                    format!(
                        "bad fetch number in `{part}`: expected \
                         worker_death@fetch=<n> or worker_death@fetch=<n>:x<m>"
                    )
                })?;
                if fetch == 0 {
                    return Err(format!("bad fetch number in `{part}`: fetches are 1-based"));
                }
                plan.push_directive(Fault::WorkerDeath { fetch, deaths }, part)?;
            } else if let Some(rest) = part.strip_prefix("worker_hang@k=") {
                let k_index = rest.parse::<usize>().map_err(|_| {
                    format!("bad sweep index in `{part}`: expected worker_hang@k=<index>")
                })?;
                plan.push_directive(Fault::WorkerHang { k_index }, part)?;
            } else if let Some(rest) = part.strip_prefix("torn_write@round=") {
                let round = rest.parse::<usize>().map_err(|_| {
                    format!("bad round in `{part}`: expected torn_write@round=<round>")
                })?;
                if round == 0 {
                    return Err(format!("bad round in `{part}`: rounds are 1-based"));
                }
                plan.push_directive(Fault::TornWrite { round }, part)?;
            } else if let Some(rest) = part.strip_prefix("bit_flip@round=") {
                let round = rest.parse::<usize>().map_err(|_| {
                    format!("bad round in `{part}`: expected bit_flip@round=<round>")
                })?;
                if round == 0 {
                    return Err(format!("bad round in `{part}`: rounds are 1-based"));
                }
                plan.push_directive(Fault::BitFlip { round }, part)?;
            } else {
                return Err(format!(
                    "unknown fault `{part}`: expected worker_panic@k=<i>[:always], \
                     io_error@round=<r>, deadline=<ms>ms, \
                     worker_death@fetch=<n>[:x<m>], worker_hang@k=<i>, \
                     torn_write@round=<r>, or bit_flip@round=<r>"
                ));
            }
        }
        Ok(plan)
    }

    /// Reads a plan from the `REJECTO_INJECT` environment variable; unset
    /// or empty means the empty plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("REJECTO_INJECT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }
}

#[derive(Debug)]
struct ArmedPanic {
    k_index: usize,
    persistent: bool,
    spent: bool,
}

#[derive(Debug)]
struct ArmedIoError {
    round: usize,
    spent: bool,
}

#[derive(Debug)]
struct InjectorState {
    panics: Vec<ArmedPanic>,
    io_errors: Vec<ArmedIoError>,
}

/// The runtime side of a [`FaultPlan`]: probes the workers and the
/// checkpoint sink call at their trigger points. Clones share state, so a
/// one-shot fault fires exactly once per run no matter how many workers
/// probe it concurrently.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    inner: Arc<Mutex<InjectorState>>,
    deadline: Option<Duration>,
}

impl FaultInjector {
    /// Arms every fault in `plan` for one run.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let mut panics = Vec::new();
        let mut io_errors = Vec::new();
        let mut deadline: Option<Duration> = None;
        for &fault in plan.faults() {
            match fault {
                Fault::WorkerPanic { k_index, persistent } => {
                    panics.push(ArmedPanic { k_index, persistent, spent: false });
                }
                Fault::CheckpointIoError { round } => {
                    io_errors.push(ArmedIoError { round, spent: false });
                }
                Fault::Deadline { millis } => {
                    let d = Duration::from_millis(millis);
                    deadline = Some(deadline.map_or(d, |prev| prev.min(d)));
                }
                // Distributed-only injection points; the single-process
                // runtime has no fetches or cluster requests to kill.
                // They are consumed by [`ClusterFaults`] instead.
                Fault::WorkerDeath { .. } | Fault::WorkerHang { .. } => {}
                // Durable-store injection points, consumed by
                // [`StoreFaults`] in the checkpoint store.
                Fault::TornWrite { .. } | Fault::BitFlip { .. } => {}
            }
        }
        FaultInjector {
            inner: Arc::new(Mutex::new(InjectorState { panics, io_errors })),
            deadline,
        }
    }

    /// The injected wall-clock deadline, if the plan armed one.
    pub(crate) fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the worker solving sweep index `k_index` should panic now.
    /// One-shot faults are consumed by the first probe that fires.
    pub(crate) fn should_panic(&self, k_index: usize) -> bool {
        let mut state = self.inner.lock().expect("fault-injector mutex poisoned");
        for armed in &mut state.panics {
            if armed.k_index != k_index {
                continue;
            }
            if armed.persistent {
                return true;
            }
            if !armed.spent {
                armed.spent = true;
                return true;
            }
        }
        false
    }

    /// Whether the checkpoint write after `round` should fail. Consumed by
    /// the first probe that fires.
    pub(crate) fn should_fail_checkpoint(&self, round: usize) -> bool {
        let mut state = self.inner.lock().expect("fault-injector mutex poisoned");
        for armed in &mut state.io_errors {
            if armed.round == round && !armed.spent {
                armed.spent = true;
                return true;
            }
        }
        false
    }
}

#[derive(Debug)]
struct ArmedDeath {
    fetch: u64,
    deaths: u32,
    spent: bool,
}

#[derive(Debug)]
struct ArmedHang {
    k_index: usize,
    spent: bool,
}

#[derive(Debug)]
struct ClusterFaultState {
    deaths: Vec<ArmedDeath>,
    hangs: Vec<ArmedHang>,
}

/// The distributed-runtime side of a [`FaultPlan`]: the cluster master
/// probes it at fetch batches and sweep boundaries. Public (unlike the
/// crate-private [`FaultInjector`]) because the probing runtime lives in
/// `crates/dataflow`, outside this crate.
///
/// Clones share consumption state, so a schedule fires exactly once per
/// run regardless of how many rounds or clusters probe it.
#[derive(Debug, Clone)]
pub struct ClusterFaults {
    inner: Arc<Mutex<ClusterFaultState>>,
    deadline: Option<Duration>,
}

impl Default for ClusterFaults {
    fn default() -> Self {
        ClusterFaults::new(&FaultPlan::default())
    }
}

impl ClusterFaults {
    /// Arms the distributed faults (and the injected deadline) of `plan`.
    /// Non-distributed faults in the plan are ignored here.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut deaths = Vec::new();
        let mut hangs = Vec::new();
        let mut deadline: Option<Duration> = None;
        for &fault in plan.faults() {
            match fault {
                Fault::WorkerDeath { fetch, deaths: n } => {
                    deaths.push(ArmedDeath { fetch, deaths: n, spent: false });
                }
                Fault::WorkerHang { k_index } => {
                    hangs.push(ArmedHang { k_index, spent: false });
                }
                Fault::Deadline { millis } => {
                    let d = Duration::from_millis(millis);
                    deadline = Some(deadline.map_or(d, |prev| prev.min(d)));
                }
                // Single-process injection points, consumed by the
                // crate-private [`FaultInjector`]; store-level mangles
                // are consumed by [`StoreFaults`].
                Fault::WorkerPanic { .. }
                | Fault::CheckpointIoError { .. }
                | Fault::TornWrite { .. }
                | Fault::BitFlip { .. } => {}
            }
        }
        ClusterFaults {
            inner: Arc::new(Mutex::new(ClusterFaultState { deaths, hangs })),
            deadline,
        }
    }

    /// The injected wall-clock deadline, if the plan armed one.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the plan injects nothing distributed (no deaths, no hangs).
    pub fn is_empty(&self) -> bool {
        let state = self.inner.lock().expect("cluster-fault mutex poisoned");
        state.deaths.is_empty() && state.hangs.is_empty()
    }

    /// Consecutive worker deaths scheduled to start at fetch batch
    /// `fetch_seq` (1-based). Consumes the matching schedule: it fires for
    /// exactly one fetch batch per run.
    pub fn deaths_at(&self, fetch_seq: u64) -> u32 {
        let mut state = self.inner.lock().expect("cluster-fault mutex poisoned");
        let mut total = 0;
        for armed in &mut state.deaths {
            if armed.fetch == fetch_seq && !armed.spent {
                armed.spent = true;
                total += armed.deaths;
            }
        }
        total
    }

    /// Whether one request of sweep index `k_index` should hang. One-shot:
    /// consumed by the first probe that fires.
    pub fn take_hang(&self, k_index: usize) -> bool {
        let mut state = self.inner.lock().expect("cluster-fault mutex poisoned");
        for armed in &mut state.hangs {
            if armed.k_index == k_index && !armed.spent {
                armed.spent = true;
                return true;
            }
        }
        false
    }
}

/// How an armed store fault corrupts a just-encoded frame. The store
/// applies it to the in-memory bytes right before the atomic write, so the
/// corruption is deterministic and the write path itself stays honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mangle {
    /// Keep only the first half of the bytes (a torn write).
    TornWrite,
    /// XOR the low bit of the middle byte (silent media corruption).
    BitFlip,
}

#[derive(Debug)]
struct ArmedMangle {
    round: usize,
    mangle: Mangle,
    spent: bool,
}

/// The durable-store side of a [`FaultPlan`]: the checkpoint store probes
/// it once per generation write. Public because the CLI builds the store
/// and arms it from the parsed plan.
///
/// Clones share consumption state, so a mangle fires exactly once per run
/// no matter how many saves probe it.
#[derive(Debug, Clone)]
pub struct StoreFaults {
    inner: Arc<Mutex<Vec<ArmedMangle>>>,
}

impl Default for StoreFaults {
    fn default() -> Self {
        StoreFaults::new(&FaultPlan::default())
    }
}

impl StoreFaults {
    /// Arms the store-level faults of `plan` (`torn_write@round=N`,
    /// `bit_flip@round=N`). Other faults in the plan are ignored here.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut armed = Vec::new();
        for &fault in plan.faults() {
            match fault {
                Fault::TornWrite { round } => {
                    armed.push(ArmedMangle { round, mangle: Mangle::TornWrite, spent: false });
                }
                Fault::BitFlip { round } => {
                    armed.push(ArmedMangle { round, mangle: Mangle::BitFlip, spent: false });
                }
                _ => {}
            }
        }
        StoreFaults { inner: Arc::new(Mutex::new(armed)) }
    }

    /// Whether the plan arms no store-level faults.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("store-fault mutex poisoned").is_empty()
    }

    /// The mangle armed for the generation of `round`, if any. One-shot:
    /// consumed by the first save that writes that round's generation.
    pub fn take_mangle(&self, round: usize) -> Option<Mangle> {
        let mut state = self.inner.lock().expect("store-fault mutex poisoned");
        for armed in state.iter_mut() {
            if armed.round == round && !armed.spent {
                armed.spent = true;
                return Some(armed.mangle);
            }
        }
        None
    }
}

/// Trips an injected worker panic. The single sanctioned `panic!` of the
/// runtime path: it exists to *test* the panic-catching machinery, and the
/// pool converts it straight back into a [`crate::RuntimeError`].
pub(crate) fn trigger_injected_panic(k_index: usize) -> ! {
    panic!("injected worker panic at sweep index {k_index}") // xtask-allow: no-panic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_syntax() {
        let plan = FaultPlan::parse("worker_panic@k=3,io_error@round=2,deadline=50ms")
            .expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[
                Fault::WorkerPanic { k_index: 3, persistent: false },
                Fault::CheckpointIoError { round: 2 },
                Fault::Deadline { millis: 50 },
            ]
        );
    }

    #[test]
    fn parses_persistent_panics_and_bare_deadlines() {
        let plan =
            FaultPlan::parse("worker_panic@k=0:always, deadline=120").expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[
                Fault::WorkerPanic { k_index: 0, persistent: true },
                Fault::Deadline { millis: 120 },
            ]
        );
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert!(FaultPlan::parse("").expect("empty spec parses").is_empty());
        assert!(FaultPlan::parse(" , ").expect("blank items parse").is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "worker_panic@k=x",
            "io_error@round=0",
            "io_error@round=",
            "boom",
            "deadline=fast",
            "worker_death@fetch=0",
            "worker_death@fetch=x",
            "worker_death@fetch=3:x0",
            "worker_death@fetch=3:xq",
            "worker_hang@k=",
            "torn_write@round=0",
            "torn_write@round=x",
            "bit_flip@round=0",
            "bit_flip@round=",
        ] {
            let err = FaultPlan::parse(bad).expect_err("spec must be rejected");
            assert!(err.contains(bad.split('=').next().unwrap_or(bad)), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_the_distributed_forms() {
        let plan = FaultPlan::parse("worker_death@fetch=7,worker_death@fetch=2:x5,worker_hang@k=3")
            .expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[
                Fault::WorkerDeath { fetch: 7, deaths: 1 },
                Fault::WorkerDeath { fetch: 2, deaths: 5 },
                Fault::WorkerHang { k_index: 3 },
            ]
        );
    }

    #[test]
    fn parses_the_store_forms() {
        let plan = FaultPlan::parse("torn_write@round=2,bit_flip@round=3")
            .expect("spec is well-formed");
        assert_eq!(
            plan.faults(),
            &[Fault::TornWrite { round: 2 }, Fault::BitFlip { round: 3 }]
        );
    }

    #[test]
    fn store_faults_are_one_shot_and_shared() {
        let plan = FaultPlan::parse("torn_write@round=2,bit_flip@round=4")
            .expect("spec is well-formed");
        let faults = StoreFaults::new(&plan);
        let clone = faults.clone();
        assert!(!faults.is_empty());
        assert_eq!(faults.take_mangle(1), None);
        assert_eq!(clone.take_mangle(2), Some(Mangle::TornWrite));
        assert_eq!(faults.take_mangle(2), None, "clone must consume the shared mangle");
        assert_eq!(faults.take_mangle(4), Some(Mangle::BitFlip));
    }

    #[test]
    fn store_faults_ignore_other_fault_kinds() {
        let plan = FaultPlan::parse("worker_panic@k=1,worker_death@fetch=2")
            .expect("spec is well-formed");
        assert!(StoreFaults::new(&plan).is_empty());
    }

    #[test]
    fn injectors_ignore_store_faults() {
        let plan = FaultPlan::parse("torn_write@round=1,bit_flip@round=2")
            .expect("spec is well-formed");
        assert!(ClusterFaults::new(&plan).is_empty());
        let inj = FaultInjector::new(&plan);
        assert!(!inj.should_fail_checkpoint(1));
        assert!(!inj.should_panic(1));
    }

    #[test]
    fn cluster_faults_consume_death_schedules_once() {
        let plan = FaultPlan::parse("worker_death@fetch=2:x3").expect("spec is well-formed");
        let faults = ClusterFaults::new(&plan);
        assert!(!faults.is_empty());
        assert_eq!(faults.deaths_at(1), 0);
        assert_eq!(faults.deaths_at(2), 3);
        assert_eq!(faults.deaths_at(2), 0, "a schedule fires for one fetch batch only");
    }

    #[test]
    fn cluster_faults_hangs_are_one_shot_and_shared() {
        let plan = FaultPlan::parse("worker_hang@k=4,deadline=30ms").expect("spec is well-formed");
        let faults = ClusterFaults::new(&plan);
        let clone = faults.clone();
        assert_eq!(faults.deadline(), Some(Duration::from_millis(30)));
        assert!(!faults.take_hang(3));
        assert!(clone.take_hang(4));
        assert!(!faults.take_hang(4), "clone must consume the shared hang");
    }

    #[test]
    fn cluster_faults_ignore_single_process_faults() {
        let plan = FaultPlan::parse("worker_panic@k=1,io_error@round=2").expect("well-formed");
        assert!(ClusterFaults::new(&plan).is_empty());
    }

    #[test]
    fn one_shot_panic_fires_exactly_once() {
        let plan = FaultPlan::parse("worker_panic@k=2").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        assert!(!inj.should_panic(1));
        assert!(inj.should_panic(2));
        assert!(!inj.should_panic(2), "one-shot fault must be consumed");
    }

    #[test]
    fn persistent_panic_keeps_firing() {
        let plan = FaultPlan::parse("worker_panic@k=2:always").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        assert!(inj.should_panic(2));
        assert!(inj.should_panic(2));
    }

    #[test]
    fn clones_share_consumption_state() {
        let plan = FaultPlan::parse("io_error@round=1").expect("spec is well-formed");
        let inj = FaultInjector::new(&plan);
        let clone = inj.clone();
        assert!(clone.should_fail_checkpoint(1));
        assert!(!inj.should_fail_checkpoint(1), "clone must consume the shared fault");
    }

    #[test]
    fn tightest_injected_deadline_wins() {
        // parse() rejects duplicate deadline directives, so multi-deadline
        // plans can only be built programmatically; the injector still
        // keeps the tightest.
        let mut plan = FaultPlan::none();
        plan.push(Fault::Deadline { millis: 80 });
        plan.push(Fault::Deadline { millis: 50 });
        plan.push(Fault::Deadline { millis: 90 });
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.deadline(), Some(Duration::from_millis(50)));
    }

    #[test]
    fn duplicate_directives_for_one_injection_point_are_rejected() {
        for spec in [
            "worker_panic@k=3,worker_panic@k=3:always",
            "io_error@round=2,io_error@round=2",
            "deadline=80ms,deadline=50ms",
            "worker_death@fetch=2,worker_death@fetch=2:x5",
            "worker_hang@k=1,worker_hang@k=1",
            "torn_write@round=2,torn_write@round=2",
            "bit_flip@round=3,bit_flip@round=3",
            // torn_write and bit_flip share the store's one-mangle-per-
            // round injection point, so they conflict rather than compose.
            "torn_write@round=2,bit_flip@round=2",
        ] {
            let err = FaultPlan::parse(spec).expect_err("conflicting spec must be rejected");
            assert!(err.contains("conflicting directive"), "{spec}: {err}");
            assert!(err.contains("already arms"), "{spec}: {err}");
        }
    }

    #[test]
    fn distinct_injection_points_do_not_conflict() {
        let plan = FaultPlan::parse(
            "worker_panic@k=1,worker_panic@k=2,io_error@round=1,io_error@round=2,\
             torn_write@round=1,bit_flip@round=2",
        )
        .expect("distinct points are fine");
        assert_eq!(plan.faults().len(), 6);
    }

    #[test]
    fn worker_death_hint_names_both_forms() {
        let err = FaultPlan::parse("worker_death@fetch=nope").expect_err("malformed");
        assert!(err.contains("worker_death@fetch=<n>"), "{err}");
        assert!(err.contains("worker_death@fetch=<n>:x<m>"), "{err}");
    }

    #[test]
    fn display_renders_the_parse_grammar() {
        let spec = "worker_panic@k=3:always,io_error@round=2,deadline=50ms,\
                    worker_death@fetch=7,worker_death@fetch=2:x5,worker_hang@k=3,\
                    torn_write@round=1,bit_flip@round=4";
        let plan = FaultPlan::parse(spec).expect("spec is well-formed");
        assert_eq!(plan.to_string(), spec.replace(char::is_whitespace, ""));
        assert_eq!(FaultPlan::none().to_string(), "");
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        /// Render ↔ parse round-trip: any conflict-free plan survives
        /// `parse(render(plan))` exactly.
        #[test]
        fn display_parse_round_trips(plan in arbitrary_plan()) {
            let rendered = plan.to_string();
            let reparsed = FaultPlan::parse(&rendered)
                .map_err(|e| format!("rendered plan must reparse: {rendered}: {e}"))?;
            prop_assert_eq!(&reparsed, &plan, "{}", rendered);
        }
    }

    use proptest::prelude::*;

    /// A conflict-free random plan: distinct injection points by
    /// construction (indices are spread across disjoint ranges per kind).
    fn arbitrary_plan() -> impl Strategy<Value = FaultPlan> {
        proptest::collection::vec((0u8..7, 1u64..9, any::<bool>()), 0..8).prop_map(|specs| {
            let mut plan = FaultPlan::none();
            for (kind, at, flag) in specs {
                let fault = match kind {
                    0 => Fault::WorkerPanic {
                        k_index: usize::try_from(at).expect("small index"),
                        persistent: flag,
                    },
                    1 => Fault::CheckpointIoError {
                        round: usize::try_from(at).expect("small round"),
                    },
                    2 => Fault::Deadline { millis: at },
                    3 => Fault::WorkerDeath {
                        fetch: at,
                        deaths: if flag { 3 } else { 1 },
                    },
                    4 => Fault::WorkerHang { k_index: usize::try_from(at).expect("small index") },
                    5 => Fault::TornWrite { round: usize::try_from(at).expect("small round") },
                    _ => Fault::BitFlip { round: usize::try_from(at).expect("small round") },
                };
                let key = fault.injection_point();
                if !plan.faults().iter().any(|f| f.injection_point() == key) {
                    plan.push(fault);
                }
            }
            plan
        })
    }
}
