use crate::checkpoint::Checkpoint;
use crate::faults::FaultInjector;
use crate::runtime::{RunContext, RuntimeError};
use crate::{MaarSolver, RejectoConfig};
use kl::{CancelReason, CancelToken, KParam};
use rejection::{AugmentedGraph, NodeId};
use std::io;

/// Manually inspected ground-truth users the OSN provider supplies
/// (§III-B, §IV-F). Ids refer to the *original* graph handed to
/// [`IterativeDetector::detect`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Seeds {
    /// Known legitimate users, pinned to the legitimate region.
    pub legit: Vec<NodeId>,
    /// Known friend spammers, pinned to the suspect region.
    pub spammer: Vec<NodeId>,
}

/// When to stop the iterative cut-and-prune loop (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Termination {
    /// Stop once at least this many suspects have been detected — the
    /// paper's evaluation protocol, where the OSN has estimated the number
    /// of fakes by inspecting sampled accounts.
    SuspectBudget(usize),
    /// Stop as soon as the next group's aggregate acceptance rate exceeds
    /// the threshold (e.g., an estimate of the normal-user acceptance
    /// rate); the offending group is *not* included.
    AcceptanceThreshold(f64),
    /// Stop on whichever of the two conditions fires first.
    BudgetOrThreshold {
        /// Suspect budget.
        budget: usize,
        /// Acceptance-rate threshold.
        threshold: f64,
    },
}

/// What stopped a run before its natural termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// The wall-clock deadline ([`crate::RunBudget::deadline`] or an
    /// injected `deadline=<ms>ms` fault) expired.
    Deadline,
    /// The global KL pass budget ([`crate::RunBudget::max_kl_passes`]) was
    /// exhausted.
    PassBudget,
    /// The round budget ([`crate::RunBudget::max_rounds`]) was reached.
    RoundBudget,
    /// A resource ceiling ([`crate::ResourceBudget::max_suspect_frac`])
    /// would have been exceeded by accepting the round's cut; the round
    /// was rolled back. Unlike the wall-clock reasons this trip is a pure
    /// function of input and configuration, so it is deterministic.
    ResourceBudget,
    /// The run was cancelled explicitly.
    Cancelled,
}

/// Whether a [`DetectionReport`] covers the full run or was cut short by a
/// budget (§ DESIGN.md "Failure model": a budgeted run *degrades* to the
/// groups found so far; it never aborts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Completion {
    /// The run terminated on its own (termination rule, convergence, or
    /// the `max_rounds` convergence cap).
    #[default]
    Complete,
    /// The run was interrupted at a safe boundary; `groups` holds every
    /// fully completed round's result.
    Partial {
        /// Pruning rounds that ran to completion (equals the report's
        /// `rounds` field).
        completed_rounds: usize,
        /// Sweep indices of the *interrupted* round that converged before
        /// the interruption, ascending; empty when the run stopped exactly
        /// on a round boundary. Wall-clock interruptions land at
        /// scheduling-dependent points, so this is a progress diagnostic,
        /// not a deterministic artifact.
        completed_k_indices: Vec<usize>,
        /// What stopped the run.
        reason: InterruptReason,
    },
}

/// One spammer group cut off in one round of the iterative detection.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedGroup {
    /// Members, in original-graph ids, ascending.
    pub nodes: Vec<NodeId>,
    /// Aggregate acceptance rate of the group's requests at detection time
    /// (on the residual graph).
    pub acceptance_rate: f64,
    /// The sweep `k` that produced the winning cut, as the exact rational
    /// the sweep solved with ([`KParam`] keeps KL gains integral; rounding
    /// it to `f64` here would discard the only exact record of which
    /// linear objective won).
    pub k: KParam,
    /// 1-based round in which the group was found.
    pub round: usize,
}

/// Output of [`IterativeDetector::detect`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionReport {
    /// Detected groups in detection order. Because each round solves MAAR
    /// on the residual graph, acceptance rates are non-decreasing: the
    /// most blatant spammers surface first (§IV-E).
    pub groups: Vec<DetectedGroup>,
    /// Rounds executed (including a final round that found nothing).
    /// Interrupted rounds do not count.
    pub rounds: usize,
    /// Whether the run covered everything it was asked to
    /// ([`Completion::Complete`]) or stopped at a budget boundary.
    pub completion: Completion,
    /// Degraded-operation diagnostics: sweep indices skipped after
    /// persistent worker panics, checkpoint writes that failed. The report
    /// remains well-formed; these record what was lost along the way.
    pub failures: Vec<RuntimeError>,
}

impl DetectionReport {
    /// Every detected suspect, in detection order (group by group).
    pub fn suspects(&self) -> Vec<NodeId> {
        self.groups.iter().flat_map(|g| g.nodes.iter().copied()).collect()
    }

    /// Total number of detected suspects.
    pub fn num_suspects(&self) -> usize {
        self.groups.iter().map(|g| g.nodes.len()).sum()
    }

    /// Whether the run was cut short by a budget.
    pub fn is_partial(&self) -> bool {
        !matches!(self.completion, Completion::Complete)
    }

    /// Exactly `n` suspects: whole groups in detection order, with the
    /// final group trimmed by descending individual rejection ratio (ties
    /// by id). This mirrors the evaluation protocol of declaring exactly
    /// as many suspects as the estimated fake population, which makes
    /// precision equal recall.
    ///
    /// Returns fewer than `n` if fewer were detected.
    pub fn suspects_top(&self, n: usize, g: &AugmentedGraph) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(n);
        for group in &self.groups {
            let remaining = n.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            if group.nodes.len() <= remaining {
                out.extend(group.nodes.iter().copied());
            } else {
                let mut ranked = group.nodes.clone();
                ranked.sort_by(|&a, &b| {
                    let ra = g.rejection_ratio(a).unwrap_or(0.0);
                    let rb = g.rejection_ratio(b).unwrap_or(0.0);
                    rb.total_cmp(&ra).then(a.cmp(&b))
                });
                out.extend(ranked.into_iter().take(remaining));
            }
        }
        out
    }
}

/// A checkpoint consumer: called after every completed pruning round with
/// the state needed to resume. Errors are *recorded* on the report as
/// [`RuntimeError::CheckpointIo`] — a failed write degrades resumability,
/// never the detection itself.
pub type CheckpointSink<'a> = &'a mut dyn FnMut(&Checkpoint) -> io::Result<()>;

/// Mid-run loop state: the report so far, the residual graph, and its
/// mapping back to original ids. Built fresh for a new run or rebuilt from
/// a [`Checkpoint`] for a resume.
struct LoopState {
    report: DetectionReport,
    current: AugmentedGraph,
    to_original: Vec<NodeId>,
}

impl LoopState {
    fn fresh(g: &AugmentedGraph) -> LoopState {
        LoopState {
            report: DetectionReport::default(),
            current: g.clone(),
            to_original: g.nodes().collect(),
        }
    }

    /// Rebuilds the state the uninterrupted run had after the checkpointed
    /// round. Correct because `induced_subgraph` relabels survivors in
    /// ascending order and composes: one induction on the checkpoint's
    /// survivor set equals the run's sequence of per-round inductions.
    fn from_checkpoint(g: &AugmentedGraph, ckpt: &Checkpoint) -> LoopState {
        let mut keep = vec![false; g.num_nodes()];
        for &u in &ckpt.remaining {
            keep[usize::try_from(u).expect("checkpoint ids validated against num_nodes")] = true;
        }
        let (current, to_original) = g.induced_subgraph(&keep);
        LoopState { report: ckpt.report(), current, to_original }
    }
}

/// The iterative MAAR-cut detector (§IV-E): repeatedly solve MAAR on the
/// residual graph, record the suspect region as a spammer group, prune it
/// with its links and rejections, and continue.
#[derive(Debug, Clone)]
pub struct IterativeDetector {
    solver: MaarSolver,
    obs: Option<rejecto_obs::Obs>,
}

impl IterativeDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: RejectoConfig) -> Self {
        IterativeDetector { solver: MaarSolver::new(config), obs: None }
    }

    /// Attaches a metrics registry shared by the pruning loop, the sweep
    /// workers, and the KL passes underneath. Spans
    /// (`detect > round > sweep > k_index > kl_pass`), the `detect/rounds`
    /// counter, and the `detect/checkpoint_bytes` histogram are
    /// deterministic; the token's cancellation polls are absorbed into the
    /// volatile `cancel/polls` counter when the run returns.
    pub fn set_obs(&mut self, obs: rejecto_obs::Obs) {
        self.obs = Some(obs);
    }

    /// The underlying MAAR solver.
    pub fn solver(&self) -> &MaarSolver {
        &self.solver
    }

    /// Runs the full pipeline on `g` and returns the detected groups.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
    ) -> DetectionReport {
        self.run_loop(g, seeds, termination, LoopState::fresh(g), None)
    }

    /// [`IterativeDetector::detect`], calling `sink` with a [`Checkpoint`]
    /// after every completed pruning round.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect_with_checkpoints(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        sink: CheckpointSink<'_>,
    ) -> DetectionReport {
        self.run_loop(g, seeds, termination, LoopState::fresh(g), Some(sink))
    }

    /// Continues a run from `checkpoint`, exactly as if the original run
    /// had never stopped: given the same graph, seeds, termination, and a
    /// deterministic configuration, the resumed report is byte-identical
    /// to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CheckpointMismatch`] (and friends) when the
    /// checkpoint does not describe `g`.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn resume(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        checkpoint: &Checkpoint,
    ) -> Result<DetectionReport, RuntimeError> {
        checkpoint.validate_against(g)?;
        Ok(self.run_loop(g, seeds, termination, LoopState::from_checkpoint(g, checkpoint), None))
    }

    /// [`IterativeDetector::resume`] with checkpointing of the continued
    /// rounds.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CheckpointMismatch`] (and friends) when the
    /// checkpoint does not describe `g`.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn resume_with_checkpoints(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        checkpoint: &Checkpoint,
        sink: CheckpointSink<'_>,
    ) -> Result<DetectionReport, RuntimeError> {
        checkpoint.validate_against(g)?;
        Ok(self.run_loop(
            g,
            seeds,
            termination,
            LoopState::from_checkpoint(g, checkpoint),
            Some(sink),
        ))
    }

    /// The pruning loop. The clean-path statement order is exactly the
    /// pre-budget implementation's — budget checks only *add* exits at
    /// round boundaries — which is what keeps unbudgeted runs byte-
    /// identical across this refactor and resumed runs byte-identical to
    /// uninterrupted ones.
    fn run_loop(
        &self,
        g: &AugmentedGraph,
        seeds: &Seeds,
        termination: Termination,
        state: LoopState,
        mut sink: Option<CheckpointSink<'_>>,
    ) -> DetectionReport {
        let LoopState { mut report, mut current, mut to_original } = state;
        let config = self.solver.config();
        let max_rounds = config.max_rounds;

        let budget = match termination {
            Termination::SuspectBudget(b) => Some(b),
            Termination::AcceptanceThreshold(_) => None,
            Termination::BudgetOrThreshold { budget, .. } => Some(budget),
        };
        let threshold = match termination {
            Termination::SuspectBudget(_) => None,
            Termination::AcceptanceThreshold(t) => Some(t),
            Termination::BudgetOrThreshold { threshold, .. } => Some(threshold),
        };

        let token = CancelToken::new();
        let injector = FaultInjector::new(&config.faults);
        if let Some(deadline) = config.budget.deadline {
            token.set_deadline_in(deadline);
        }
        if let Some(deadline) = injector.deadline() {
            // The token keeps the tighter of the two deadlines.
            token.set_deadline_in(deadline);
        }
        if let Some(passes) = config.budget.max_kl_passes {
            token.set_pass_budget(passes);
        }
        let mut ctx = RunContext {
            token: token.clone(),
            injector: injector.clone(),
            round: 0,
            obs: self.obs.clone(),
        };
        let mut completion = Completion::Complete;
        let _detect_span = self.obs.as_ref().map(|o| o.span("detect"));

        while report.rounds < max_rounds {
            if let Some(limit) = config.budget.max_rounds {
                if report.rounds >= limit {
                    completion = Completion::Partial {
                        completed_rounds: report.rounds,
                        completed_k_indices: Vec::new(),
                        reason: InterruptReason::RoundBudget,
                    };
                    break;
                }
            }
            if token.is_cancelled() {
                completion = Completion::Partial {
                    completed_rounds: report.rounds,
                    completed_k_indices: Vec::new(),
                    reason: interrupt_reason(&token),
                };
                break;
            }
            report.rounds += 1;
            if let Some(b) = budget {
                if report.num_suspects() >= b {
                    break;
                }
            }

            // Map seeds into residual-graph ids (pruned seeds drop out —
            // a detected spammer seed has done its job).
            let mut current_index = vec![u32::MAX; g.num_nodes()];
            for (i, &orig) in to_original.iter().enumerate() {
                current_index[orig.index()] = u32::try_from(i).expect("node count fits in u32");
            }
            let map = |ids: &[NodeId]| -> Vec<NodeId> {
                ids.iter()
                    .filter_map(|s| {
                        let m = current_index[s.index()];
                        (m != u32::MAX).then_some(NodeId(m))
                    })
                    .collect()
            };
            let legit = map(&seeds.legit);
            let spammer = map(&seeds.spammer);

            ctx.round = report.rounds;
            let _round_span = self.obs.as_ref().map(|o| o.span("detect/round"));
            let outcome = self.solver.solve_monitored(&current, &legit, &spammer, &ctx);
            report.failures.extend(outcome.failures);
            if outcome.interrupted {
                // The round did not finish; it does not count, and the
                // sweep progress becomes the partial-report diagnostic.
                report.rounds -= 1;
                completion = Completion::Partial {
                    completed_rounds: report.rounds,
                    completed_k_indices: outcome.completed_k_indices,
                    reason: interrupt_reason(&token),
                };
                break;
            }
            // Resource budget: would accepting this round's cut condemn
            // more of the *original* graph than `max_suspect_frac` allows?
            // Checked before the round is counted so the rollback leaves
            // no trace in the report; the trip is a pure function of input
            // and configuration, so it is deterministic (and safe for the
            // deterministic `res/*` counter below).
            // A cut the threshold check would discard anyway cannot trip
            // the budget: the run stops Complete there, not Partial.
            let would_accept = |cut: &crate::MaarCut| -> bool {
                threshold.is_none_or(|t| cut.acceptance_rate <= t)
            };
            if let (Some(frac), Some(cut)) =
                (config.resources.max_suspect_frac, outcome.cut.as_ref().filter(|c| would_accept(c)))
            {
                let after = report
                    .num_suspects()
                    .checked_add(cut.suspects().len())
                    .expect("suspect count fits in usize");
                let cap = frac * g.num_nodes() as f64; // xtask-allow: lossy-cast: n < 2^53 converts exactly
                if after as f64 > cap { // xtask-allow: lossy-cast: suspect count < 2^53 converts exactly
                    report.rounds -= 1;
                    if let Some(obs) = &self.obs {
                        obs.incr("res/suspect_frac_trips", 1);
                    }
                    completion = Completion::Partial {
                        completed_rounds: report.rounds,
                        completed_k_indices: Vec::new(),
                        reason: InterruptReason::ResourceBudget,
                    };
                    break;
                }
            }
            // The round ran its sweep to completion — interrupted rounds
            // (deadline, pass budget) are scheduling-dependent and must
            // not reach the deterministic counters.
            if let Some(obs) = &self.obs {
                obs.incr("detect/rounds", 1);
            }
            let Some(cut) = outcome.cut else {
                break;
            };
            if let Some(t) = threshold {
                if cut.acceptance_rate > t {
                    break;
                }
            }

            let local = cut.suspects();
            let mut nodes: Vec<NodeId> =
                local.iter().map(|u| to_original[u.index()]).collect();
            nodes.sort_unstable();
            report.groups.push(DetectedGroup {
                nodes,
                acceptance_rate: cut.acceptance_rate,
                k: cut.k,
                round: report.rounds,
            });
            #[cfg(feature = "debug-invariants")]
            crate::invariants::assert_report_bookkeeping(g, &report);

            // Prune the group with its links and rejections.
            let mut keep = vec![true; current.num_nodes()];
            for u in &local {
                keep[u.index()] = false;
            }
            let (next, original_of_next) = current.induced_subgraph(&keep);
            to_original = original_of_next.iter().map(|u| to_original[u.index()]).collect();
            current = next;

            if let Some(write) = sink.as_mut() {
                let ckpt = Checkpoint::capture(g, &report);
                if let Some(obs) = &self.obs {
                    let bytes = u64::try_from(ckpt.to_json().len())
                        .expect("checkpoint size fits in u64");
                    obs.record("detect/checkpoint_bytes", bytes);
                }
                let result = if injector.should_fail_checkpoint(report.rounds) {
                    Err(io::Error::other("injected checkpoint I/O error"))
                } else {
                    write(&ckpt)
                };
                if let Err(e) = result {
                    report.failures.push(RuntimeError::CheckpointIo {
                        round: report.rounds,
                        message: e.to_string(),
                    });
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.volatile_incr("cancel/polls", token.polls());
        }
        report.completion = completion;
        report
    }
}

/// Maps the token's trip cause onto the report vocabulary.
fn interrupt_reason(token: &CancelToken) -> InterruptReason {
    match token.reason() {
        Some(CancelReason::Deadline) => InterruptReason::Deadline,
        Some(CancelReason::PassBudget) => InterruptReason::PassBudget,
        _ => InterruptReason::Cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunBudget;
    use rejection::AugmentedGraphBuilder;

    /// Legit clique (0–3); fake group A (4–5) heavily rejected by legit;
    /// fake group B (6–7) whitewashed: B rejected A's requests and receives
    /// only mild legit rejections.
    fn self_rejection_scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_friendship(NodeId(u), NodeId(v));
            }
        }
        b.add_friendship(NodeId(4), NodeId(5));
        b.add_friendship(NodeId(6), NodeId(7));
        b.add_friendship(NodeId(0), NodeId(4)); // attack edges
        b.add_friendship(NodeId(1), NodeId(6));
        // Legit reject A hard:
        for (r, s) in [(0, 5), (1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        // Self-rejection: B rejects A's requests en masse (crafted cut).
        for (r, s) in [(6, 4), (6, 5), (7, 4), (7, 5)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        // Legit reject B mildly:
        b.add_rejection(NodeId(2), NodeId(6));
        b.add_rejection(NodeId(3), NodeId(7));
        b.add_rejection(NodeId(0), NodeId(7));
        b.build()
    }

    #[test]
    fn iterative_pruning_defeats_self_rejection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(4));
        let mut suspects = report.suspects();
        suspects.sort_unstable();
        assert_eq!(suspects, vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]);
        // The rejected group A must fall before the whitewashed group B.
        assert!(report.groups.len() >= 2, "expected multiple rounds");
        assert!(report.groups[0].nodes.contains(&NodeId(4)));
        assert!(report.groups[0].nodes.contains(&NodeId(5)));
        assert_eq!(report.completion, Completion::Complete);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn acceptance_rates_are_non_decreasing_across_rounds() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(8));
        for w in report.groups.windows(2) {
            assert!(
                w[0].acceptance_rate <= w[1].acceptance_rate + 1e-9,
                "rates regressed: {} then {}",
                w[0].acceptance_rate,
                w[1].acceptance_rate
            );
        }
    }

    #[test]
    fn budget_stops_detection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(2));
        assert!(report.num_suspects() >= 2);
        assert!(report.groups.len() <= 2);
    }

    #[test]
    fn threshold_excludes_high_acceptance_groups() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        // Group A's rate is 1/8; a threshold below B's rate keeps only A.
        let report =
            det.detect(&g, &Seeds::default(), Termination::AcceptanceThreshold(0.2));
        for group in &report.groups {
            assert!(group.acceptance_rate <= 0.2);
        }
        assert!(!report.suspects().is_empty());
    }

    #[test]
    fn suspects_top_trims_last_group_by_rejection_ratio() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(8));
        let top3 = report.suspects_top(3, &g);
        assert_eq!(top3.len(), 3);
        // All of group A (4, 5) must be present before any trimming of B.
        assert!(top3.contains(&NodeId(4)));
        assert!(top3.contains(&NodeId(5)));
    }

    #[test]
    fn clean_graph_detects_nothing() {
        let mut b = AugmentedGraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_friendship(NodeId(u), NodeId(v));
            }
        }
        let g = b.build();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(2));
        assert_eq!(report.num_suspects(), 0);
        assert_eq!(report.completion, Completion::Complete);
    }

    #[test]
    fn spammer_seed_guides_detection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let seeds = Seeds { legit: vec![NodeId(0), NodeId(1)], spammer: vec![NodeId(6)] };
        let report = det.detect(&g, &seeds, Termination::SuspectBudget(4));
        let suspects = report.suspects();
        assert!(suspects.contains(&NodeId(6)));
        assert!(!suspects.contains(&NodeId(0)));
        assert!(!suspects.contains(&NodeId(1)));
    }

    #[test]
    fn round_budget_yields_a_deterministic_partial_report() {
        let g = self_rejection_scenario();
        let full = IterativeDetector::new(RejectoConfig::default()).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert!(full.groups.len() >= 2, "scenario must take multiple rounds");

        let config = RejectoConfig {
            budget: RunBudget { max_rounds: Some(1), ..RunBudget::unlimited() },
            ..RejectoConfig::default()
        };
        let partial = IterativeDetector::new(config).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert_eq!(partial.rounds, 1);
        match &partial.completion {
            Completion::Partial { completed_rounds, completed_k_indices, reason } => {
                assert_eq!(*completed_rounds, 1);
                assert!(completed_k_indices.is_empty(), "round boundary carries no sweep progress");
                assert_eq!(*reason, InterruptReason::RoundBudget);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        // The one completed round matches the uninterrupted run's round 1.
        assert_eq!(partial.groups, full.groups[..1]);
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_run() {
        let g = self_rejection_scenario();
        let seeds = Seeds::default();
        let termination = Termination::SuspectBudget(8);
        let full = IterativeDetector::new(RejectoConfig::default()).detect(&g, &seeds, termination);
        assert!(full.groups.len() >= 2, "scenario must take multiple rounds");

        let budgeted = RejectoConfig {
            budget: RunBudget { max_rounds: Some(1), ..RunBudget::unlimited() },
            ..RejectoConfig::default()
        };
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let partial = IterativeDetector::new(budgeted).detect_with_checkpoints(
            &g,
            &seeds,
            termination,
            &mut |c| {
                checkpoints.push(c.clone());
                Ok(())
            },
        );
        assert!(partial.is_partial());
        let last = checkpoints.last().expect("round 1 must checkpoint");

        // JSON round trip, then resume with an unbudgeted detector.
        let restored =
            Checkpoint::from_json(&last.to_json()).expect("checkpoint round-trips");
        let resumed = IterativeDetector::new(RejectoConfig::default())
            .resume(&g, &seeds, termination, &restored)
            .expect("checkpoint matches the graph");
        assert_eq!(resumed, full, "resume must reproduce the uninterrupted run");
    }

    #[test]
    fn immediate_deadline_yields_a_well_formed_partial_report() {
        let g = self_rejection_scenario();
        let config = RejectoConfig {
            budget: RunBudget {
                deadline: Some(std::time::Duration::ZERO),
                ..RunBudget::unlimited()
            },
            ..RejectoConfig::default()
        };
        let report = IterativeDetector::new(config).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert!(report.is_partial());
        match &report.completion {
            Completion::Partial { completed_rounds, reason, .. } => {
                assert_eq!(*completed_rounds, report.rounds);
                assert_eq!(*reason, InterruptReason::Deadline);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert_eq!(report.rounds, 0, "a zero deadline stops before round 1");
        assert!(report.groups.is_empty());
    }

    #[test]
    fn suspect_frac_budget_rolls_back_the_offending_round() {
        use crate::ResourceBudget;
        let g = self_rejection_scenario();
        let full = IterativeDetector::new(RejectoConfig::default()).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert!(full.groups.len() >= 2, "scenario must take multiple rounds");

        // Cap at 30% of 8 nodes = 2.4: round 1 (2 suspects) is admitted,
        // round 2 would push the total to 4 and is rolled back.
        let config = RejectoConfig {
            resources: ResourceBudget {
                max_suspect_frac: Some(0.3),
                ..ResourceBudget::unlimited()
            },
            ..RejectoConfig::default()
        };
        let capped = IterativeDetector::new(config).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert_eq!(capped.groups, full.groups[..1], "admitted rounds must match the full run");
        assert_eq!(capped.rounds, 1, "the tripped round is rolled back");
        match &capped.completion {
            Completion::Partial { completed_rounds, completed_k_indices, reason } => {
                assert_eq!(*completed_rounds, 1);
                assert!(completed_k_indices.is_empty());
                assert_eq!(*reason, InterruptReason::ResourceBudget);
            }
            other => panic!("expected Partial, got {other:?}"),
        }

        // A budget nothing fits under rolls back round 1 itself.
        let config = RejectoConfig {
            resources: ResourceBudget {
                max_suspect_frac: Some(0.1),
                ..ResourceBudget::unlimited()
            },
            ..RejectoConfig::default()
        };
        let empty = IterativeDetector::new(config).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert!(empty.groups.is_empty());
        assert_eq!(empty.rounds, 0);
        assert!(matches!(
            empty.completion,
            Completion::Partial { reason: InterruptReason::ResourceBudget, .. }
        ));
    }

    #[test]
    fn suspect_frac_budget_is_deterministic_across_threads() {
        use crate::ResourceBudget;
        let g = self_rejection_scenario();
        let reports: Vec<DetectionReport> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let config = RejectoConfig {
                    threads,
                    resources: ResourceBudget {
                        max_suspect_frac: Some(0.3),
                        ..ResourceBudget::unlimited()
                    },
                    ..RejectoConfig::default()
                };
                IterativeDetector::new(config).detect(
                    &g,
                    &Seeds::default(),
                    Termination::SuspectBudget(8),
                )
            })
            .collect();
        assert_eq!(reports[0], reports[1], "resource trips must not depend on thread count");
    }

    #[test]
    fn tiny_pass_budget_interrupts_with_pass_budget_reason() {
        let g = self_rejection_scenario();
        let config = RejectoConfig {
            budget: RunBudget { max_kl_passes: Some(1), ..RunBudget::unlimited() },
            ..RejectoConfig::default()
        };
        let report = IterativeDetector::new(config).detect(
            &g,
            &Seeds::default(),
            Termination::SuspectBudget(8),
        );
        assert!(report.is_partial(), "one global pass cannot finish a sweep");
        match &report.completion {
            Completion::Partial { reason, .. } => {
                assert_eq!(*reason, InterruptReason::PassBudget);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    }
}
