use crate::{MaarSolver, RejectoConfig};
use kl::KParam;
use rejection::{AugmentedGraph, NodeId};

/// Manually inspected ground-truth users the OSN provider supplies
/// (§III-B, §IV-F). Ids refer to the *original* graph handed to
/// [`IterativeDetector::detect`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Seeds {
    /// Known legitimate users, pinned to the legitimate region.
    pub legit: Vec<NodeId>,
    /// Known friend spammers, pinned to the suspect region.
    pub spammer: Vec<NodeId>,
}

/// When to stop the iterative cut-and-prune loop (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Termination {
    /// Stop once at least this many suspects have been detected — the
    /// paper's evaluation protocol, where the OSN has estimated the number
    /// of fakes by inspecting sampled accounts.
    SuspectBudget(usize),
    /// Stop as soon as the next group's aggregate acceptance rate exceeds
    /// the threshold (e.g., an estimate of the normal-user acceptance
    /// rate); the offending group is *not* included.
    AcceptanceThreshold(f64),
    /// Stop on whichever of the two conditions fires first.
    BudgetOrThreshold {
        /// Suspect budget.
        budget: usize,
        /// Acceptance-rate threshold.
        threshold: f64,
    },
}

/// One spammer group cut off in one round of the iterative detection.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedGroup {
    /// Members, in original-graph ids, ascending.
    pub nodes: Vec<NodeId>,
    /// Aggregate acceptance rate of the group's requests at detection time
    /// (on the residual graph).
    pub acceptance_rate: f64,
    /// The sweep `k` that produced the winning cut, as the exact rational
    /// the sweep solved with ([`KParam`] keeps KL gains integral; rounding
    /// it to `f64` here would discard the only exact record of which
    /// linear objective won).
    pub k: KParam,
    /// 1-based round in which the group was found.
    pub round: usize,
}

/// Output of [`IterativeDetector::detect`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionReport {
    /// Detected groups in detection order. Because each round solves MAAR
    /// on the residual graph, acceptance rates are non-decreasing: the
    /// most blatant spammers surface first (§IV-E).
    pub groups: Vec<DetectedGroup>,
    /// Rounds executed (including a final round that found nothing).
    pub rounds: usize,
}

impl DetectionReport {
    /// Every detected suspect, in detection order (group by group).
    pub fn suspects(&self) -> Vec<NodeId> {
        self.groups.iter().flat_map(|g| g.nodes.iter().copied()).collect()
    }

    /// Total number of detected suspects.
    pub fn num_suspects(&self) -> usize {
        self.groups.iter().map(|g| g.nodes.len()).sum()
    }

    /// Exactly `n` suspects: whole groups in detection order, with the
    /// final group trimmed by descending individual rejection ratio (ties
    /// by id). This mirrors the evaluation protocol of declaring exactly
    /// as many suspects as the estimated fake population, which makes
    /// precision equal recall.
    ///
    /// Returns fewer than `n` if fewer were detected.
    pub fn suspects_top(&self, n: usize, g: &AugmentedGraph) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(n);
        for group in &self.groups {
            let remaining = n.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            if group.nodes.len() <= remaining {
                out.extend(group.nodes.iter().copied());
            } else {
                let mut ranked = group.nodes.clone();
                ranked.sort_by(|&a, &b| {
                    let ra = g.rejection_ratio(a).unwrap_or(0.0);
                    let rb = g.rejection_ratio(b).unwrap_or(0.0);
                    rb.partial_cmp(&ra).expect("finite ratios").then(a.cmp(&b))
                });
                out.extend(ranked.into_iter().take(remaining));
            }
        }
        out
    }
}

/// The iterative MAAR-cut detector (§IV-E): repeatedly solve MAAR on the
/// residual graph, record the suspect region as a spammer group, prune it
/// with its links and rejections, and continue.
#[derive(Debug, Clone)]
pub struct IterativeDetector {
    solver: MaarSolver,
}

impl IterativeDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: RejectoConfig) -> Self {
        IterativeDetector { solver: MaarSolver::new(config) }
    }

    /// The underlying MAAR solver.
    pub fn solver(&self) -> &MaarSolver {
        &self.solver
    }

    /// Runs the full pipeline on `g` and returns the detected groups.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range of `g`.
    pub fn detect(&self, g: &AugmentedGraph, seeds: &Seeds, termination: Termination) -> DetectionReport {
        let mut report = DetectionReport::default();
        // Residual graph plus its mapping back to original ids.
        let mut current = g.clone();
        let mut to_original: Vec<NodeId> = g.nodes().collect();
        let max_rounds = self.solver.config().max_rounds;

        let budget = match termination {
            Termination::SuspectBudget(b) => Some(b),
            Termination::AcceptanceThreshold(_) => None,
            Termination::BudgetOrThreshold { budget, .. } => Some(budget),
        };
        let threshold = match termination {
            Termination::SuspectBudget(_) => None,
            Termination::AcceptanceThreshold(t) => Some(t),
            Termination::BudgetOrThreshold { threshold, .. } => Some(threshold),
        };

        while report.rounds < max_rounds {
            report.rounds += 1;
            if let Some(b) = budget {
                if report.num_suspects() >= b {
                    break;
                }
            }

            // Map seeds into residual-graph ids (pruned seeds drop out —
            // a detected spammer seed has done its job).
            let mut current_index = vec![u32::MAX; g.num_nodes()];
            for (i, &orig) in to_original.iter().enumerate() {
                current_index[orig.index()] = i as u32;
            }
            let map = |ids: &[NodeId]| -> Vec<NodeId> {
                ids.iter()
                    .filter_map(|s| {
                        let m = current_index[s.index()];
                        (m != u32::MAX).then_some(NodeId(m))
                    })
                    .collect()
            };
            let legit = map(&seeds.legit);
            let spammer = map(&seeds.spammer);

            let Some(cut) = self.solver.solve(&current, &legit, &spammer) else {
                break;
            };
            if let Some(t) = threshold {
                if cut.acceptance_rate > t {
                    break;
                }
            }

            let local = cut.suspects();
            let mut nodes: Vec<NodeId> =
                local.iter().map(|u| to_original[u.index()]).collect();
            nodes.sort_unstable();
            report.groups.push(DetectedGroup {
                nodes,
                acceptance_rate: cut.acceptance_rate,
                k: cut.k,
                round: report.rounds,
            });
            #[cfg(feature = "debug-invariants")]
            crate::invariants::assert_report_bookkeeping(g, &report);

            // Prune the group with its links and rejections.
            let mut keep = vec![true; current.num_nodes()];
            for u in &local {
                keep[u.index()] = false;
            }
            let (next, original_of_next) = current.induced_subgraph(&keep);
            to_original = original_of_next.iter().map(|u| to_original[u.index()]).collect();
            current = next;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejection::AugmentedGraphBuilder;

    /// Legit clique (0–3); fake group A (4–5) heavily rejected by legit;
    /// fake group B (6–7) whitewashed: B rejected A's requests and receives
    /// only mild legit rejections.
    fn self_rejection_scenario() -> AugmentedGraph {
        let mut b = AugmentedGraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_friendship(NodeId(u), NodeId(v));
            }
        }
        b.add_friendship(NodeId(4), NodeId(5));
        b.add_friendship(NodeId(6), NodeId(7));
        b.add_friendship(NodeId(0), NodeId(4)); // attack edges
        b.add_friendship(NodeId(1), NodeId(6));
        // Legit reject A hard:
        for (r, s) in [(0, 5), (1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        // Self-rejection: B rejects A's requests en masse (crafted cut).
        for (r, s) in [(6, 4), (6, 5), (7, 4), (7, 5)] {
            b.add_rejection(NodeId(r), NodeId(s));
        }
        // Legit reject B mildly:
        b.add_rejection(NodeId(2), NodeId(6));
        b.add_rejection(NodeId(3), NodeId(7));
        b.add_rejection(NodeId(0), NodeId(7));
        b.build()
    }

    #[test]
    fn iterative_pruning_defeats_self_rejection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(4));
        let mut suspects = report.suspects();
        suspects.sort_unstable();
        assert_eq!(suspects, vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]);
        // The rejected group A must fall before the whitewashed group B.
        assert!(report.groups.len() >= 2, "expected multiple rounds");
        assert!(report.groups[0].nodes.contains(&NodeId(4)));
        assert!(report.groups[0].nodes.contains(&NodeId(5)));
    }

    #[test]
    fn acceptance_rates_are_non_decreasing_across_rounds() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(8));
        for w in report.groups.windows(2) {
            assert!(
                w[0].acceptance_rate <= w[1].acceptance_rate + 1e-9,
                "rates regressed: {} then {}",
                w[0].acceptance_rate,
                w[1].acceptance_rate
            );
        }
    }

    #[test]
    fn budget_stops_detection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(2));
        assert!(report.num_suspects() >= 2);
        assert!(report.groups.len() <= 2);
    }

    #[test]
    fn threshold_excludes_high_acceptance_groups() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        // Group A's rate is 1/8; a threshold below B's rate keeps only A.
        let report =
            det.detect(&g, &Seeds::default(), Termination::AcceptanceThreshold(0.2));
        for group in &report.groups {
            assert!(group.acceptance_rate <= 0.2);
        }
        assert!(!report.suspects().is_empty());
    }

    #[test]
    fn suspects_top_trims_last_group_by_rejection_ratio() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(8));
        let top3 = report.suspects_top(3, &g);
        assert_eq!(top3.len(), 3);
        // All of group A (4, 5) must be present before any trimming of B.
        assert!(top3.contains(&NodeId(4)));
        assert!(top3.contains(&NodeId(5)));
    }

    #[test]
    fn clean_graph_detects_nothing() {
        let mut b = AugmentedGraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_friendship(NodeId(u), NodeId(v));
            }
        }
        let g = b.build();
        let det = IterativeDetector::new(RejectoConfig::default());
        let report = det.detect(&g, &Seeds::default(), Termination::SuspectBudget(2));
        assert_eq!(report.num_suspects(), 0);
    }

    #[test]
    fn spammer_seed_guides_detection() {
        let g = self_rejection_scenario();
        let det = IterativeDetector::new(RejectoConfig::default());
        let seeds = Seeds { legit: vec![NodeId(0), NodeId(1)], spammer: vec![NodeId(6)] };
        let report = det.detect(&g, &seeds, Termination::SuspectBudget(4));
        let suspects = report.suspects();
        assert!(suspects.contains(&NodeId(6)));
        assert!(!suspects.contains(&NodeId(0)));
        assert!(!suspects.contains(&NodeId(1)));
    }
}
