//! Rejecto: friend-spam detection via minimum aggregate acceptance rate
//! cuts (the paper's core contribution, §IV).
//!
//! The pipeline:
//!
//! 1. **MAAR solving** ([`MaarSolver`]): Theorem 1 reduces the ratio
//!    objective `min AC⟨U,Ū⟩` to a family of linear objectives
//!    `|F(Ū,U)| − k·|R⟨Ū,U⟩|`; the solver sweeps `k` through a geometric
//!    sequence, solves each member with the extended Kernighan–Lin
//!    heuristic, and keeps the cut with the lowest aggregate acceptance
//!    rate.
//! 2. **Iterative detection** ([`IterativeDetector`], §IV-E): find a MAAR
//!    cut, declare its suspect region a spammer group, prune the group with
//!    its links and rejections, repeat. This defeats the *self-rejection*
//!    whitewashing strategy — a crafted low-ratio cut inside the fake
//!    region only gets its rejected half detected (and removed) earlier —
//!    and catches multiple independent fake groups.
//! 3. **Seeds** ([`Seeds`], §IV-F): known legitimate users and known
//!    spammers are pre-placed in their regions and never switched, pruning
//!    spurious low-ratio cuts inside the legitimate region.
//!
//! ```
//! use rejecto_core::{IterativeDetector, RejectoConfig, Termination};
//! use rejection::{AugmentedGraphBuilder, NodeId};
//!
//! // Two legit friends; one spammer rejected by both.
//! let mut b = AugmentedGraphBuilder::new(3);
//! b.add_friendship(NodeId(0), NodeId(1));
//! b.add_rejection(NodeId(0), NodeId(2));
//! b.add_rejection(NodeId(1), NodeId(2));
//! let g = b.build();
//!
//! let det = IterativeDetector::new(RejectoConfig::default());
//! let report = det.detect(&g, &Default::default(), Termination::SuspectBudget(1));
//! assert_eq!(report.suspects(), vec![NodeId(2)]);
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod checkpoint;
mod config;
mod detect;
pub mod exact;
pub mod faults;
#[cfg(feature = "debug-invariants")]
pub mod invariants;
mod maar;
mod pool;
pub mod resources;
mod runtime;
pub mod store;

pub use chaos::{ChaosPlan, ChaosProfile, ChaosRng};
pub use checkpoint::{Checkpoint, CheckpointGroup, CHECKPOINT_FORMAT, CHECKPOINT_VERSION};
pub use config::{InitialPlacement, RejectoConfig, RunBudget};
pub use detect::{
    CheckpointSink, Completion, DetectedGroup, DetectionReport, InterruptReason,
    IterativeDetector, Seeds, Termination,
};
pub use faults::{ClusterFaults, Fault, FaultPlan, Mangle, StoreFaults};
/// Re-exported so report consumers can name the exact rational sweep
/// parameter [`DetectedGroup::k`] carries without depending on `kl`.
pub use kl::KParam;
pub use maar::{MaarCut, MaarSolver};
pub use resources::ResourceBudget;
pub use runtime::RuntimeError;
pub use store::{
    CheckpointStore, StoreError, StoreResume, DEFAULT_CHECKPOINT_KEEP,
};
